"""Tests for the four synthetic anomaly-type generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    ANOMALY_TYPES,
    Dataset,
    make_anomaly_dataset,
    make_clustered_anomalies,
    make_dependency_anomalies,
    make_global_anomalies,
    make_inliers,
    make_local_anomalies,
)


class TestDataset:
    def test_properties(self):
        ds = Dataset(np.zeros((10, 3)), np.array([1] * 2 + [0] * 8))
        assert ds.n_samples == 10
        assert ds.n_features == 3
        assert ds.n_anomalies == 2
        assert ds.contamination == pytest.approx(0.2)

    def test_label_validation(self):
        with pytest.raises(ValueError, match="only 0 and 1"):
            Dataset(np.zeros((2, 2)), np.array([0, 2]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.array([0, 1]))

    def test_subsample_stratified(self):
        ds = make_anomaly_dataset("global", n_inliers=900, n_anomalies=100,
                                  random_state=0)
        sub = ds.subsample(100, random_state=0)
        assert sub.n_samples == 100
        # Contamination approximately preserved.
        assert abs(sub.contamination - ds.contamination) < 0.05

    def test_subsample_noop_when_larger(self):
        ds = make_anomaly_dataset("global", n_inliers=50, n_anomalies=10,
                                  random_state=0)
        assert ds.subsample(1000) is ds


class TestGeneratorContracts:
    @pytest.mark.parametrize("anomaly_type", ANOMALY_TYPES)
    def test_counts_and_labels(self, anomaly_type):
        ds = make_anomaly_dataset(anomaly_type, n_inliers=90, n_anomalies=10,
                                  n_features=3, random_state=0)
        assert ds.n_samples == 100
        assert ds.n_anomalies == 10
        assert ds.n_features == 3
        assert ds.metadata["anomaly_type"] == anomaly_type

    @pytest.mark.parametrize("anomaly_type", ANOMALY_TYPES)
    def test_deterministic(self, anomaly_type):
        a = make_anomaly_dataset(anomaly_type, random_state=42)
        b = make_anomaly_dataset(anomaly_type, random_state=42)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    @pytest.mark.parametrize("anomaly_type", ANOMALY_TYPES)
    def test_seeds_differ(self, anomaly_type):
        a = make_anomaly_dataset(anomaly_type, random_state=1)
        b = make_anomaly_dataset(anomaly_type, random_state=2)
        assert not np.array_equal(a.X, b.X)

    @pytest.mark.parametrize("anomaly_type", ANOMALY_TYPES)
    def test_finite(self, anomaly_type):
        ds = make_anomaly_dataset(anomaly_type, random_state=0)
        assert np.all(np.isfinite(ds.X))

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="unknown anomaly_type"):
            make_anomaly_dataset("weird")

    def test_shuffled_labels(self):
        """Anomalies must not all sit at the end of the arrays."""
        ds = make_anomaly_dataset("global", n_inliers=90, n_anomalies=10,
                                  random_state=0)
        positions = np.flatnonzero(ds.y == 1)
        assert positions.min() < 80


class TestAnomalyGeometry:
    def test_clustered_anomalies_are_tight_and_far(self):
        ds = make_clustered_anomalies(n_inliers=200, n_anomalies=30,
                                      random_state=0)
        inliers = ds.X[ds.y == 0]
        anomalies = ds.X[ds.y == 1]
        # Tight: anomaly spread (around its own centre, per feature) is much
        # smaller than the inlier spread.
        assert anomalies.std(axis=0).mean() < inliers.std(axis=0).mean()
        # Far: the anomaly centroid is outside the inlier point cloud.
        dist = np.linalg.norm(anomalies.mean(axis=0) - inliers.mean(axis=0))
        assert dist > 2 * inliers.std()

    def test_global_anomalies_wider_than_inliers(self):
        ds = make_global_anomalies(n_inliers=300, n_anomalies=60,
                                   random_state=0)
        inliers = ds.X[ds.y == 0]
        anomalies = ds.X[ds.y == 1]
        assert np.abs(anomalies).max() > np.abs(inliers).max()

    def test_local_anomalies_share_region_with_higher_spread(self):
        ds = make_local_anomalies(n_inliers=400, n_anomalies=80, scale=4.0,
                                  random_state=0)
        inliers = ds.X[ds.y == 0]
        anomalies = ds.X[ds.y == 1]
        # Same general region (means near each other)...
        offset = np.linalg.norm(anomalies.mean(axis=0) - inliers.mean(axis=0))
        assert offset < 2 * inliers.std()
        # ...but clearly wider spread.
        assert anomalies.std() > 1.5 * inliers.std()

    def test_dependency_anomalies_preserve_marginals_break_correlation(self):
        ds = make_dependency_anomalies(n_inliers=800, n_anomalies=200,
                                       n_features=2, random_state=0)
        inliers = ds.X[ds.y == 0]
        anomalies = ds.X[ds.y == 1]
        corr_in = np.corrcoef(inliers.T)[0, 1]
        corr_out = np.corrcoef(anomalies.T)[0, 1]
        assert corr_in > 0.7
        assert abs(corr_out) < 0.4
        # Marginal spread comparable (values drawn from inlier marginals).
        ratio = anomalies.std(axis=0) / inliers.std(axis=0)
        assert np.all(ratio > 0.6) and np.all(ratio < 1.6)

    def test_dependency_requires_2d(self):
        with pytest.raises(ValueError):
            make_dependency_anomalies(n_features=1)


class TestMakeInliers:
    def test_shape(self):
        out = make_inliers(50, n_features=3, random_state=0)
        assert out.shape == (50, 3)

    def test_cluster_count_effect(self):
        single = make_inliers(500, n_clusters=1, random_state=0)
        multi = make_inliers(500, n_clusters=4, center_box=8.0,
                             random_state=0)
        # Multi-cluster data is more spread out on average.
        assert multi.std() > single.std()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_inliers(0)
        with pytest.raises(ValueError):
            make_inliers(5, n_clusters=0)
