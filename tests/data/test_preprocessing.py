"""Tests for scalers and the k-fold splitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.preprocessing import (
    KFoldSplitter,
    MinMaxScaler,
    StandardScaler,
    minmax_scale,
)


def random_matrix(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 40))
    d = int(rng.integers(1, 6))
    return rng.normal(0, rng.uniform(0.5, 20), size=(n, d))


class TestMinMaxScaleFunction:
    def test_bounds(self):
        out = minmax_scale(np.array([3.0, 7.0, 5.0]))
        assert out.min() == 0.0 and out.max() == 1.0

    def test_constant_maps_to_zero(self):
        out = minmax_scale(np.full(5, 2.5))
        np.testing.assert_array_equal(out, np.zeros(5))

    def test_preserves_order(self):
        values = np.array([5.0, 1.0, 3.0])
        out = minmax_scale(values)
        assert np.array_equal(np.argsort(out), np.argsort(values))

    def test_columnwise_on_matrix(self):
        X = np.array([[0.0, 10.0], [2.0, 20.0]])
        out = minmax_scale(X)
        np.testing.assert_array_equal(out, [[0.0, 0.0], [1.0, 1.0]])

    @given(st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_always_in_unit_interval(self, seed):
        out = minmax_scale(random_matrix(seed))
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestMinMaxScaler:
    def test_fit_transform_bounds(self):
        X = random_matrix(1)
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self):
        out = MinMaxScaler(feature_range=(-1, 1)).fit_transform(
            np.array([[0.0], [10.0]]))
        np.testing.assert_allclose(out.ravel(), [-1.0, 1.0])

    def test_transform_new_data_consistent(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[5.0]]))
        assert out[0, 0] == pytest.approx(0.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform([[1.0]])

    def test_feature_count_mismatch(self):
        scaler = MinMaxScaler().fit(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((3, 3)))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1, 0))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        X = random_matrix(2)
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_no_nan(self):
        X = np.ones((5, 2))
        out = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(out))
        np.testing.assert_array_equal(out, np.zeros((5, 2)))

    def test_transform_uses_training_stats(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        out = scaler.transform(np.array([[1.0]]))
        assert out[0, 0] == pytest.approx(0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])


class TestKFoldSplitter:
    def test_partition_properties(self):
        splitter = KFoldSplitter(n_splits=3, random_state=0)
        folds = list(splitter.split(20))
        assert len(folds) == 3
        all_test = np.sort(np.concatenate([test for _, test in folds]))
        np.testing.assert_array_equal(all_test, np.arange(20))

    def test_train_test_disjoint(self):
        for train_idx, test_idx in KFoldSplitter(3, random_state=1).split(17):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            assert len(train_idx) + len(test_idx) == 17

    def test_deterministic_with_seed(self):
        a = list(KFoldSplitter(3, random_state=5).split(12))
        b = list(KFoldSplitter(3, random_state=5).split(12))
        for (ta, _), (tb, _) in zip(a, b):
            np.testing.assert_array_equal(ta, tb)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFoldSplitter(3).split(2))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFoldSplitter(1)

    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_fold_sizes_balanced(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 100))
        k = int(rng.integers(2, min(6, n)))
        sizes = [len(test) for _, test in
                 KFoldSplitter(k, random_state=seed).split(n)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n
