"""Tests for the 84-dataset registry and its stand-in generator."""

import numpy as np
import pytest

from repro.data.registry import (
    DATASET_NAMES,
    dataset_specs,
    get_spec,
    load_benchmark,
    load_dataset,
)


class TestRegistryContents:
    def test_exactly_84_datasets(self):
        assert len(DATASET_NAMES) == 84

    def test_no_duplicate_names(self):
        assert len(set(DATASET_NAMES)) == 84

    def test_paper_examples_present(self):
        for name in ("abalone", "http", "thyroid", "CIFAR10_0", "yelp",
                     "FashionMNIST_9", "SVHN_5", "agnews_3"):
            assert name in DATASET_NAMES

    def test_anomaly_rates_match_table3(self):
        # Spot-check rates from the paper's Table III.
        assert get_spec("abalone").anomaly_rate == pytest.approx(0.4982)
        assert get_spec("smtp").anomaly_rate == pytest.approx(0.0003)
        assert get_spec("Parkinson").anomaly_rate == pytest.approx(0.7538)
        assert get_spec("CIFAR10_4").anomaly_rate == pytest.approx(0.05)

    def test_categories_match_table3(self):
        assert get_spec("glass").category == "Forensic"
        assert get_spec("shuttle").category == "Astronautics"
        assert get_spec("yelp").category == "NLP"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_spec("not-a-dataset")

    def test_specs_filter_by_category(self):
        healthcare = dataset_specs("Healthcare")
        assert all(s.category == "Healthcare" for s in healthcare)
        assert len(healthcare) >= 10

    def test_unknown_category(self):
        with pytest.raises(ValueError, match="unknown category"):
            dataset_specs("Astrology")


class TestLoadDataset:
    def test_respects_caps(self):
        ds = load_dataset("http", max_samples=300, max_features=8)
        assert ds.n_samples <= 300
        assert ds.n_features <= 8

    def test_contamination_close_to_nominal(self):
        ds = load_dataset("satellite", max_samples=600)
        assert ds.contamination == pytest.approx(
            get_spec("satellite").anomaly_rate, abs=0.02)

    def test_minimum_two_anomalies(self):
        # smtp's nominal rate is 0.03%; at laptop scale that rounds to 0,
        # so the loader guarantees at least 2 anomalies.
        ds = load_dataset("smtp", max_samples=500)
        assert ds.n_anomalies >= 2

    def test_deterministic_per_name(self):
        a = load_dataset("cardio", max_samples=300)
        b = load_dataset("cardio", max_samples=300)
        np.testing.assert_array_equal(a.X, b.X)

    def test_different_names_differ(self):
        a = load_dataset("cardio", max_samples=300, max_features=8)
        b = load_dataset("thyroid", max_samples=300, max_features=8)
        assert a.X.shape != b.X.shape or not np.array_equal(a.X, b.X)

    def test_random_state_perturbs(self):
        a = load_dataset("cardio", max_samples=300, random_state=1)
        b = load_dataset("cardio", max_samples=300, random_state=2)
        assert not np.array_equal(a.X, b.X)

    def test_metadata_recorded(self):
        ds = load_dataset("glass", max_samples=200)
        assert ds.metadata["category"] == "Forensic"
        assert "type_counts" in ds.metadata
        assert sum(ds.metadata["type_counts"].values()) == ds.n_anomalies

    def test_finite_features(self):
        for name in ("abalone", "musk", "yelp"):
            ds = load_dataset(name, max_samples=200, max_features=16)
            assert np.all(np.isfinite(ds.X))

    def test_embedding_datasets_flagged(self):
        ds = load_dataset("CIFAR10_0", max_samples=200, max_features=16)
        assert ds.metadata["embedding_style"] is True
        ds = load_dataset("glass", max_samples=200)
        assert ds.metadata["embedding_style"] is False


class TestLoadBenchmark:
    def test_yields_requested(self):
        names = ("glass", "wine")
        datasets = list(load_benchmark(names, max_samples=100,
                                       max_features=8))
        assert [d.name for d in datasets] == list(names)

    def test_defaults_to_all(self):
        gen = load_benchmark(max_samples=100, max_features=4)
        first = next(gen)
        assert first.name == DATASET_NAMES[0]
