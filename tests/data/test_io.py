"""Tests for dataset persistence (.npz / .csv round-trips)."""

import numpy as np
import pytest

from repro.data.io import (
    dataset_from_csv,
    dataset_to_csv,
    load_dataset_file,
    save_dataset,
)
from repro.data.synthetic import make_anomaly_dataset


@pytest.fixture
def dataset():
    return make_anomaly_dataset("global", n_inliers=40, n_anomalies=8,
                                n_features=3, random_state=0)


class TestNpzRoundtrip:
    def test_roundtrip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset_file(path)
        np.testing.assert_array_equal(loaded.X, dataset.X)
        np.testing.assert_array_equal(loaded.y, dataset.y)
        assert loaded.name == dataset.name
        assert loaded.metadata["anomaly_type"] == "global"

    def test_suffix_added(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "plain")
        assert path.suffix == ".npz"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_file(tmp_path / "nothing.npz")


class TestCsvRoundtrip:
    def test_roundtrip(self, dataset, tmp_path):
        path = dataset_to_csv(dataset, tmp_path / "ds.csv")
        loaded = dataset_from_csv(path)
        np.testing.assert_allclose(loaded.X, dataset.X)
        np.testing.assert_array_equal(loaded.y, dataset.y)

    def test_header(self, dataset, tmp_path):
        path = dataset_to_csv(dataset, tmp_path / "ds.csv")
        header = path.read_text().splitlines()[0]
        assert header == "f0,f1,f2,label"

    def test_custom_name(self, dataset, tmp_path):
        path = dataset_to_csv(dataset, tmp_path / "ds.csv")
        loaded = dataset_from_csv(path, name="renamed")
        assert loaded.name == "renamed"

    def test_missing_label_column(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1.0,2.0\n")
        with pytest.raises(ValueError, match="no 'label'"):
            dataset_from_csv(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            dataset_from_csv(tmp_path / "nothing.csv")
