"""Tests for the stand-in generative families."""

import numpy as np
import pytest

from repro.data.generators import generate_standin
from repro.data.registry import get_spec


class TestGenerateStandin:
    def test_basic_shape(self):
        ds = generate_standin(get_spec("cardio"), n_samples=200,
                              n_features=10, seed=1)
        assert ds.X.shape == (200, 10)
        assert ds.y.shape == (200,)

    def test_seed_determinism(self):
        spec = get_spec("glass")
        a = generate_standin(spec, 150, 6, seed=9)
        b = generate_standin(spec, 150, 6, seed=9)
        np.testing.assert_array_equal(a.X, b.X)

    def test_seed_sensitivity(self):
        spec = get_spec("glass")
        a = generate_standin(spec, 150, 6, seed=1)
        b = generate_standin(spec, 150, 6, seed=2)
        assert not np.array_equal(a.X, b.X)

    def test_anomaly_count_tracks_rate(self):
        spec = get_spec("Parkinson")  # 75.38% anomalies
        ds = generate_standin(spec, 200, 8, seed=0)
        assert ds.n_anomalies == pytest.approx(151, abs=2)

    def test_type_counts_sum(self):
        ds = generate_standin(get_spec("satellite"), 300, 12, seed=0)
        counts = ds.metadata["type_counts"]
        assert sum(counts.values()) == ds.n_anomalies
        assert set(counts) == {"local", "global", "clustered", "dependency"}

    def test_heterogeneous_feature_scales(self):
        """Non-embedding stand-ins must have wildly differing feature
        ranges — the paper's tabular-heterogeneity property."""
        ds = generate_standin(get_spec("abalone"), 400, 12, seed=0)
        spans = ds.X.max(axis=0) - ds.X.min(axis=0)
        assert spans.max() / spans.min() > 3.0

    def test_embedding_style_homogeneous(self):
        ds = generate_standin(get_spec("yelp"), 400, 12, seed=0)
        assert ds.metadata["embedding_style"]
        spans = ds.X.max(axis=0) - ds.X.min(axis=0)
        assert spans.max() / spans.min() < 10.0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_standin(get_spec("glass"), 5, 4, seed=0)
        with pytest.raises(ValueError):
            generate_standin(get_spec("glass"), 100, 1, seed=0)

    def test_difficulty_recorded(self):
        ds = generate_standin(get_spec("wine"), 100, 5, seed=0)
        assert 0.0 < ds.metadata["difficulty"] < 3.0

    def test_noise_features_within_bounds(self):
        ds = generate_standin(get_spec("wine"), 100, 10, seed=0)
        assert 0 <= ds.metadata["n_noise_features"] <= 10
