"""Tests for failure-injection corruptions + detector robustness checks."""

import numpy as np
import pytest

from repro.data.corruptions import (
    with_constant_features,
    with_duplicate_rows,
    with_extreme_outliers,
    with_label_noise,
    with_missing_values_imputed,
)
from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_anomaly_dataset


@pytest.fixture
def dataset():
    return make_anomaly_dataset("global", n_inliers=90, n_anomalies=10,
                                n_features=4, random_state=0)


class TestDuplicateRows:
    def test_count(self, dataset):
        out = with_duplicate_rows(dataset, fraction=0.2, random_state=0)
        assert out.n_samples == 120
        assert out.metadata["duplicated"] == 20

    def test_zero_fraction_noop(self, dataset):
        assert with_duplicate_rows(dataset, fraction=0.0) is dataset

    def test_labels_copied_with_rows(self, dataset):
        out = with_duplicate_rows(dataset, fraction=0.5, random_state=0)
        # Every appended row must exist in the original with the same label.
        for row, label in zip(out.X[dataset.n_samples:],
                              out.y[dataset.n_samples:]):
            matches = np.flatnonzero((dataset.X == row).all(axis=1))
            assert matches.size > 0
            assert label in dataset.y[matches]

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            with_duplicate_rows(dataset, fraction=1.5)


class TestConstantFeatures:
    def test_columns_constant(self, dataset):
        out = with_constant_features(dataset, n_features=2, value=7.0,
                                     random_state=0)
        cols = out.metadata["constant_features"]
        assert len(cols) == 2
        for c in cols:
            assert np.all(out.X[:, c] == 7.0)

    def test_original_untouched(self, dataset):
        before = dataset.X.copy()
        with_constant_features(dataset, n_features=1, random_state=0)
        np.testing.assert_array_equal(dataset.X, before)

    def test_detectors_survive_constant_columns(self, dataset):
        """HBOS / IForest must not crash on zero-variance features."""
        from repro.detectors import HBOS, IForest
        out = with_constant_features(dataset, n_features=2, random_state=0)
        X = StandardScaler().fit_transform(out.X)
        for det in (HBOS(), IForest(random_state=0)):
            det.fit(X)
            assert np.all(np.isfinite(det.decision_scores_))

    def test_bounds(self, dataset):
        with pytest.raises(ValueError):
            with_constant_features(dataset, n_features=99)


class TestExtremeOutliers:
    def test_cells_set(self, dataset):
        out = with_extreme_outliers(dataset, n_cells=3, magnitude=1e6,
                                    random_state=0)
        assert np.sum(np.abs(out.X) >= 1e6) >= 1

    def test_booster_survives_glitches(self, dataset):
        """The booster pipeline must stay finite under wild cell values."""
        from repro.core import UADBooster
        from repro.detectors import IForest
        out = with_extreme_outliers(dataset, n_cells=4, random_state=0)
        X = StandardScaler().fit_transform(out.X)
        source = IForest(random_state=0).fit(X)
        booster = UADBooster(n_iterations=2, hidden=16,
                             epochs_per_iteration=2, random_state=0)
        booster.fit(X, source)
        assert np.all(np.isfinite(booster.scores_))

    def test_negative_cells_rejected(self, dataset):
        with pytest.raises(ValueError):
            with_extreme_outliers(dataset, n_cells=-1)


class TestLabelNoise:
    def test_flip_count(self, dataset):
        out = with_label_noise(dataset, flip_fraction=0.1, random_state=0)
        assert np.sum(out.y != dataset.y) == 10

    def test_features_untouched(self, dataset):
        out = with_label_noise(dataset, flip_fraction=0.1, random_state=0)
        np.testing.assert_array_equal(out.X, dataset.X)


class TestMissingImputed:
    def test_no_nans(self, dataset):
        out = with_missing_values_imputed(dataset, fraction=0.3,
                                          random_state=0)
        assert np.all(np.isfinite(out.X))

    def test_imputed_fraction_recorded(self, dataset):
        out = with_missing_values_imputed(dataset, fraction=0.2,
                                          random_state=0)
        assert 0.1 < out.metadata["imputed_fraction"] < 0.3

    def test_full_missingness_still_finite(self, dataset):
        out = with_missing_values_imputed(dataset, fraction=1.0,
                                          random_state=0)
        assert np.all(np.isfinite(out.X))

    def test_detector_degrades_gracefully(self, dataset):
        """Moderate imputation lowers but does not destroy detection."""
        from repro.detectors import IForest
        from repro.metrics import auc_roc
        clean_X = StandardScaler().fit_transform(dataset.X)
        clean_auc = auc_roc(
            dataset.y,
            IForest(random_state=0).fit(clean_X).decision_scores_)
        corrupted = with_missing_values_imputed(dataset, fraction=0.2,
                                                random_state=0)
        dirty_X = StandardScaler().fit_transform(corrupted.X)
        dirty_auc = auc_roc(
            dataset.y,
            IForest(random_state=0).fit(dirty_X).decision_scores_)
        assert dirty_auc > 0.5
        assert dirty_auc <= clean_auc + 0.1
