"""Executor contract: deterministic ordering, budgets, workers."""

import threading
import time

import pytest

from repro.runtime import (
    BACKENDS,
    Executor,
    RunContext,
    resolve_num_threads,
    start_worker,
)

# Module-level so the process backend can pickle them.


def _square(x):
    return x * x


def _probe_threads(_):
    return resolve_num_threads()


def _jittered_identity(x):
    # Later submissions finish first: exposes completion-order bugs.
    time.sleep(0.02 * (3 - x % 4))
    return x


def _boom(x):
    if x == 2:
        raise RuntimeError(f"boom on {x}")
    return x


class TestOrdering:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_keyed_by_submission_index(self, backend):
        items = list(range(8))
        out = Executor(backend, max_workers=4).map(_jittered_identity, items)
        assert out == items

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_items(self, backend):
        assert Executor(backend, max_workers=2).map(_square, []) == []

    def test_on_result_sees_every_index_once(self):
        seen = {}
        Executor("thread", max_workers=3).map(
            _jittered_identity, list(range(6)),
            on_result=lambda i, r: seen.setdefault(i, r))
        assert seen == {i: i for i in range(6)}


class TestBudgets:
    def test_thread_budget_split_across_workers(self):
        with RunContext(num_threads=4):
            out = Executor("thread", max_workers=2).map(
                _probe_threads, [0, 1, 2, 3])
        assert out == [2, 2, 2, 2]

    def test_process_workers_receive_the_context(self):
        with RunContext(num_threads=4):
            out = Executor("process", max_workers=2).map(
                _probe_threads, [0, 1])
        assert out == [2, 2]

    def test_nested_executor_splits_the_shrunken_budget(self):
        def outer(_):
            return Executor("thread", max_workers=2).map(
                _probe_threads, [0, 1])

        with RunContext(num_threads=8):
            out = Executor("thread", max_workers=2).map(outer, [0, 1])
        # 8 // 2 workers -> 4 per worker; 4 // 2 nested workers -> 2.
        assert out == [[2, 2], [2, 2]]

    def test_explicit_worker_threads_wins(self):
        with RunContext(num_threads=8):
            out = Executor("thread", max_workers=2, worker_threads=3).map(
                _probe_threads, [0, 1])
        assert out == [3, 3]

    def test_budget_never_below_one(self):
        with RunContext(num_threads=2):
            out = Executor("thread", max_workers=2).map(
                lambda _: resolve_num_threads(), range(8))
        assert set(out) == {1}


class TestFailuresAndValidation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_task_exception_propagates(self, backend):
        with pytest.raises(RuntimeError, match="boom"):
            Executor(backend, max_workers=2).map(_boom, [0, 1, 2, 3])

    def test_exception_leaves_context_clean(self):
        before = resolve_num_threads()
        with pytest.raises(RuntimeError):
            Executor("thread", max_workers=2,
                     worker_threads=7).map(_boom, [0, 1, 2, 3])
        assert resolve_num_threads() == before

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            Executor("greenlet")

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            Executor("thread", max_workers=0)
        with pytest.raises(ValueError):
            Executor("thread", max_workers=2, worker_threads=0)


class TestStartWorker:
    def test_unscoped_worker_follows_the_live_base(self):
        """Regression: a worker whose creator had no scoped context must
        honour configure()/set_num_threads() made after it started (the
        pre-runtime ScoringService behaviour)."""
        from repro.runtime import configure

        probes = []
        step = threading.Event()
        done = threading.Event()

        def loop():
            probes.append(resolve_num_threads())
            step.wait(5.0)
            probes.append(resolve_num_threads())
            done.set()

        try:
            worker = start_worker(loop, name="base-probe")
            configure(num_threads=3)
            step.set()
            assert done.wait(5.0)
            worker.join(5.0)
            assert probes[1] == 3
        finally:
            configure(num_threads=None)

    def test_worker_carries_the_callers_context(self):
        seen = []
        done = threading.Event()

        def loop():
            seen.append(resolve_num_threads())
            done.set()

        with RunContext(num_threads=6):
            worker = start_worker(loop, name="ctx-probe")
        assert done.wait(5.0)
        worker.join(5.0)
        assert seen == [6]
