"""RunContext: resolution order, scoping, immutability, serialisation."""

import pytest

from repro.runtime import (
    RunContext,
    configure,
    configured_context,
    current_context,
    describe,
    resolve_cache_dir,
    resolve_cache_enabled,
    resolve_dtype,
    resolve_n_jobs,
    resolve_num_threads,
    resolve_seed,
    resolved,
    snapshot,
)


@pytest.fixture(autouse=True)
def clean_runtime(monkeypatch):
    """Each test starts from an unconfigured runtime and leaves none."""
    for var in ("REPRO_NUM_THREADS", "REPRO_BENCH_JOBS",
                "REPRO_BENCH_CACHE"):
        monkeypatch.delenv(var, raising=False)
    configure(**{f: None for f in ("seed", "num_threads", "n_jobs",
                                   "cache", "cache_dir", "dtype")})
    yield
    configure(**{f: None for f in ("seed", "num_threads", "n_jobs",
                                   "cache", "cache_dir", "dtype")})


class TestResolutionOrder:
    """explicit arg > active context > env var > default, every field."""

    def test_default_when_nothing_configured(self):
        assert resolve_num_threads() >= 1
        assert resolve_n_jobs() == 1
        assert resolve_seed() is None
        assert resolve_cache_enabled() is True
        assert resolve_cache_dir() is None
        assert resolve_dtype() == "float32"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "5")
        monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
        monkeypatch.setenv("REPRO_BENCH_CACHE", "/tmp/bench-cache")
        assert resolve_num_threads() == 5
        assert resolve_n_jobs() == 3
        assert resolve_cache_dir() == "/tmp/bench-cache"

    def test_context_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "5")
        with RunContext(num_threads=2):
            assert resolve_num_threads() == 2
        assert resolve_num_threads() == 5

    def test_explicit_beats_context(self):
        with RunContext(num_threads=2, n_jobs=2):
            assert resolve_num_threads(7) == 7
            assert resolve_n_jobs(7) == 7

    def test_invalid_env_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "not-a-number")
        assert resolve_num_threads() >= 1
        monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
        assert resolve_n_jobs() == 1

    def test_env_zero_clamps_to_one_not_cpu_count(self, monkeypatch):
        """REPRO_NUM_THREADS=0 means 'as little as possible' (the pre-
        runtime clamp); it must resolve to 1, never fall through to the
        CPU count."""
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        assert resolve_num_threads() == 1
        monkeypatch.setenv("REPRO_NUM_THREADS", "-3")
        assert resolve_num_threads() == 1

    def test_env_read_at_construction_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "4")
        ctx = RunContext.from_env()
        monkeypatch.setenv("REPRO_NUM_THREADS", "9")
        # The constructed context froze the value it was built from.
        assert ctx.num_threads == 4


class TestScoping:
    def test_nested_contexts_merge(self):
        with RunContext(seed=5):
            with RunContext(num_threads=2) as inner:
                assert inner.seed == 5  # inherited from the outer scope
                assert resolve_seed() == 5
                assert resolve_num_threads() == 2
            assert resolve_seed() == 5

    def test_restored_on_exception(self):
        with RunContext(num_threads=3):
            with pytest.raises(RuntimeError, match="boom"):
                with RunContext(num_threads=7):
                    assert resolve_num_threads() == 7
                    raise RuntimeError("boom")
            assert resolve_num_threads() == 3

    def test_configure_is_the_global_base(self):
        configure(num_threads=2)
        assert configured_context().num_threads == 2
        assert resolve_num_threads() == 2
        with RunContext(num_threads=6):
            assert resolve_num_threads() == 6
        assert resolve_num_threads() == 2
        configure(num_threads=None)
        assert configured_context() is None

    def test_base_stays_live_under_a_scope(self):
        """Regression: entering a scope must not freeze the global base
        — configure() calls made inside the scope still take effect for
        fields the scope leaves None (the CLI wraps every command in a
        RunContext, so a frozen base would make set_num_threads a no-op
        there)."""
        with RunContext(seed=0):
            configure(num_threads=2)
            assert resolve_num_threads() == 2
            assert resolve_seed() == 0
            configure(num_threads=4)
            assert resolve_num_threads() == 4
        assert resolve_num_threads() == 4

    def test_scope_overrides_survive_base_changes(self):
        with RunContext(num_threads=6):
            configure(num_threads=2)
            assert resolve_num_threads() == 6  # scoped field wins
        assert resolve_num_threads() == 2

    def test_contexts_do_not_leak_across_threads(self):
        import threading

        from repro.runtime import active_context

        seen = []
        with RunContext(num_threads=5):
            thread = threading.Thread(
                target=lambda: seen.append(active_context()))
            thread.start()
            thread.join()
        # A raw thread does not inherit the scoped context (executors
        # and start_worker are the propagation mechanisms).
        assert seen[0] is None


class TestImmutability:
    def test_field_assignment_raises(self):
        ctx = RunContext(num_threads=2)
        with pytest.raises(AttributeError, match="immutable"):
            ctx.num_threads = 4

    def test_derive_builds_a_copy(self):
        ctx = RunContext(num_threads=2, seed=1)
        child = ctx.derive(num_threads=8)
        assert (ctx.num_threads, child.num_threads) == (2, 8)
        assert child.seed == 1
        assert child.derive(seed=None).seed is None  # explicit clear

    def test_set_params_refused(self):
        # ParamsMixin.set_params would re-run __init__ in place, quietly
        # defeating the immutability guarantee.
        with pytest.raises(TypeError, match="immutable"):
            RunContext(num_threads=2).set_params(seed=1)

    def test_derive_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown RunContext field"):
            RunContext().derive(cores=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RunContext(num_threads=0)
        with pytest.raises(ValueError):
            RunContext(n_jobs=0)
        with pytest.raises(ValueError):
            RunContext(dtype="float16")


class TestSerialisation:
    def test_dict_round_trip(self):
        ctx = RunContext(seed=3, num_threads=2, cache=False,
                         dtype="float64")
        assert RunContext.from_dict(ctx.to_dict()) == ctx

    def test_spec_round_trip(self):
        from repro.api import build_spec, to_spec

        ctx = RunContext(num_threads=4, n_jobs=2)
        spec = to_spec(ctx)
        assert spec["type"] == "RunContext"
        assert build_spec(spec) == ctx

    def test_snapshot_shape(self):
        with RunContext(num_threads=2):
            snap = snapshot()
        assert snap["context"]["num_threads"] == 2
        assert snap["resolved"]["num_threads"] == 2
        assert set(snap["resolved"]) == {"seed", "num_threads", "n_jobs",
                                         "cache", "cache_dir", "dtype",
                                         "faults"}

    def test_describe_sources(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "5")
        with RunContext(n_jobs=2):
            rows = {row["field"]: row for row in describe()}
        assert rows["num_threads"]["source"] == "env"
        assert rows["n_jobs"]["source"] == "context"
        assert rows["dtype"] == {"field": "dtype", "value": "float32",
                                 "source": "default"}
        assert resolved()["cache"] is True
