"""Cross-backend / cross-budget determinism: the hard acceptance bar.

Scores from the same spec + seed must be exactly ``np.array_equal``
across the ``serial`` / ``thread`` / ``process`` executor backends and
across thread budgets 1 / 2 / 4 — execution configuration is provenance,
never arithmetic.
"""

import numpy as np
import pytest

from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_anomaly_dataset
from repro.detectors.registry import make_detector
from repro.experiments.harness import ExperimentRunner, run_grid
from repro.kernels.threading import (
    get_configured_num_threads,
    set_num_threads,
)
from repro.runtime import BACKENDS, Executor, RunContext

FAST = {"n_iterations": 2,
        "booster_kwargs": {"hidden": 16, "epochs_per_iteration": 2}}

# Neighbor detectors exercise the threaded kernels + shared graph cache;
# IForest/HBOS cover the rng-heavy and deterministic families.
BANK = ("KNN", "LOF", "ABOD", "IForest", "HBOS")


@pytest.fixture(scope="module")
def data():
    ds = make_anomaly_dataset("local", n_inliers=220, n_anomalies=30,
                              n_features=6, random_state=0)
    return StandardScaler().fit_transform(ds.X)


def _fit_scores(arg):
    """(detector name, standardized X) -> fitted training scores."""
    name, X = arg
    return make_detector(name, random_state=0).fit(X).decision_scores_


@pytest.fixture(scope="module")
def grid_datasets():
    return tuple(
        make_anomaly_dataset("global", n_inliers=110, n_anomalies=12,
                             n_features=4, random_state=seed)
        for seed in (2, 5)
    )


class TestDetectorBank:
    def test_scores_identical_across_backends(self, data):
        tasks = [(name, data) for name in BANK]
        per_backend = {
            backend: Executor(backend, max_workers=2).map(_fit_scores,
                                                          tasks)
            for backend in BACKENDS
        }
        for backend in ("thread", "process"):
            for ref, got in zip(per_backend["serial"], per_backend[backend]):
                assert np.array_equal(ref, got), backend

    def test_scores_identical_across_thread_budgets(self, data):
        per_budget = {}
        for budget in (1, 2, 4):
            with RunContext(num_threads=budget):
                per_budget[budget] = [
                    _fit_scores((name, data)) for name in BANK]
        for budget in (2, 4):
            for ref, got in zip(per_budget[1], per_budget[budget]):
                assert np.array_equal(ref, got), budget


class TestGrid:
    def test_grid_identical_across_backends(self, grid_datasets):
        grid = dict(detectors=("IForest", "KNN"), datasets=grid_datasets,
                    seeds=(0,), **FAST)
        reference = run_grid(backend="serial", **grid)
        for backend in ("thread", "process"):
            assert run_grid(n_jobs=2, backend=backend, **grid) == reference

    def test_grid_identical_across_budgets(self, grid_datasets):
        grid = dict(detectors=("KNN",), datasets=grid_datasets[:1],
                    seeds=(0,), **FAST)
        reference = run_grid(num_threads=1, **grid)
        for budget in (2, 4):
            assert run_grid(num_threads=budget, **grid) == reference
        with RunContext(num_threads=2, n_jobs=2):
            assert run_grid(**grid) == reference

    def test_runner_restores_threads_when_a_cell_raises(self, grid_datasets):
        """Regression: a raising worker must not leak the grid's thread
        configuration into the caller's."""
        # The invalid n_bins only surfaces when the cell builds the
        # spec, i.e. mid-grid, after the runner set up worker contexts.
        bad = {"type": "HBOS", "params": {"n_bins": -1}}
        try:
            set_num_threads(2)
            with pytest.raises(ValueError):
                run_grid(detectors=("IForest", bad),
                         datasets=grid_datasets[:1], seeds=(0,),
                         num_threads=1, **FAST)
            assert get_configured_num_threads() == 2
        finally:
            set_num_threads(None)

    def test_cache_records_runtime_snapshot(self, grid_datasets, tmp_path):
        run_grid(detectors=("HBOS",), datasets=grid_datasets[:1],
                 seeds=(0,), cache_dir=tmp_path, num_threads=2, **FAST)
        import json

        (entry,) = tmp_path.glob("*.json")
        doc = json.loads(entry.read_text())
        assert doc["runtime"]["executor"]["worker_threads"] == 2
        assert set(doc["runtime"]["resolved"]) >= {"num_threads", "seed"}
        assert set(doc["result"]) >= {"detector", "dataset", "seed"}
        # And the wrapped entry round-trips as a cache hit.
        messages = []
        again = run_grid(detectors=("HBOS",), datasets=grid_datasets[:1],
                         seeds=(0,), cache_dir=tmp_path,
                         progress=messages.append, **FAST)
        assert "[cached]" in messages[0]
        assert again[0].detector == "HBOS"


class TestSeedPolicy:
    def test_context_seed_pins_unseeded_boosters(self, grid_datasets):
        from repro.core import UADBooster

        ds = grid_datasets[0]
        X = StandardScaler().fit_transform(ds.X)
        source = make_detector("HBOS").fit(X).fit_scores()

        def boost(**kwargs):
            booster = UADBooster(n_iterations=2, hidden=16,
                                 epochs_per_iteration=2, **kwargs)
            return booster.fit(X, source).scores_

        with RunContext(seed=7):
            a = boost()
            b = boost()
        assert np.array_equal(a, b)  # pinned by the context seed
        # The context seed is exactly a default random_state.
        assert np.array_equal(a, boost(random_state=7))

    def test_context_dtype_default(self, grid_datasets):
        from repro.core.ensemble import FoldEnsemble

        ds = grid_datasets[0]
        with RunContext(dtype="float64"):
            ens = FoldEnsemble(random_state=0).initialize(ds.X)
        assert ens._dtype == np.dtype("float64")
        # Pinned at initialize: later contexts cannot re-interpret it.
        with RunContext(dtype="float32"):
            assert ens._dtype == np.dtype("float64")
        # Explicit construction wins over the context.
        with RunContext(dtype="float64"):
            explicit = FoldEnsemble(dtype="float32", random_state=0)
            explicit.initialize(ds.X)
        assert explicit._dtype == np.dtype("float32")
