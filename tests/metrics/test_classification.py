"""Tests for confusion counts, error rates, cases, and rank helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.classification import (
    confusion_counts,
    error_correction_rate,
    error_count,
    instance_cases,
    rank_of,
    threshold_by_contamination,
)


class TestConfusionCounts:
    def test_basic(self):
        y = [1, 1, 0, 0]
        s = [0.9, 0.1, 0.8, 0.2]
        counts = confusion_counts(y, s, threshold=0.5)
        assert counts == {"tp": 1, "fn": 1, "fp": 1, "tn": 1}

    def test_all_correct(self):
        y = [1, 0]
        s = [0.9, 0.1]
        counts = confusion_counts(y, s)
        assert counts["tp"] == 1 and counts["tn"] == 1
        assert counts["fp"] == 0 and counts["fn"] == 0

    def test_counts_sum_to_n(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=50)
        s = rng.uniform(size=50)
        counts = confusion_counts(y, s, threshold=0.4)
        assert sum(counts.values()) == 50

    def test_non_binary_raises(self):
        with pytest.raises(ValueError):
            confusion_counts([0, 2], [0.1, 0.2])


class TestErrorCount:
    def test_equals_fp_plus_fn(self):
        y = [1, 1, 0, 0, 0]
        s = [0.9, 0.2, 0.8, 0.7, 0.1]
        assert error_count(y, s, 0.5) == 3


class TestErrorCorrectionRate:
    def test_full_correction(self):
        y = [1, 0]
        teacher = [0.1, 0.9]       # both wrong
        booster = [0.9, 0.1]       # both fixed
        assert error_correction_rate(y, teacher, booster) == 1.0

    def test_no_errors_returns_zero(self):
        y = [1, 0]
        teacher = [0.9, 0.1]
        booster = [0.1, 0.9]
        assert error_correction_rate(y, teacher, booster) == 0.0

    def test_partial(self):
        y = [1, 1, 0]
        teacher = [0.1, 0.2, 0.9]  # 3 errors
        booster = [0.9, 0.2, 0.8]  # fixes only the first
        assert error_correction_rate(y, teacher, booster) == pytest.approx(1 / 3)


class TestInstanceCases:
    def test_labels(self):
        y = [1, 1, 0, 0]
        s = [0.9, 0.1, 0.8, 0.2]
        cases = instance_cases(y, s, 0.5)
        assert list(cases) == ["TP", "FN", "FP", "TN"]

    def test_every_instance_labelled(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=40)
        s = rng.uniform(size=40)
        cases = instance_cases(y, s)
        assert set(cases) <= {"TP", "FN", "FP", "TN"}
        assert len(cases) == 40


class TestRankOf:
    def test_simple_order(self):
        ranks = rank_of([0.1, 0.5, 0.3])
        assert list(ranks) == [1.0, 3.0, 2.0]

    def test_tied_midranks(self):
        ranks = rank_of([0.2, 0.2, 0.5])
        assert list(ranks) == [1.5, 1.5, 3.0]

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_rank_sum_invariant(self, seed):
        """Ranks always sum to n(n+1)/2 regardless of ties."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        values = rng.integers(0, 5, size=n).astype(float)
        assert rank_of(values).sum() == pytest.approx(n * (n + 1) / 2)


class TestThresholdByContamination:
    def test_flags_expected_fraction(self):
        s = np.linspace(0, 1, 100)
        thr = threshold_by_contamination(s, 0.1)
        assert np.sum(s > thr) == pytest.approx(10, abs=1)

    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            threshold_by_contamination([0.1, 0.2], 1.5)
