"""Tests for the Wilcoxon signed-rank test, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.stats

from repro.metrics.stats import wilcoxon_signed_rank


class TestWilcoxonAgainstScipy:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_scipy_greater(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0.05, 1.0, size=40)
        y = rng.normal(0.0, 1.0, size=40)
        ours = wilcoxon_signed_rank(x, y, alternative="greater")
        ref = scipy.stats.wilcoxon(x, y, alternative="greater",
                                   correction=False, mode="approx")
        assert ours["p_value"] == pytest.approx(ref.pvalue, rel=1e-6)

    @pytest.mark.parametrize("alternative", ["greater", "less", "two-sided"])
    def test_matches_scipy_alternatives(self, alternative):
        rng = np.random.default_rng(3)
        x = rng.normal(0.1, 1.0, size=30)
        y = rng.normal(0.0, 1.0, size=30)
        ours = wilcoxon_signed_rank(x, y, alternative=alternative)
        ref = scipy.stats.wilcoxon(x, y, alternative=alternative,
                                   correction=False, mode="approx")
        assert ours["p_value"] == pytest.approx(ref.pvalue, rel=1e-6)

    def test_matches_scipy_with_ties(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        y = np.array([0.5, 1.5, 2.5, 4.5, 4.0, 5.5, 6.5, 9.0])
        ours = wilcoxon_signed_rank(x, y, alternative="greater")
        ref = scipy.stats.wilcoxon(x, y, alternative="greater",
                                   correction=False, mode="approx")
        assert ours["p_value"] == pytest.approx(ref.pvalue, rel=1e-6)


class TestWilcoxonBehaviour:
    def test_consistent_improvement_small_p(self):
        rng = np.random.default_rng(0)
        y = rng.uniform(0.5, 0.9, size=50)
        x = y + rng.uniform(0.01, 0.05, size=50)  # x always better
        result = wilcoxon_signed_rank(x, y, alternative="greater")
        assert result["p_value"] < 1e-6

    def test_no_difference_large_p(self):
        rng = np.random.default_rng(1)
        y = rng.uniform(size=50)
        x = y + rng.normal(0, 0.01, size=50)
        result = wilcoxon_signed_rank(x, y, alternative="greater")
        assert result["p_value"] > 0.01

    def test_all_zero_differences(self):
        x = np.ones(10)
        result = wilcoxon_signed_rank(x, x)
        assert result["p_value"] == 1.0
        assert result["n_effective"] == 0

    def test_zeros_dropped(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        result = wilcoxon_signed_rank(x, y)
        assert result["n_effective"] == 3

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2], [1, 2, 3])

    def test_unknown_alternative_raises(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2], [2, 1], alternative="sideways")

    def test_statistic_is_positive_rank_sum(self):
        x = np.array([2.0, 0.0])
        y = np.array([1.0, 1.0])
        # diffs: +1, -1 -> ranks 1.5 each, W+ = 1.5
        result = wilcoxon_signed_rank(x, y)
        assert result["statistic"] == pytest.approx(1.5)
