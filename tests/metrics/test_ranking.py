"""Tests for AUCROC / AP / precision@n, including ranking-metric properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ranking import auc_roc, average_precision, precision_at_n


def labelled_scores(min_size=4, max_size=60):
    """Strategy: (y, scores) with both classes present."""
    return st.integers(min_value=0, max_value=10_000).map(_make_case(
        min_size, max_size))


def _make_case(min_size, max_size):
    def build(seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(min_size, max_size + 1))
        y = np.zeros(n, dtype=int)
        n_pos = int(rng.integers(1, n))
        y[:n_pos] = 1
        rng.shuffle(y)
        scores = rng.normal(size=n)
        return y, scores
    return build


class TestAucRoc:
    def test_perfect_ranking(self):
        y = [0, 0, 0, 1, 1]
        s = [0.1, 0.2, 0.3, 0.8, 0.9]
        assert auc_roc(y, s) == 1.0

    def test_inverted_ranking(self):
        y = [1, 1, 0, 0]
        s = [0.1, 0.2, 0.8, 0.9]
        assert auc_roc(y, s) == 0.0

    def test_all_tied_scores(self):
        y = [0, 1, 0, 1]
        s = [0.5, 0.5, 0.5, 0.5]
        assert auc_roc(y, s) == pytest.approx(0.5)

    def test_known_value(self):
        # 2 pos, 2 neg; one inversion out of 4 pairs -> 0.75.
        y = [0, 1, 0, 1]
        s = [0.1, 0.2, 0.3, 0.4]
        assert auc_roc(y, s) == pytest.approx(0.75)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="both classes"):
            auc_roc([1, 1, 1], [0.1, 0.2, 0.3])

    def test_non_binary_raises(self):
        with pytest.raises(ValueError, match="only 0"):
            auc_roc([0, 1, 2], [0.1, 0.2, 0.3])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            auc_roc([0, 1], [0.1, 0.2, 0.3])

    @given(labelled_scores())
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, case):
        y, s = case
        assert 0.0 <= auc_roc(y, s) <= 1.0

    @given(labelled_scores())
    @settings(max_examples=50, deadline=None)
    def test_monotone_invariance(self, case):
        """AUCROC is invariant under strictly increasing transforms."""
        y, s = case
        transformed = np.exp(0.5 * s) + 3.0
        assert auc_roc(y, s) == pytest.approx(auc_roc(y, transformed))

    @given(labelled_scores())
    @settings(max_examples=50, deadline=None)
    def test_negation_flips(self, case):
        """Negating the scores maps AUC to 1 - AUC."""
        y, s = case
        assert auc_roc(y, s) + auc_roc(y, -s) == pytest.approx(1.0)

    @given(labelled_scores())
    @settings(max_examples=30, deadline=None)
    def test_matches_pairwise_definition(self, case):
        """AUC equals the tie-aware pairwise win rate, computed brute-force."""
        y, s = case
        y = np.asarray(y)
        s = np.asarray(s)
        pos = s[y == 1]
        neg = s[y == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        brute = (wins + 0.5 * ties) / (len(pos) * len(neg))
        assert auc_roc(y, s) == pytest.approx(brute)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        y = [0, 0, 1, 1]
        s = [0.1, 0.2, 0.8, 0.9]
        assert average_precision(y, s) == 1.0

    def test_known_value(self):
        # Ranking: pos, neg, pos -> AP = (1/1 + 2/3) / 2.
        y = [1, 0, 1]
        s = [0.9, 0.5, 0.1]
        assert average_precision(y, s) == pytest.approx((1.0 + 2.0 / 3.0) / 2)

    def test_worst_ranking(self):
        y = [1, 0, 0, 0]
        s = [0.1, 0.5, 0.6, 0.7]
        assert average_precision(y, s) == pytest.approx(0.25)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            average_precision([0, 0], [0.1, 0.2])

    @given(labelled_scores())
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, case):
        y, s = case
        ap = average_precision(y, s)
        base_rate = np.asarray(y).mean()
        assert 0.0 < ap <= 1.0
        # AP of a perfect ranking is 1; a ranking cannot do better.
        assert ap <= 1.0 + 1e-12
        assert ap >= base_rate / len(y)

    @given(labelled_scores())
    @settings(max_examples=50, deadline=None)
    def test_monotone_invariance(self, case):
        y, s = case
        assert average_precision(y, s) == pytest.approx(
            average_precision(y, 2.0 * np.asarray(s) + 5.0))


class TestPrecisionAtN:
    def test_default_n_is_positive_count(self):
        y = [1, 1, 0, 0, 0]
        s = [0.9, 0.8, 0.1, 0.2, 0.3]
        assert precision_at_n(y, s) == 1.0

    def test_explicit_n(self):
        y = [1, 0, 0, 0]
        s = [0.9, 0.8, 0.1, 0.2]
        assert precision_at_n(y, s, n=2) == 0.5

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            precision_at_n([0, 1], [0.1, 0.2], n=3)
