"""End-to-end integration tests across the whole library."""

import numpy as np
import pytest

import repro
from repro.core import UADBooster
from repro.data import load_dataset, make_anomaly_dataset
from repro.data.preprocessing import StandardScaler
from repro.detectors import DETECTOR_NAMES, make_detector
from repro.metrics import auc_roc, average_precision


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        assert repro.UADBooster is UADBooster
        assert callable(repro.make_detector)
        assert callable(repro.load_dataset)
        assert callable(repro.auc_roc)

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        data = repro.make_anomaly_dataset("local", random_state=0)
        X = StandardScaler().fit_transform(data.X)
        source = repro.make_detector("IForest", random_state=0)
        source.fit(X)
        booster = repro.UADBooster(n_iterations=2, hidden=16,
                                   random_state=0)
        booster.fit(X, source)
        assert auc_roc(data.y, booster.scores_) > 0.5


@pytest.mark.parametrize("detector", DETECTOR_NAMES)
def test_every_detector_boostable(detector):
    """UADB is model-agnostic: every one of the 14 detectors must plug in."""
    data = make_anomaly_dataset("global", n_inliers=130, n_anomalies=14,
                                n_features=4, random_state=1)
    X = StandardScaler().fit_transform(data.X)
    source = make_detector(detector, random_state=0).fit(X)
    booster = UADBooster(n_iterations=2, hidden=16, epochs_per_iteration=2,
                         random_state=0)
    booster.fit(X, source)
    assert booster.scores_.shape == (data.n_samples,)
    assert 0.0 <= average_precision(data.y, booster.scores_) <= 1.0


def test_registry_to_booster_pipeline():
    """Load a benchmark stand-in, fit, boost — the full harness path."""
    ds = load_dataset("wine", max_samples=130, max_features=8)
    X = StandardScaler().fit_transform(ds.X)
    source = make_detector("HBOS").fit(X)
    booster = UADBooster(n_iterations=2, hidden=16, epochs_per_iteration=2,
                         random_state=0)
    booster.fit(X, source)
    source_auc = auc_roc(ds.y, source.fit_scores())
    booster_auc = auc_roc(ds.y, booster.scores_)
    assert np.isfinite(source_auc) and np.isfinite(booster_auc)


def test_failure_injection_nan_features():
    """NaN features must be rejected loudly at every entry point."""
    X = np.ones((20, 3))
    X[0, 0] = np.nan
    with pytest.raises(ValueError):
        make_detector("IForest").fit(X)
    with pytest.raises(ValueError):
        UADBooster().fit(X, np.ones(20))


def test_failure_injection_constant_scores():
    """A degenerate source (constant scores) must not crash the booster."""
    data = make_anomaly_dataset("global", n_inliers=90, n_anomalies=10,
                                n_features=3, random_state=0)
    X = StandardScaler().fit_transform(data.X)
    booster = UADBooster(n_iterations=2, hidden=16, epochs_per_iteration=2,
                         random_state=0)
    booster.fit(X, np.full(100, 0.5))
    assert np.all(np.isfinite(booster.scores_))


def test_cross_detector_score_scale_compatibility():
    """fit_scores() of every detector feeds UADB on the same [0,1] scale."""
    data = make_anomaly_dataset("clustered", n_inliers=90, n_anomalies=10,
                                random_state=0)
    X = StandardScaler().fit_transform(data.X)
    for name in ("IForest", "LOF", "ECOD"):
        scores = make_detector(name, random_state=0).fit(X).fit_scores()
        assert scores.min() == pytest.approx(0.0)
        assert scores.max() == pytest.approx(1.0)
