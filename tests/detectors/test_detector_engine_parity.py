"""Vectorized vs reference engine parity for ABOD / COF / SOD.

The acceptance bar is exact equality (``np.array_equal``), not allclose:
the vectorized engines are engineered to perform the same floating-point
operations in the same order as the retained per-row loops (same GEMM
shapes, contiguous reductions, count-grouped masked sums).
"""

import numpy as np
import pytest

import repro.kernels as kernels
from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_anomaly_dataset
from repro.detectors import ABOD, COF, SOD

ENGINES = [ABOD, COF, SOD]


def _conformance_datasets():
    """Heterogeneous fixtures: every synthetic anomaly type + duplicates."""
    cases = []
    for kind in ("local", "global", "clustered", "dependency"):
        ds = make_anomaly_dataset(kind, n_inliers=140, n_anomalies=20,
                                  n_features=8, random_state=11)
        cases.append((kind, StandardScaler().fit_transform(ds.X)))
    rng = np.random.default_rng(5)
    base = rng.normal(size=(60, 5))
    cases.append(("duplicates", np.vstack([base, base[:30]])))
    return cases


DATASETS = _conformance_datasets()


@pytest.fixture(autouse=True)
def fresh_cache():
    kernels.clear_cache()
    yield
    kernels.clear_cache()


@pytest.mark.parametrize("cls", ENGINES)
@pytest.mark.parametrize("name,X", DATASETS, ids=[n for n, _ in DATASETS])
class TestEngineParity:
    def test_fit_scores_exactly_equal(self, cls, name, X):
        vec = cls(engine="vectorized").fit(X)
        ref = cls(engine="reference").fit(X)
        np.testing.assert_array_equal(vec.decision_scores_,
                                      ref.decision_scores_)

    def test_decision_function_exactly_equal(self, cls, name, X):
        vec = cls(engine="vectorized").fit(X)
        ref = cls(engine="reference").fit(X)
        queries = np.vstack([X[:25] * 1.01, X[:5]])  # shifted + exact hits
        np.testing.assert_array_equal(vec.decision_function(queries),
                                      ref.decision_function(queries))


@pytest.mark.parametrize("cls", ENGINES)
class TestEngineParam:
    def test_default_is_vectorized(self, cls):
        assert cls().engine == "vectorized"

    def test_invalid_engine_rejected(self, cls):
        with pytest.raises(ValueError, match="engine"):
            cls(engine="gpu")

    def test_engine_in_params(self, cls):
        assert cls(engine="reference").get_params()["engine"] == "reference"


@pytest.mark.parametrize("cls", ENGINES)
def test_legacy_state_without_engine_restores(cls):
    """Artifacts saved by repro <= 1.2 predate the engine parameter (and
    SOD's ndarray neighbor lists); set_state must upgrade them."""
    X = DATASETS[0][1]
    fitted = cls().fit(X)
    state = fitted.get_state()
    state.pop("engine")
    if cls is SOD:
        state["_train_knn"] = [set(row.tolist())
                               for row in state["_train_knn"]]
    restored = cls.__new__(cls).set_state(state)
    assert restored.engine == "vectorized"
    queries = X[:20] * 1.01
    np.testing.assert_array_equal(restored.decision_function(queries),
                                  fitted.decision_function(queries))


def test_parity_independent_of_cache_state():
    """A warm shared cache must not change either engine's scores."""
    X = StandardScaler().fit_transform(
        make_anomaly_dataset("local", n_inliers=120, n_anomalies=15,
                             n_features=6, random_state=3).X)
    kernels.clear_cache()
    cold = SOD().fit(X).decision_scores_
    warm = SOD().fit(X).decision_scores_  # second fit hits the cache
    np.testing.assert_array_equal(cold, warm)
    assert kernels.cache_stats()["hits"] >= 1


@pytest.mark.parametrize("cls", ENGINES)
def test_multi_block_parity(cls, monkeypatch):
    """The vectorized engines process rows in memory-bounded blocks; a
    tiny element budget forces many blocks, which must not change a
    single score (rows are independent)."""
    import sys

    module = sys.modules[cls.__module__]
    monkeypatch.setattr(module, "_BLOCK_ELEMENTS", 1)
    X = DATASETS[0][1]
    kernels.clear_cache()
    blocked = cls().fit(X).decision_scores_
    monkeypatch.setattr(module, "_BLOCK_ELEMENTS", 2**22)
    single = cls().fit(X).decision_scores_
    ref = cls(engine="reference").fit(X).decision_scores_
    np.testing.assert_array_equal(blocked, single)
    np.testing.assert_array_equal(blocked, ref)


class TestTinyNeighborhoods:
    def test_abod_single_neighbor_matches_reference(self):
        """Effective k=1 forms no angle pairs; both engines must agree
        on the reference's k<2 guard (score 0.0) instead of the
        vectorized variance yielding NaN."""
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        vec = ABOD().fit(X)
        ref = ABOD(engine="reference").fit(X)
        np.testing.assert_array_equal(vec.decision_scores_,
                                      ref.decision_scores_)
        assert np.all(np.isfinite(vec.decision_scores_))

    @pytest.mark.parametrize("cls", ENGINES)
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_tiny_n_parity(self, cls, n):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(n, 3))
        vec = cls().fit(X)
        ref = cls(engine="reference").fit(X)
        np.testing.assert_array_equal(vec.decision_scores_,
                                      ref.decision_scores_)


def test_kde_large_matrix_not_pinned_in_cache(monkeypatch):
    """KDE must not park self-distance matrices above the byte gate in
    the process-wide cache (memory stays transient for big fits)."""
    import repro.detectors.kde as kde_mod
    from repro.detectors import KDE

    X = np.random.default_rng(1).normal(size=(80, 4))
    kernels.clear_cache()
    monkeypatch.setattr(kde_mod, "_CACHE_MATRIX_MAX_BYTES", 1)
    gated = KDE(random_state=0).fit(X).decision_scores_
    assert kernels.cache_stats()["matrices"] == 0
    monkeypatch.undo()
    kernels.clear_cache()
    cached = KDE(random_state=0).fit(X).decision_scores_
    assert kernels.cache_stats()["matrices"] == 1
    np.testing.assert_array_equal(gated, cached)
