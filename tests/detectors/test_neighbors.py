"""Tests for the brute-force nearest-neighbour machinery."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.detectors.neighbors import kneighbors, pairwise_distances


class TestPairwiseDistances:
    def test_matches_scipy(self, rng):
        A = rng.normal(size=(20, 5))
        B = rng.normal(size=(15, 5))
        np.testing.assert_allclose(
            pairwise_distances(A, B), cdist(A, B), atol=1e-9)

    def test_self_distance_zero(self, rng):
        A = rng.normal(size=(10, 3))
        D = pairwise_distances(A, A)
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-6)

    def test_symmetry(self, rng):
        A = rng.normal(size=(12, 4))
        D = pairwise_distances(A, A)
        np.testing.assert_allclose(D, D.T, atol=1e-9)

    def test_no_negative_from_rounding(self, rng):
        # Nearly identical points can yield tiny negative squared distances
        # before the clamp.
        A = np.ones((5, 3)) + rng.normal(0, 1e-12, size=(5, 3))
        D = pairwise_distances(A, A)
        assert np.all(D >= 0)

    def test_width_mismatch(self, rng):
        with pytest.raises(ValueError):
            pairwise_distances(rng.normal(size=(3, 2)),
                               rng.normal(size=(3, 3)))


class TestKneighbors:
    def test_matches_bruteforce(self, rng):
        X = rng.normal(size=(30, 4))
        dist, idx = kneighbors(X, X, k=5, exclude_self=True)
        full = cdist(X, X)
        np.fill_diagonal(full, np.inf)
        expected_idx = np.argsort(full, axis=1)[:, :5]
        expected_dist = np.take_along_axis(full, expected_idx, axis=1)
        np.testing.assert_allclose(dist, expected_dist, atol=1e-9)
        # Indices can differ under exact ties; distances must match.

    def test_sorted_ascending(self, rng):
        X = rng.normal(size=(25, 3))
        dist, _ = kneighbors(X, X, k=6, exclude_self=True)
        assert np.all(np.diff(dist, axis=1) >= -1e-12)

    def test_exclude_self(self, rng):
        X = rng.normal(size=(10, 2))
        _, idx = kneighbors(X, X, k=3, exclude_self=True)
        for i in range(10):
            assert i not in idx[i]

    def test_include_self(self, rng):
        X = rng.normal(size=(10, 2))
        dist, idx = kneighbors(X, X, k=1)
        np.testing.assert_array_equal(idx.ravel(), np.arange(10))
        np.testing.assert_allclose(dist, 0.0, atol=1e-6)

    def test_query_different_reference(self, rng):
        ref = rng.normal(size=(20, 3))
        query = rng.normal(size=(5, 3))
        dist, idx = kneighbors(query, ref, k=2)
        full = cdist(query, ref)
        np.testing.assert_allclose(dist[:, 0], full.min(axis=1), atol=1e-9)

    def test_chunking_consistent(self, rng):
        X = rng.normal(size=(50, 3))
        d1, i1 = kneighbors(X, X, k=4, exclude_self=True, chunk_size=7)
        d2, i2 = kneighbors(X, X, k=4, exclude_self=True, chunk_size=1024)
        np.testing.assert_allclose(d1, d2, atol=1e-12)

    def test_k_out_of_range(self, rng):
        X = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            kneighbors(X, X, k=5, exclude_self=True)
        with pytest.raises(ValueError):
            kneighbors(X, X, k=0)
