"""Tests for the brute-force nearest-neighbour machinery."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.detectors.neighbors import kneighbors, pairwise_distances


class TestPairwiseDistances:
    def test_matches_scipy(self, rng):
        A = rng.normal(size=(20, 5))
        B = rng.normal(size=(15, 5))
        np.testing.assert_allclose(
            pairwise_distances(A, B), cdist(A, B), atol=1e-9)

    def test_self_distance_zero(self, rng):
        A = rng.normal(size=(10, 3))
        D = pairwise_distances(A, A)
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-6)

    def test_symmetry(self, rng):
        A = rng.normal(size=(12, 4))
        D = pairwise_distances(A, A)
        np.testing.assert_allclose(D, D.T, atol=1e-9)

    def test_no_negative_from_rounding(self, rng):
        # Nearly identical points can yield tiny negative squared distances
        # before the clamp.
        A = np.ones((5, 3)) + rng.normal(0, 1e-12, size=(5, 3))
        D = pairwise_distances(A, A)
        assert np.all(D >= 0)

    def test_width_mismatch(self, rng):
        with pytest.raises(ValueError):
            pairwise_distances(rng.normal(size=(3, 2)),
                               rng.normal(size=(3, 3)))


class TestKneighbors:
    def test_matches_bruteforce(self, rng):
        X = rng.normal(size=(30, 4))
        dist, idx = kneighbors(X, X, k=5, exclude_self=True)
        full = cdist(X, X)
        np.fill_diagonal(full, np.inf)
        expected_idx = np.argsort(full, axis=1)[:, :5]
        expected_dist = np.take_along_axis(full, expected_idx, axis=1)
        np.testing.assert_allclose(dist, expected_dist, atol=1e-9)
        # Indices can differ under exact ties; distances must match.

    def test_sorted_ascending(self, rng):
        X = rng.normal(size=(25, 3))
        dist, _ = kneighbors(X, X, k=6, exclude_self=True)
        assert np.all(np.diff(dist, axis=1) >= -1e-12)

    def test_exclude_self(self, rng):
        X = rng.normal(size=(10, 2))
        _, idx = kneighbors(X, X, k=3, exclude_self=True)
        for i in range(10):
            assert i not in idx[i]

    def test_include_self(self, rng):
        X = rng.normal(size=(10, 2))
        dist, idx = kneighbors(X, X, k=1)
        np.testing.assert_array_equal(idx.ravel(), np.arange(10))
        np.testing.assert_allclose(dist, 0.0, atol=1e-6)

    def test_query_different_reference(self, rng):
        ref = rng.normal(size=(20, 3))
        query = rng.normal(size=(5, 3))
        dist, idx = kneighbors(query, ref, k=2)
        full = cdist(query, ref)
        np.testing.assert_allclose(dist[:, 0], full.min(axis=1), atol=1e-9)

    def test_chunking_consistent(self, rng):
        X = rng.normal(size=(50, 3))
        d1, i1 = kneighbors(X, X, k=4, exclude_self=True, chunk_size=7)
        d2, i2 = kneighbors(X, X, k=4, exclude_self=True, chunk_size=1024)
        np.testing.assert_allclose(d1, d2, atol=1e-12)

    def test_k_out_of_range(self, rng):
        X = rng.normal(size=(5, 2))
        with pytest.raises(ValueError):
            kneighbors(X, X, k=5, exclude_self=True)
        with pytest.raises(ValueError):
            kneighbors(X, X, k=0)


class TestExactRecompute:
    """The a^2+b^2-2ab expansion loses precision on near-duplicates; the
    k winners' distances are recomputed exactly (regression for the
    float-precision hazard)."""

    def test_duplicated_rows_report_exact_zero(self, rng):
        # Far from the origin the expansion error is magnified: without
        # the exact recompute these duplicates report ~1e-5, not 0.0.
        base = rng.normal(size=(20, 4)) + 1e4
        X = np.vstack([base, base])
        dist, idx = kneighbors(X, X, k=1, exclude_self=True)
        np.testing.assert_array_equal(dist, np.zeros((40, 1)))
        # Each row's nearest neighbour is its duplicate.
        np.testing.assert_array_equal(idx.ravel() % 20, np.arange(40) % 20)

    def test_near_duplicate_distances_accurate(self):
        # Two points 1e-8 apart, 1e4 from the origin: the expansion
        # cannot represent the gap (cancellation leaves ~1e-4 noise);
        # the recomputed distance must be exact to double precision.
        X = np.array([[1e4, 1e4], [1e4 + 1e-8, 1e4]])
        true_gap = X[1, 0] - X[0, 0]  # representable gap, ~1e-8
        dist, _ = kneighbors(X, X, k=1, exclude_self=True)
        assert 0.0 < true_gap < 2e-8
        np.testing.assert_array_equal(dist, np.full((2, 1), true_gap))

    def test_exact_distances_match_gather(self, rng):
        X = rng.normal(size=(50, 3))
        dist, idx = kneighbors(X, X, k=5, exclude_self=True)
        diff = X[:, None, :] - X[idx]
        exact = np.sqrt(np.einsum("nkd,nkd->nk", diff, diff))
        np.testing.assert_array_equal(dist, exact)
