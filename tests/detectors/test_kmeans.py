"""Tests for the k-means substrate."""

import numpy as np
import pytest

from repro.detectors.kmeans import KMeans


def blob_data(rng, centers, n_per=30, spread=0.2):
    parts = [c + rng.normal(0, spread, size=(n_per, len(c)))
             for c in centers]
    return np.vstack(parts)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        centers = [(-5.0, -5.0), (5.0, 5.0), (5.0, -5.0)]
        X = blob_data(rng, centers)
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        found = km.cluster_centers_
        for c in centers:
            nearest = np.linalg.norm(found - np.array(c), axis=1).min()
            assert nearest < 0.5

    def test_labels_match_nearest_center(self, rng):
        X = blob_data(rng, [(-3.0,), (3.0,)])
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        np.testing.assert_array_equal(km.labels_, km.predict(X))

    def test_inertia_decreases_with_k(self, rng):
        X = rng.normal(size=(100, 3))
        inertias = [KMeans(k, random_state=0).fit(X).inertia_
                    for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_single_cluster_center_is_mean(self, rng):
        X = rng.normal(size=(40, 2))
        km = KMeans(n_clusters=1, random_state=0).fit(X)
        np.testing.assert_allclose(km.cluster_centers_[0], X.mean(axis=0),
                                   atol=1e-9)

    def test_deterministic(self, rng):
        X = rng.normal(size=(60, 2))
        a = KMeans(3, random_state=7).fit(X)
        b = KMeans(3, random_state=7).fit(X)
        np.testing.assert_allclose(a.cluster_centers_, b.cluster_centers_)

    def test_duplicate_points_handled(self):
        X = np.ones((20, 2))
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        assert np.all(np.isfinite(km.cluster_centers_))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((2, 2)))

    def test_fewer_samples_than_clusters(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=5).fit(np.zeros((3, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_init=0)
