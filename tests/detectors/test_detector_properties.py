"""Property-based invariance tests for detector families.

Each detector family has mathematical invariances that must hold exactly:
distance-based scores are translation-invariant, ECDF-based scores are
invariant under strictly monotone per-feature transforms, and so on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import ECOD, HBOS, KNN, LOF, COPOD, PCA
from repro.metrics.ranking import auc_roc


def small_data(seed, n=60, d=3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d))


class TestTranslationInvariance:
    """Euclidean-distance detectors must ignore a constant shift."""

    @pytest.mark.parametrize("cls", [KNN, LOF])
    @given(st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_shift(self, cls, seed):
        X = small_data(seed)
        shifted = X + 123.4
        a = cls().fit(X).decision_scores_
        b = cls().fit(shifted).decision_scores_
        np.testing.assert_allclose(a, b, rtol=1e-6, atol=1e-8)


class TestMonotoneInvariance:
    """Per-feature ECDF detectors depend only on within-column ranks."""

    @pytest.mark.parametrize("cls", [ECOD, COPOD])
    @given(st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_positive_affine_transform_is_exact_noop(self, cls, seed):
        """Positive affine maps preserve both the per-column ranks (hence
        every ECDF tail probability) and the skewness sign (hence the
        automatic tail choice), so the scores must be identical.  A general
        nonlinear monotone map may flip a column's skewness sign and
        legitimately change the max-of-aggregates, so exactness is only
        promised for the affine case."""
        X = small_data(seed)
        transformed = 2.5 * X + 7.0
        a = cls().fit(X).decision_scores_
        b = cls().fit(transformed).decision_scores_
        np.testing.assert_allclose(a, b, rtol=1e-9)


class TestScaleEquivariance:
    @given(st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_knn_scores_scale_linearly(self, seed):
        X = small_data(seed)
        a = KNN().fit(X).decision_scores_
        b = KNN().fit(3.0 * X).decision_scores_
        np.testing.assert_allclose(3.0 * a, b, rtol=1e-8)

    @given(st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_lof_scores_scale_invariant(self, seed):
        """LOF is a density *ratio*, so uniform scaling cancels."""
        X = small_data(seed)
        a = LOF().fit(X).decision_scores_
        b = LOF().fit(5.0 * X).decision_scores_
        np.testing.assert_allclose(a, b, rtol=1e-6)


class TestPermutationInvariance:
    """Deterministic detectors must not care about row order."""

    @pytest.mark.parametrize("cls", [KNN, LOF, HBOS, ECOD, COPOD, PCA])
    def test_row_shuffle(self, cls):
        rng = np.random.default_rng(7)
        X = small_data(3, n=50)
        perm = rng.permutation(50)
        a = cls().fit(X).decision_scores_
        b = cls().fit(X[perm]).decision_scores_
        np.testing.assert_allclose(a[perm], b, rtol=1e-6, atol=1e-9)


class TestAucConsistency:
    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_obvious_outlier_ranks_top_for_all_families(self, seed):
        """A single extreme point must land in the top ranks for every
        deterministic detector family."""
        X = small_data(seed, n=80)
        X = np.vstack([X, [[30.0, 30.0, 30.0]]])
        y = np.zeros(81, dtype=int)
        y[-1] = 1
        for cls in (KNN, LOF, HBOS, ECOD, PCA):
            scores = cls().fit(X).decision_scores_
            assert auc_roc(y, scores) > 0.95, cls.__name__
