"""Contract + behaviour tests for the extra (non-paper) detectors."""

import numpy as np
import pytest

from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_global_anomalies
from repro.detectors import (
    ABOD,
    INNE,
    KDE,
    MCD,
    FeatureBagging,
    Sampling,
    make_detector,
)
from repro.detectors.registry import (
    ALL_DETECTOR_NAMES,
    DETECTOR_NAMES,
    EXTRA_DETECTOR_NAMES,
)
from repro.metrics.ranking import auc_roc


@pytest.fixture(scope="module")
def easy_data():
    ds = make_global_anomalies(n_inliers=180, n_anomalies=20, n_features=3,
                               random_state=5)
    X = StandardScaler().fit_transform(ds.X)
    return X, ds.y


class TestRegistryExtension:
    def test_six_extras(self):
        assert len(EXTRA_DETECTOR_NAMES) == 6

    def test_all_names_union(self):
        assert ALL_DETECTOR_NAMES == DETECTOR_NAMES + EXTRA_DETECTOR_NAMES

    def test_paper_set_unchanged(self):
        assert len(DETECTOR_NAMES) == 14
        assert not set(EXTRA_DETECTOR_NAMES) & set(DETECTOR_NAMES)


@pytest.mark.parametrize("name", EXTRA_DETECTOR_NAMES)
class TestExtraContract:
    def test_fit_and_score(self, name, easy_data):
        X, y = easy_data
        det = make_detector(name, random_state=0).fit(X)
        assert det.decision_scores_.shape == (X.shape[0],)
        assert np.all(np.isfinite(det.decision_scores_))
        assert auc_roc(y, det.decision_scores_) > 0.6

    def test_fit_scores_unit_interval(self, name, easy_data):
        X, _ = easy_data
        det = make_detector(name, random_state=0).fit(X)
        s = det.fit_scores()
        assert s.min() == pytest.approx(0.0)
        assert s.max() == pytest.approx(1.0)

    def test_out_of_sample(self, name, easy_data):
        X, _ = easy_data
        det = make_detector(name, random_state=0).fit(X)
        out = det.decision_function(X[:7] * 1.01)
        assert out.shape == (7,)
        assert np.all(np.isfinite(out))

    def test_deterministic(self, name, easy_data):
        X, _ = easy_data
        a = make_detector(name, random_state=3).fit(X).decision_scores_
        b = make_detector(name, random_state=3).fit(X).decision_scores_
        np.testing.assert_allclose(a, b)

    def test_boostable(self, name, easy_data):
        from repro.core import UADBooster
        X, _ = easy_data
        det = make_detector(name, random_state=0).fit(X)
        booster = UADBooster(n_iterations=2, hidden=16,
                             epochs_per_iteration=2, random_state=0)
        booster.fit(X, det)
        assert booster.scores_.shape == (X.shape[0],)


class TestABOD:
    def test_fringe_point_low_angle_variance(self, rng):
        X = np.vstack([rng.normal(size=(100, 2)), [[10.0, 10.0]]])
        det = ABOD(n_neighbors=10).fit(X)
        assert det.decision_scores_[-1] == det.decision_scores_.max()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ABOD(n_neighbors=1)


class TestMCD:
    def test_robust_against_masking(self, rng):
        """A clump of outliers must not drag the covariance estimate."""
        inliers = rng.normal(size=(150, 2))
        outliers = rng.normal(8.0, 0.2, size=(20, 2))
        X = np.vstack([inliers, outliers])
        y = np.array([0] * 150 + [1] * 20)
        det = MCD(random_state=0).fit(X)
        assert auc_roc(y, det.decision_scores_) > 0.95

    def test_scores_are_mahalanobis(self, rng):
        X = rng.normal(size=(100, 3))
        det = MCD(random_state=0).fit(X)
        assert np.all(det.decision_scores_ >= 0)

    def test_invalid_support_fraction(self):
        with pytest.raises(ValueError):
            MCD(support_fraction=0.4)


class TestKDE:
    def test_low_density_scores_high(self, rng):
        X = np.vstack([rng.normal(size=(200, 2)), [[6.0, 6.0]]])
        det = KDE(random_state=0).fit(X)
        assert det.decision_scores_[-1] == det.decision_scores_.max()

    def test_explicit_bandwidth(self, rng):
        det = KDE(bandwidth=0.5, random_state=0).fit(rng.normal(size=(50, 2)))
        assert det._h == 0.5

    def test_subsample_cap(self, rng):
        det = KDE(max_train=30, random_state=0).fit(rng.normal(size=(80, 2)))
        assert det._X_kde.shape[0] == 30

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            KDE(bandwidth=-1.0)


class TestINNE:
    def test_far_point_max_score(self, rng):
        X = np.vstack([rng.normal(size=(150, 2)), [[50.0, 50.0]]])
        det = INNE(random_state=0).fit(X)
        # The far point is covered by (almost) no hypersphere; members that
        # happen to sample the far point itself contribute slightly less
        # than 1, so the score is near-but-not-exactly 1.
        assert det.decision_scores_[-1] == det.decision_scores_.max()
        assert det.decision_scores_[-1] == pytest.approx(1.0, abs=0.05)

    def test_scores_bounded(self, rng):
        det = INNE(random_state=0).fit(rng.normal(size=(100, 3)))
        assert det.decision_scores_.max() <= 1.0 + 1e-9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            INNE(max_samples=1)


class TestFeatureBagging:
    def test_robust_to_noise_features(self, rng):
        """With many irrelevant features, bagged LOF should hold up."""
        signal = rng.normal(size=(200, 2))
        outlier = np.array([[5.0, 5.0]])
        X2 = np.vstack([signal, outlier])
        noise = rng.normal(size=(201, 8))
        X = np.hstack([X2, noise])
        det = FeatureBagging(n_estimators=20, random_state=0).fit(X)
        assert det.decision_scores_[-1] > np.percentile(
            det.decision_scores_[:-1], 90)

    def test_custom_base_factory(self, rng):
        from repro.detectors import KNN
        det = FeatureBagging(base_factory=lambda: KNN(n_neighbors=3),
                             n_estimators=5, random_state=0)
        det.fit(rng.normal(size=(60, 4)))
        assert len(det._members) == 5

    def test_max_combination(self, rng):
        det = FeatureBagging(n_estimators=5, combination="max",
                             random_state=0).fit(rng.normal(size=(60, 4)))
        assert det.decision_scores_.shape == (60,)

    def test_invalid_combination(self):
        with pytest.raises(ValueError):
            FeatureBagging(combination="median")


class TestSampling:
    def test_subset_size_respected(self, rng):
        det = Sampling(subset_size=10, random_state=0).fit(
            rng.normal(size=(50, 2)))
        assert det._subset.shape[0] == 10

    def test_subset_capped_at_n(self, rng):
        det = Sampling(subset_size=100, random_state=0).fit(
            rng.normal(size=(30, 2)))
        assert det._subset.shape[0] == 30

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Sampling(subset_size=0)
