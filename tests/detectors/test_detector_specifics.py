"""Algorithm-specific behaviour tests for individual detectors.

Each detector family is checked against the defining property of its
assumption: density methods must respond to density, neighbour methods to
neighbour distances, subspace methods to subspace deviations, and so on.
"""

import numpy as np
import pytest

from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import (
    make_clustered_anomalies,
    make_dependency_anomalies,
    make_local_anomalies,
)
from repro.detectors import (
    CBLOF,
    COF,
    COPOD,
    ECOD,
    GMM,
    HBOS,
    KNN,
    LODA,
    LOF,
    OCSVM,
    PCA,
    SOD,
    DeepSVDD,
    IForest,
)
from repro.detectors.iforest import average_path_length
from repro.metrics.ranking import auc_roc


def _single_blob(rng, n=150, d=3):
    return rng.normal(size=(n, d))


class TestIForest:
    def test_average_path_length_values(self):
        # c(1)=0, c(2)=1, c(n) grows ~ 2 ln(n).
        out = average_path_length(np.array([1, 2, 256]))
        assert out[0] == 0.0
        assert out[1] == 1.0
        assert 10.0 < out[2] < 13.0

    def test_isolated_point_scores_high(self, rng):
        X = np.vstack([_single_blob(rng), [[25.0, 25.0, 25.0]]])
        det = IForest(random_state=0).fit(X)
        assert det.decision_scores_[-1] == det.decision_scores_.max()

    def test_scores_in_iforest_range(self, rng):
        det = IForest(random_state=0).fit(_single_blob(rng))
        # s(x) = 2^{-E[h]/c} lies in (0, 1).
        assert np.all(det.decision_scores_ > 0)
        assert np.all(det.decision_scores_ < 1)

    def test_subsample_cap(self, rng):
        det = IForest(max_samples=32, n_estimators=10, random_state=0)
        det.fit(_single_blob(rng, n=100))
        assert det._psi == 32

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IForest(n_estimators=0)
        with pytest.raises(ValueError):
            IForest(max_samples=1)


class TestHBOS:
    def test_univariate_tail_scores_high(self, rng):
        X = np.concatenate([rng.normal(0, 1, 200), [8.0]]).reshape(-1, 1)
        det = HBOS().fit(X)
        assert det.decision_scores_[-1] == det.decision_scores_.max()

    def test_additive_across_dimensions(self, rng):
        """Score of a 2-d point equals sum of per-dim histogram scores."""
        X = rng.normal(size=(100, 2))
        det = HBOS(n_bins=5).fit(X)
        det1 = HBOS(n_bins=5).fit(X[:, :1])
        det2 = HBOS(n_bins=5).fit(X[:, 1:])
        lhs = det.decision_function(X[:3])
        rhs = (det1.decision_function(X[:3, :1])
               + det2.decision_function(X[:3, 1:]))
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)


class TestKNN:
    def test_largest_equals_kth_distance(self, rng):
        X = rng.normal(size=(30, 2))
        det = KNN(n_neighbors=3, method="largest").fit(X)
        from repro.detectors.neighbors import kneighbors
        dist, _ = kneighbors(X, X, 3, exclude_self=True)
        np.testing.assert_allclose(det.decision_scores_, dist[:, -1])

    @pytest.mark.parametrize("method", ["largest", "mean", "median"])
    def test_methods_run(self, rng, method):
        det = KNN(n_neighbors=3, method=method).fit(rng.normal(size=(20, 2)))
        assert det.decision_scores_.shape == (20,)

    def test_method_ordering(self, rng):
        """kth distance >= mean of first k distances."""
        X = rng.normal(size=(40, 2))
        largest = KNN(n_neighbors=5, method="largest").fit(X)
        mean = KNN(n_neighbors=5, method="mean").fit(X)
        assert np.all(largest.decision_scores_ >= mean.decision_scores_ - 1e-12)

    def test_tiny_dataset_degrades_k(self):
        X = np.array([[0.0], [1.0], [2.0]])
        det = KNN(n_neighbors=10).fit(X)
        assert det.decision_scores_.shape == (3,)

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            KNN(method="sum")


class TestLOF:
    def test_local_anomalies_detected(self):
        ds = make_local_anomalies(n_inliers=300, n_anomalies=30, scale=5.0,
                                  random_state=0)
        X = StandardScaler().fit_transform(ds.X)
        det = LOF(n_neighbors=20).fit(X)
        assert auc_roc(ds.y, det.decision_scores_) > 0.8

    def test_uniform_data_scores_near_one(self, rng):
        """On homogeneous data every LOF score hovers around 1."""
        X = rng.uniform(size=(300, 2))
        det = LOF(n_neighbors=20).fit(X)
        inner = det.decision_scores_[50:250]
        assert np.median(inner) == pytest.approx(1.0, abs=0.15)

    def test_beats_knn_on_varying_density(self, rng):
        """The classic LOF motivation: anomalies near a dense cluster."""
        dense = rng.normal(0, 0.1, size=(200, 2))
        sparse = rng.normal(6, 1.5, size=(100, 2))
        anomalies = rng.normal(0, 0.5, size=(10, 2)) + [0.8, 0.8]
        X = np.vstack([dense, sparse, anomalies])
        y = np.array([0] * 300 + [1] * 10)
        lof_auc = auc_roc(y, LOF(20).fit(X).decision_scores_)
        knn_auc = auc_roc(y, KNN(5).fit(X).decision_scores_)
        assert lof_auc > knn_auc


class TestPCA:
    def test_detects_off_subspace_points(self, rng):
        """Inliers on a line, anomaly off the line at the same scale."""
        t = rng.normal(size=200)
        X = np.column_stack([t, 2 * t + rng.normal(0, 0.05, 200)])
        X = np.vstack([X, [[0.0, 3.0]]])  # off-line point
        det = PCA().fit(X)
        assert det.decision_scores_[-1] > np.percentile(
            det.decision_scores_[:-1], 99)

    def test_n_components_cap(self, rng):
        det = PCA(n_components=2).fit(rng.normal(size=(50, 5)))
        assert det._components.shape[0] == 2

    def test_invalid_components(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)


class TestOCSVM:
    def test_boundary_points_score_higher(self, rng):
        X = rng.normal(size=(150, 2))
        det = OCSVM(random_state=0).fit(X)
        radii = np.linalg.norm(X, axis=1)
        inner = det.decision_scores_[radii < 0.5]
        outer = det.decision_scores_[radii > 2.0]
        if inner.size and outer.size:
            assert outer.mean() > inner.mean()

    def test_dual_constraints_satisfied(self, rng):
        X = rng.normal(size=(100, 2))
        det = OCSVM(nu=0.5, random_state=0).fit(X)
        alpha = det._alpha
        assert alpha.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(alpha >= -1e-9)
        assert np.all(alpha <= 1.0 / (0.5 * 100) + 1e-9)

    def test_subsampling_cap(self, rng):
        det = OCSVM(max_train=50, random_state=0).fit(
            rng.normal(size=(120, 2)))
        assert det._X_sv.shape[0] == 50

    def test_explicit_gamma(self, rng):
        det = OCSVM(gamma=0.5, random_state=0).fit(rng.normal(size=(60, 2)))
        assert det._gamma_value == 0.5

    def test_invalid_nu(self):
        with pytest.raises(ValueError):
            OCSVM(nu=0.0)


class TestCBLOF:
    def test_small_cluster_scored_anomalous(self):
        """With k matched to the true cluster count, the tight anomaly
        cluster is classified as 'small' and scored by its distance to the
        large inlier clusters.  (With k much larger than the number of real
        clusters the split can absorb the anomaly cluster into the 'large'
        set — a known sensitivity of CBLOF that we preserve.)"""
        ds = make_clustered_anomalies(n_inliers=200, n_anomalies=20,
                                      random_state=1)
        X = StandardScaler().fit_transform(ds.X)
        det = CBLOF(n_clusters=3, random_state=0).fit(X)
        assert auc_roc(ds.y, det.decision_scores_) > 0.8

    def test_large_small_split(self):
        det = CBLOF(alpha=0.9, beta=5.0)
        sizes = np.array([80, 10, 5, 5])
        assert det._split_large_small(sizes) == 1  # 80 covers 80% < 90%... ratio 80/10=8 >= 5 -> boundary after first

    def test_invalid_alpha_beta(self):
        with pytest.raises(ValueError):
            CBLOF(alpha=0.4)
        with pytest.raises(ValueError):
            CBLOF(beta=0.5)


class TestCOF:
    def test_line_pattern_detection(self, rng):
        """COF's motivating case: inliers on a line, anomaly beside it."""
        t = np.linspace(0, 10, 120)
        line = np.column_stack([t, t]) + rng.normal(0, 0.02, (120, 2))
        X = np.vstack([line, [[5.0, 6.5]]])
        det = COF(n_neighbors=10).fit(X)
        assert det.decision_scores_[-1] > np.percentile(
            det.decision_scores_[:-1], 99)

    def test_chaining_distance_zero_for_single(self):
        from repro.detectors.cof import _average_chaining_distance
        assert _average_chaining_distance(np.zeros((1, 2))) == 0.0

    def test_chaining_distance_two_points(self):
        from repro.detectors.cof import _average_chaining_distance
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert _average_chaining_distance(pts) == pytest.approx(5.0)


class TestSOD:
    def test_subspace_anomaly_detected(self, rng):
        """Anomaly deviates in 2 informative dims; 8 noise dims mask it
        from full-space distances."""
        n = 150
        informative = rng.normal(0, 0.2, size=(n, 2))
        noise = rng.normal(0, 2.0, size=(n, 8))
        X = np.hstack([informative, noise])
        outlier = np.concatenate([[3.0, 3.0], rng.normal(0, 2.0, 8)])
        X = np.vstack([X, outlier])
        det = SOD(n_neighbors=25, ref_set=12).fit(X)
        assert det.decision_scores_[-1] > np.percentile(
            det.decision_scores_[:-1], 95)

    def test_invalid_ref_set(self):
        with pytest.raises(ValueError):
            SOD(n_neighbors=10, ref_set=15)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            SOD(alpha=1.5)


class TestECOD:
    def test_both_tails_detected(self, rng):
        X = np.concatenate([rng.normal(0, 1, 300), [-7.0, 7.0]]).reshape(-1, 1)
        det = ECOD().fit(X)
        assert det.decision_scores_[-1] > np.percentile(
            det.decision_scores_[:-2], 99)
        assert det.decision_scores_[-2] > np.percentile(
            det.decision_scores_[:-2], 99)

    def test_parameter_free(self):
        # Only contamination is configurable.
        det = ECOD(contamination=0.05)
        assert det.contamination == 0.05


class TestCOPOD:
    def test_multivariate_tail(self, rng):
        X = rng.normal(size=(300, 3))
        X = np.vstack([X, [[5.0, 5.0, 5.0]]])
        det = COPOD().fit(X)
        assert det.decision_scores_[-1] == det.decision_scores_.max()

    def test_close_to_ecod_on_symmetric_data(self, rng):
        """On symmetric data the two ECDF methods rank nearly alike."""
        X = rng.normal(size=(400, 4))
        a = ECOD().fit(X).decision_scores_
        b = COPOD().fit(X).decision_scores_
        assert np.corrcoef(a, b)[0, 1] > 0.95


class TestGMM:
    def test_likelihood_ranking(self, rng):
        X = np.vstack([rng.normal(size=(200, 2)), [[6.0, 6.0]]])
        det = GMM(random_state=0).fit(X)
        assert det.decision_scores_[-1] == det.decision_scores_.max()

    def test_multimodal_needs_components(self, rng):
        """A 2-component GMM fits a bimodal distribution better."""
        X = np.vstack([rng.normal(-4, 0.5, size=(150, 1)),
                       rng.normal(4, 0.5, size=(150, 1))])
        from repro.detectors.gmm import GaussianMixture
        single = GaussianMixture(1, random_state=0).fit(X)
        double = GaussianMixture(2, random_state=0).fit(X)
        assert double.score_samples(X).mean() > single.score_samples(X).mean()

    def test_em_converges(self, rng):
        from repro.detectors.gmm import GaussianMixture
        gm = GaussianMixture(2, max_iter=200, random_state=0)
        gm.fit(rng.normal(size=(100, 2)))
        assert gm.converged_

    def test_weights_sum_to_one(self, rng):
        from repro.detectors.gmm import GaussianMixture
        gm = GaussianMixture(3, random_state=0).fit(rng.normal(size=(90, 2)))
        assert gm.weights_.sum() == pytest.approx(1.0)


class TestLODA:
    def test_sparse_projections(self, rng):
        det = LODA(n_random_cuts=20, random_state=0).fit(
            rng.normal(size=(100, 16)))
        nonzero = (det._projections != 0).sum(axis=1)
        assert np.all(nonzero == 4)  # ceil(sqrt(16))

    def test_outlier_scores_high(self, rng):
        X = np.vstack([rng.normal(size=(200, 4)), [[8.0] * 4]])
        det = LODA(random_state=0).fit(X)
        assert det.decision_scores_[-1] > np.percentile(
            det.decision_scores_[:-1], 99)


class TestDeepSVDD:
    def test_center_not_near_zero(self, rng):
        det = DeepSVDD(epochs=2, random_state=0).fit(rng.normal(size=(80, 4)))
        assert np.all(np.abs(det._center) >= 0.1 - 1e-9)

    def test_training_shrinks_mean_distance(self, rng):
        X = rng.normal(size=(200, 4))
        short = DeepSVDD(epochs=1, random_state=0).fit(X)
        long = DeepSVDD(epochs=30, random_state=0).fit(X)
        assert (long.decision_scores_.mean()
                < short.decision_scores_.mean())

    def test_no_bias_in_network(self, rng):
        det = DeepSVDD(epochs=1, random_state=0).fit(rng.normal(size=(50, 3)))
        from repro.nn.layers import Dense
        for layer in det._network.layers:
            if isinstance(layer, Dense):
                assert layer.b is None

    def test_dependency_anomalies_detectable(self):
        ds = make_dependency_anomalies(n_inliers=400, n_anomalies=40,
                                       n_features=4, random_state=0)
        X = StandardScaler().fit_transform(ds.X)
        det = DeepSVDD(epochs=30, random_state=0).fit(X)
        assert auc_roc(ds.y, det.decision_scores_) > 0.55
