"""Contract tests run against every one of the 14 detectors.

These check the shared BaseDetector API: score shapes, [0, 1] scaling,
out-of-sample scoring, predict semantics, error handling — and a behavioural
floor: every detector must beat random ranking on an easy clustered-anomaly
dataset (AUC > 0.6), since remote dense anomaly clusters are only hard for
neighbour-based methods *with small k*, not for any of our configurations.
"""

import numpy as np
import pytest

from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_global_anomalies
from repro.detectors.registry import DETECTOR_NAMES, make_detector
from repro.metrics.ranking import auc_roc


@pytest.fixture(scope="module")
def easy_data():
    """Global (scattered, far) anomalies: every assumption family catches
    at least most of them."""
    ds = make_global_anomalies(n_inliers=180, n_anomalies=20, n_features=3,
                               random_state=5)
    X = StandardScaler().fit_transform(ds.X)
    return X, ds.y


@pytest.fixture(scope="module")
def fitted(easy_data):
    X, y = easy_data
    models = {}
    for name in DETECTOR_NAMES:
        models[name] = make_detector(name, random_state=0).fit(X)
    return models


@pytest.mark.parametrize("name", DETECTOR_NAMES)
class TestDetectorContract:
    def test_fit_returns_self(self, name, easy_data):
        X, _ = easy_data
        det = make_detector(name, random_state=0)
        assert det.fit(X) is det

    def test_decision_scores_shape(self, name, fitted, easy_data):
        X, _ = easy_data
        scores = fitted[name].decision_scores_
        assert scores.shape == (X.shape[0],)
        assert np.all(np.isfinite(scores))

    def test_fit_scores_unit_interval(self, name, fitted):
        scores = fitted[name].fit_scores()
        assert scores.min() >= 0.0 and scores.max() <= 1.0
        assert scores.max() == pytest.approx(1.0)
        assert scores.min() == pytest.approx(0.0)

    def test_score_samples_clipped(self, name, fitted, easy_data, rng):
        X, _ = easy_data
        far = rng.normal(size=(5, X.shape[1])) * 50
        scores = fitted[name].score_samples(far)
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)

    def test_out_of_sample_scoring(self, name, fitted, easy_data):
        X, _ = easy_data
        scores = fitted[name].decision_function(X[:10])
        if name in ("LOF", "KNN", "COF", "SOD"):
            # Neighbour-based detectors exclude each training point from its
            # own neighbourhood during fit, but a query point that happens
            # to coincide with a training point legitimately matches itself.
            # Exact equality therefore does not hold; the ranking must still
            # broadly agree.
            assert np.all(np.isfinite(scores))
            corr = np.corrcoef(scores,
                               fitted[name].decision_scores_[:10])[0, 1]
            assert corr > 0.5
        else:
            np.testing.assert_allclose(
                scores, fitted[name].decision_scores_[:10], rtol=1e-6,
                atol=1e-8)

    def test_beats_random_on_easy_data(self, name, fitted, easy_data):
        _, y = easy_data
        auc = auc_roc(y, fitted[name].decision_scores_)
        assert auc > 0.6, f"{name} scored AUC {auc:.3f} on easy data"

    def test_predict_binary(self, name, fitted, easy_data):
        X, _ = easy_data
        labels = fitted[name].predict(X)
        assert set(np.unique(labels)) <= {0, 1}

    def test_predict_flags_contamination_fraction(self, name, fitted,
                                                  easy_data):
        X, _ = easy_data
        labels = fitted[name].fit_predict(X) if False else (
            fitted[name].decision_scores_ > fitted[name].threshold_)
        flagged = labels.mean()
        assert 0.0 < flagged <= 0.2 + 0.05  # contamination default 0.1

    def test_unfitted_raises(self, name):
        det = make_detector(name, random_state=0)
        with pytest.raises(RuntimeError, match="not fitted"):
            det.decision_function(np.zeros((2, 3)))

    def test_feature_mismatch_raises(self, name, fitted):
        with pytest.raises(ValueError, match="features"):
            fitted[name].decision_function(np.zeros((2, 9)))

    def test_invalid_contamination(self, name):
        cls = type(make_detector(name))
        with pytest.raises(ValueError):
            cls(contamination=0.0)

    def test_deterministic_given_seed(self, name, easy_data):
        X, _ = easy_data
        a = make_detector(name, random_state=11).fit(X).decision_scores_
        b = make_detector(name, random_state=11).fit(X).decision_scores_
        np.testing.assert_allclose(a, b)


def test_registry_has_14_models():
    assert len(DETECTOR_NAMES) == 14


def test_registry_order_matches_paper():
    assert DETECTOR_NAMES == (
        "IForest", "HBOS", "LOF", "KNN", "PCA", "OCSVM", "CBLOF", "COF",
        "SOD", "ECOD", "GMM", "LODA", "COPOD", "DeepSVDD")


def test_unknown_detector():
    with pytest.raises(KeyError):
        make_detector("SuperAD")
