"""Tests for the shared 1-d histogram density estimator."""

import numpy as np
import pytest

from repro.detectors.histograms import Histogram1D


class TestHistogram1D:
    def test_peak_density_is_one(self, rng):
        hist = Histogram1D(n_bins=10).fit(rng.normal(size=1000))
        assert hist.density_.max() == pytest.approx(1.0)

    def test_dense_region_higher_than_sparse(self, rng):
        values = np.concatenate([rng.normal(0, 0.1, 900),
                                 rng.uniform(-5, 5, 100)])
        hist = Histogram1D(n_bins=20).fit(values)
        assert hist.density([0.0])[0] > hist.density([4.0])[0]

    def test_out_of_range_gets_floor(self, rng):
        hist = Histogram1D(outlier_density=1e-9).fit(rng.uniform(0, 1, 100))
        np.testing.assert_allclose(hist.density([-10.0, 10.0]), 1e-9)

    def test_right_edge_belongs_to_last_bin(self):
        hist = Histogram1D(n_bins=4).fit(np.linspace(0, 1, 50))
        assert hist.density([1.0])[0] > 1e-9

    def test_left_edge_belongs_to_first_bin(self):
        hist = Histogram1D(n_bins=4).fit(np.linspace(0, 1, 50))
        assert hist.density([0.0])[0] > 1e-9

    def test_constant_data(self):
        hist = Histogram1D().fit(np.full(20, 3.0))
        assert hist.density([3.0])[0] == pytest.approx(1.0)
        assert hist.density([10.0])[0] == pytest.approx(1e-9)

    def test_empty_interior_bin_floored(self):
        values = np.concatenate([np.zeros(10), np.ones(10) * 10])
        hist = Histogram1D(n_bins=10).fit(values)
        assert hist.density([5.0])[0] == pytest.approx(1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Histogram1D().density([1.0])

    def test_empty_data_raises(self):
        with pytest.raises(ValueError):
            Histogram1D().fit(np.array([]))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Histogram1D(n_bins=0)
        with pytest.raises(ValueError):
            Histogram1D(outlier_density=0.0)
