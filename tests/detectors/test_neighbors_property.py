"""Property tests: ``kneighbors`` against a naive full-matrix oracle.

The oracle ranks every reference row by exact squared distance with
index tie-breaks — the semantics :mod:`repro.kernels.distance`
implements with argpartition + deterministic boundary-tie fix-up +
exact recompute.  Hypothesis drives shapes, k, exclude_self, and the
chunk boundary cases ``n_query % chunk_size == 0, ±1``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.distance import kneighbors


def _oracle(query, reference, k, exclude_self):
    """Exact distances + (distance, index) ranking, O(n^2 d) per pair."""
    diff = query[:, None, :] - reference[None, :, :]
    sq = np.einsum("qrd,qrd->qr", diff, diff)
    if exclude_self:
        np.fill_diagonal(sq, np.inf)
    idx = np.argsort(sq, axis=1, kind="stable")[:, :k]
    return np.sqrt(np.take_along_axis(sq, idx, axis=1)), idx


@st.composite
def knn_case(draw):
    n_ref = draw(st.integers(min_value=2, max_value=40))
    n_query = draw(st.integers(min_value=1, max_value=40))
    d = draw(st.integers(min_value=1, max_value=6))
    exclude_self = draw(st.booleans())
    if exclude_self:
        n_query = n_ref  # positional convention: query set == reference set
    max_k = n_ref - 1 if exclude_self else n_ref
    k = draw(st.integers(min_value=1, max_value=max_k))
    chunk_size = draw(st.sampled_from(
        [1024, n_query, max(1, n_query - 1), n_query + 1, 7]))
    elements = st.floats(min_value=-1e6, max_value=1e6, width=64)
    query = draw(st.lists(
        st.lists(elements, min_size=d, max_size=d),
        min_size=n_query, max_size=n_query).map(np.asarray))
    if exclude_self:
        reference = query
    else:
        reference = draw(st.lists(
            st.lists(elements, min_size=d, max_size=d),
            min_size=n_ref, max_size=n_ref).map(np.asarray))
    return query, reference, k, exclude_self, chunk_size


class TestKneighborsProperty:
    @settings(max_examples=120, deadline=None)
    @given(case=knn_case())
    def test_against_oracle(self, case):
        query, reference, k, exclude_self, chunk_size = case
        dist, idx = kneighbors(query, reference, k,
                               exclude_self=exclude_self,
                               chunk_size=chunk_size)
        assert dist.shape == idx.shape == (query.shape[0], k)

        # Returned distances are the exact distances of the returned
        # neighbors (the exact-recompute guarantee).
        gathered = np.sqrt(np.einsum(
            "qkd,qkd->qk",
            query[:, None, :] - reference[idx],
            query[:, None, :] - reference[idx]))
        np.testing.assert_array_equal(dist, gathered)

        if exclude_self:
            assert np.all(idx != np.arange(query.shape[0])[:, None])

        # Selection can differ from the oracle only where the expansion
        # formula cannot separate candidates: the returned k-th distance
        # is within expansion precision of the true k-th distance.
        o_dist, o_idx = _oracle(query, reference, k, exclude_self)
        scale = max(1.0, float(np.abs(query).max()),
                    float(np.abs(reference).max()))
        tol = 1e-6 * scale
        np.testing.assert_allclose(dist, o_dist, atol=tol, rtol=1e-7)

    @settings(max_examples=60, deadline=None)
    @given(case=knn_case())
    def test_chunk_invariance(self, case):
        """Chunk size never changes the result, including the boundary
        cases n_query % chunk_size == 0 and ±1."""
        query, reference, k, exclude_self, chunk_size = case
        d_a, i_a = kneighbors(query, reference, k,
                              exclude_self=exclude_self,
                              chunk_size=chunk_size)
        d_b, i_b = kneighbors(query, reference, k,
                              exclude_self=exclude_self, chunk_size=1024)
        np.testing.assert_array_equal(d_a, d_b)
        np.testing.assert_array_equal(i_a, i_b)


class TestDistinctDistanceExactness:
    """With well-separated points the oracle must match index-for-index."""

    @pytest.mark.parametrize("chunk_size", [3, 9, 10, 11, 1024])
    @pytest.mark.parametrize("exclude_self", [True, False])
    def test_indices_match_oracle(self, rng, chunk_size, exclude_self):
        X = rng.normal(size=(30, 4))  # continuous draws: no ties
        dist, idx = kneighbors(X, X, 6, exclude_self=exclude_self,
                               chunk_size=chunk_size)
        o_dist, o_idx = _oracle(X, X, 6, exclude_self)
        np.testing.assert_array_equal(idx, o_idx)
        np.testing.assert_allclose(dist, o_dist, rtol=1e-12, atol=1e-12)
