"""Tests for SGD and Adam on analytically tractable problems."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam


def quadratic_problem(start):
    """Minimise 0.5 * ||p||^2; gradient is p itself."""
    p = np.array(start, dtype=np.float64)
    g = np.zeros_like(p)
    return p, g


class TestSGD:
    def test_single_step(self):
        p, g = quadratic_problem([1.0])
        opt = SGD([p], [g], lr=0.1)
        g[...] = p
        opt.step()
        assert p[0] == pytest.approx(0.9)

    def test_converges_on_quadratic(self):
        p, g = quadratic_problem([5.0, -3.0])
        opt = SGD([p], [g], lr=0.1)
        for _ in range(200):
            g[...] = p
            opt.step()
        assert np.abs(p).max() < 1e-6

    def test_momentum_accelerates(self):
        p1, g1 = quadratic_problem([5.0])
        p2, g2 = quadratic_problem([5.0])
        plain = SGD([p1], [g1], lr=0.01)
        momentum = SGD([p2], [g2], lr=0.01, momentum=0.9)
        for _ in range(50):
            g1[...] = p1
            plain.step()
            g2[...] = p2
            momentum.step()
        assert abs(p2[0]) < abs(p1[0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], [np.zeros(1)], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], [np.zeros(1)], momentum=1.0)

    def test_mismatched_lists(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], [])


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, Adam's first step has magnitude ~lr."""
        p, g = quadratic_problem([1.0])
        opt = Adam([p], [g], lr=0.1)
        g[...] = p
        opt.step()
        assert p[0] == pytest.approx(0.9, abs=1e-6)

    def test_converges_on_quadratic(self):
        p, g = quadratic_problem([5.0, -3.0, 2.0])
        opt = Adam([p], [g], lr=0.05)
        for _ in range(2000):
            g[...] = p
            opt.step()
        assert np.abs(p).max() < 1e-3

    def test_scale_invariance(self):
        """Adam steps are invariant to gradient magnitude rescaling."""
        p1, g1 = quadratic_problem([1.0])
        p2, g2 = quadratic_problem([1.0])
        a1 = Adam([p1], [g1], lr=0.01)
        a2 = Adam([p2], [g2], lr=0.01)
        for _ in range(10):
            g1[...] = p1
            a1.step()
            g2[...] = 1000.0 * p2
            a2.step()
        assert p1[0] == pytest.approx(p2[0], abs=1e-6)

    def test_state_persists(self):
        p, g = quadratic_problem([1.0])
        opt = Adam([p], [g], lr=0.1)
        g[...] = 1.0
        opt.step()
        first = p.copy()
        g[...] = 1.0
        opt.step()
        assert p[0] != first[0]
        assert opt._t == 2

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], [np.zeros(1)], beta1=1.0)

    def test_updates_in_place(self):
        p, g = quadratic_problem([1.0])
        original = p
        opt = Adam([p], [g], lr=0.1)
        g[...] = 1.0
        opt.step()
        assert original is p  # same array object mutated
