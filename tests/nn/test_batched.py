"""Unit tests for the stacked (fold-parallel) network primitives."""

import numpy as np
import pytest

from repro.nn.batched import (
    BatchedAdam,
    BatchedBCELoss,
    BatchedLinear,
    BatchedMSELoss,
    link_networks,
    scatter_networks,
    stack_networks,
)
from repro.nn.losses import BCELoss, MSELoss
from repro.nn.network import build_mlp
from repro.nn.optimizers import Adam


def _make_nets(K=3, d_in=4, hidden=8, seed=0):
    rng = np.random.default_rng(seed)
    return [build_mlp(d_in, hidden=hidden, n_layers=3,
                      random_state=np.random.default_rng(rng.integers(2**31)))
            for _ in range(K)]


class TestStacking:
    def test_stacked_forward_matches_per_net(self):
        nets = _make_nets()
        batched = stack_networks(nets)
        x = np.random.default_rng(1).normal(size=(3, 10, 4))
        out = batched.forward(x)
        for k, net in enumerate(nets):
            assert np.array_equal(out[k], net.forward(x[k]))

    def test_broadcast_leading_axis(self):
        nets = _make_nets()
        batched = stack_networks(nets)
        x = np.random.default_rng(1).normal(size=(10, 4))
        out = batched.forward(x[None, :, :])
        assert out.shape == (3, 10, 1)
        for k, net in enumerate(nets):
            assert np.array_equal(out[k], net.forward(x))

    def test_params_are_views_of_flat_buffer(self):
        batched = stack_networks(_make_nets())
        total = sum(p.size for p in batched.params)
        assert batched.flat_params.size == total
        for p in batched.params:
            assert p.base is not None
        batched.flat_params[:] = 0.0
        assert all(np.all(p == 0.0) for p in batched.params)

    def test_stack_requires_networks(self):
        with pytest.raises(ValueError):
            stack_networks([])

    def test_stack_rejects_architecture_mismatch(self):
        a = build_mlp(4, hidden=8, n_layers=3, random_state=0)
        b = build_mlp(4, hidden=8, n_layers=2, random_state=0)
        with pytest.raises(ValueError):
            stack_networks([a, b])

    def test_link_networks_shares_storage(self):
        nets = _make_nets()
        batched = stack_networks(nets)
        link_networks(batched, nets)
        batched.layers[0].W[1, 0, 0] = 123.0
        assert nets[1].layers[0].W[0, 0] == 123.0
        nets[2].layers[0].b[0] = -7.0
        assert batched.layers[0].b[2, 0, 0] == -7.0

    def test_scatter_copies_back(self):
        nets = _make_nets()
        batched = stack_networks(nets)
        batched.flat_params[:] = 0.5
        scatter_networks(batched, nets)
        for net in nets:
            assert np.all(net.layers[0].W == 0.5)


class TestBatchedLinear:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchedLinear(np.zeros((4, 5)), None)
        with pytest.raises(ValueError):
            BatchedLinear(np.zeros((2, 4, 5)), np.zeros((2, 5)))
        layer = BatchedLinear(np.zeros((2, 4, 5)), np.zeros((2, 1, 5)))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 7, 4)))  # wrong leading axis
        with pytest.raises(ValueError):
            layer.forward(np.zeros((7, 4)))  # not stacked

    def test_backward_before_forward_raises(self):
        layer = BatchedLinear(np.zeros((2, 4, 5)), np.zeros((2, 1, 5)))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 7, 5)))

    def test_gradients_match_dense(self):
        from repro.nn.layers import Dense

        rng = np.random.default_rng(3)
        dense = [Dense(4, 5, random_state=rng) for _ in range(2)]
        W = np.stack([d.W for d in dense])
        b = np.stack([d.b for d in dense])[:, None, :]
        layer = BatchedLinear(W, b)
        x = rng.normal(size=(2, 6, 4))
        g = rng.normal(size=(2, 6, 5))
        layer.forward(x)
        grad_in = layer.backward(g)
        for k, d in enumerate(dense):
            d.forward(x[k])
            expected = d.backward(g[k])
            assert np.array_equal(grad_in[k], expected)
            assert np.array_equal(layer.dW[k], d.dW)
            assert np.array_equal(layer.db[k, 0], d.db)


class TestBatchedAdam:
    def _pair(self, K=3, shape=(4, 5), seed=0):
        rng = np.random.default_rng(seed)
        stacked = rng.normal(size=(K,) + shape)
        singles = [stacked[k].copy() for k in range(K)]
        return stacked, singles

    def test_matches_per_model_adam(self):
        stacked, singles = self._pair()
        grads = np.zeros_like(stacked)
        opt = BatchedAdam([stacked], [grads], n_models=3, lr=0.01)
        refs = [Adam([s], [g], lr=0.01)
                for s, g in zip(singles, [np.zeros_like(s) for s in singles])]
        rng = np.random.default_rng(1)
        for _ in range(5):
            g = rng.normal(size=stacked.shape)
            grads[...] = g
            opt.step()
            for k, ref in enumerate(refs):
                ref.grads[0][...] = g[k]
                ref.step()
        for k, ref in enumerate(refs):
            assert np.array_equal(stacked[k], ref.params[0])

    def test_active_mask_freezes_inactive_models(self):
        stacked, _ = self._pair()
        before = stacked[2].copy()
        grads = np.ones_like(stacked)
        opt = BatchedAdam([stacked], [grads], n_models=3, lr=0.01)
        opt.step(active=[True, True, False])
        assert np.array_equal(stacked[2], before)
        assert not np.array_equal(stacked[0], before)
        assert opt._t == [1, 1, 0]

    def test_diverged_timesteps_match_reference(self):
        # Model 2 skips a step, then all models step together: the group
        # update must apply each model's own bias correction.
        stacked, singles = self._pair()
        grads = np.zeros_like(stacked)
        opt = BatchedAdam([stacked], [grads], n_models=3, lr=0.01)
        refs = [Adam([s], [np.zeros_like(s)], lr=0.01) for s in singles]
        rng = np.random.default_rng(2)
        plans = [[True, True, False], [True, True, True]]
        for active in plans:
            g = rng.normal(size=stacked.shape)
            grads[...] = g
            opt.step(active=active)
            for k, ref in enumerate(refs):
                if active[k]:
                    ref.grads[0][...] = g[k]
                    ref.step()
        for k, ref in enumerate(refs):
            assert np.array_equal(stacked[k], ref.params[0])

    def test_no_active_models_is_noop(self):
        stacked, _ = self._pair()
        before = stacked.copy()
        opt = BatchedAdam([stacked], [np.ones_like(stacked)], n_models=3)
        opt.step(active=[False, False, False])
        assert np.array_equal(stacked, before)

    def test_validation(self):
        p = np.zeros((3, 2))
        with pytest.raises(ValueError):
            BatchedAdam([p], [np.zeros_like(p)], n_models=3, lr=0.0)
        with pytest.raises(ValueError):
            BatchedAdam([p], [np.zeros_like(p)], n_models=4)
        with pytest.raises(ValueError):
            BatchedAdam([p], [], n_models=3)
        with pytest.raises(ValueError):
            BatchedAdam([p], [np.zeros_like(p)], n_models=3,
                        flat_params=np.zeros(5), flat_grads=np.zeros(5))


class TestBatchedLosses:
    @pytest.mark.parametrize("batched_cls,single_cls",
                             [(BatchedMSELoss, MSELoss),
                              (BatchedBCELoss, BCELoss)])
    def test_matches_per_model_loss(self, batched_cls, single_cls):
        rng = np.random.default_rng(4)
        pred = rng.uniform(0.01, 0.99, size=(3, 8, 1))
        target = rng.uniform(size=(3, 8, 1))
        batched = batched_cls()
        values = batched.forward(pred, target)
        grad = batched.backward()
        for k in range(3):
            single = single_cls()
            assert values[k] == single.forward(pred[k], target[k])
            assert np.array_equal(grad[k], single.backward())

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            BatchedMSELoss().backward()

    def test_bce_eps_validation(self):
        with pytest.raises(ValueError):
            BatchedBCELoss(eps=0.7)
