"""Tests for the mini-batch training loop."""

import numpy as np
import pytest

from repro.nn.losses import BCELoss
from repro.nn.network import build_mlp
from repro.nn.optimizers import Adam
from repro.nn.training import TrainingHistory, iterate_minibatches, train


class TestIterateMinibatches:
    def test_covers_all_indices(self, rng):
        batches = list(iterate_minibatches(10, 3, rng))
        combined = np.sort(np.concatenate(batches))
        np.testing.assert_array_equal(combined, np.arange(10))

    def test_batch_sizes(self, rng):
        batches = list(iterate_minibatches(10, 4, rng))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_shuffle_off_is_ordered(self, rng):
        batches = list(iterate_minibatches(6, 2, rng, shuffle=False))
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(6))

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            list(iterate_minibatches(10, 0, rng))


class TestTrain:
    def test_loss_decreases(self, rng):
        net = build_mlp(3, hidden=16, random_state=0)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(float)
        history = train(net, X, y, epochs=30, batch_size=32, lr=1e-2,
                        random_state=0)
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_learns_separable_function(self, rng):
        net = build_mlp(2, hidden=16, random_state=0)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(float)
        train(net, X, y, epochs=60, batch_size=64, lr=1e-2,
              loss=BCELoss(), random_state=0)
        pred = net.forward(X).ravel()
        accuracy = np.mean((pred > 0.5) == y)
        assert accuracy > 0.9

    def test_zero_epochs_noop(self, rng):
        net = build_mlp(2, hidden=4, random_state=0)
        X = rng.normal(size=(10, 2))
        before = net.forward(X).copy()
        history = train(net, X, np.zeros(10), epochs=0, random_state=0)
        np.testing.assert_array_equal(net.forward(X), before)
        assert history.epoch_losses == []

    def test_external_optimizer_state_persists(self, rng):
        net = build_mlp(2, hidden=4, random_state=0)
        opt = Adam(net.params, net.grads, lr=1e-3)
        X = rng.normal(size=(20, 2))
        y = rng.uniform(size=20)
        train(net, X, y, epochs=2, optimizer=opt, random_state=0)
        t_after_first = opt._t
        train(net, X, y, epochs=2, optimizer=opt, random_state=0)
        assert opt._t > t_after_first

    def test_negative_epochs_raises(self, rng):
        net = build_mlp(2, hidden=4, random_state=0)
        with pytest.raises(ValueError):
            train(net, rng.normal(size=(5, 2)), np.zeros(5), epochs=-1)

    def test_history_final_loss(self):
        history = TrainingHistory(epoch_losses=[0.5, 0.2])
        assert history.final_loss == 0.2

    def test_history_empty_raises(self):
        with pytest.raises(RuntimeError):
            TrainingHistory().final_loss
