"""Tests for activation layers: values and gradients."""

import numpy as np
import pytest

from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh

ALL_ACTIVATIONS = [Identity, ReLU, LeakyReLU, Sigmoid, Tanh]


def numeric_grad(layer, x, grad_out, eps=1e-6):
    """Central-difference gradient of sum(forward(x) * grad_out) w.r.t. x."""
    num = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        up = np.sum(layer.forward(x) * grad_out)
        x[i] = old - eps
        down = np.sum(layer.forward(x) * grad_out)
        x[i] = old
        num[i] = (up - down) / (2 * eps)
    return num


class TestForwardValues:
    def test_identity(self):
        x = np.array([[-1.0, 2.0]])
        np.testing.assert_array_equal(Identity().forward(x), x)

    def test_relu(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_array_equal(
            ReLU().forward(x), [[0.0, 0.0, 2.0]])

    def test_leaky_relu(self):
        x = np.array([[-2.0, 3.0]])
        out = LeakyReLU(alpha=0.1).forward(x)
        np.testing.assert_allclose(out, [[-0.2, 3.0]])

    def test_sigmoid_midpoint(self):
        assert Sigmoid().forward(np.zeros((1, 1)))[0, 0] == 0.5

    def test_sigmoid_extreme_stability(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(1.0, abs=1e-12)

    def test_tanh(self):
        out = Tanh().forward(np.array([[0.0, 100.0]]))
        assert out[0, 0] == 0.0
        assert out[0, 1] == pytest.approx(1.0)

    def test_leaky_relu_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.1)


class TestGradients:
    @pytest.mark.parametrize("cls", ALL_ACTIVATIONS)
    def test_matches_numeric(self, cls, rng):
        layer = cls()
        # Avoid the ReLU kink at exactly zero.
        x = rng.normal(size=(5, 3))
        x[np.abs(x) < 1e-3] = 0.1
        grad_out = rng.normal(size=(5, 3))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numeric_grad(cls(), x.copy(), grad_out)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    @pytest.mark.parametrize("cls", ALL_ACTIVATIONS[1:])
    def test_backward_before_forward_raises(self, cls):
        layer = cls()
        if isinstance(layer, Identity):
            return
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2)))

    def test_no_parameters(self):
        for cls in ALL_ACTIVATIONS:
            assert cls().params == []
            assert cls().grads == []
