"""Tests for the Dense layer: shapes, init, and exact gradients."""

import numpy as np
import pytest

from repro.nn.layers import Dense


class TestDenseForward:
    def test_output_shape(self, rng):
        layer = Dense(4, 3, random_state=0)
        out = layer.forward(rng.normal(size=(7, 4)))
        assert out.shape == (7, 3)

    def test_linear_in_input(self, rng):
        layer = Dense(3, 2, random_state=0)
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(4, 3))
        lhs = layer.forward(a + b)
        rhs = layer.forward(a) + layer.forward(b) - layer.b
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    def test_no_bias(self, rng):
        layer = Dense(3, 2, bias=False, random_state=0)
        assert layer.b is None
        out = layer.forward(np.zeros((2, 3)))
        np.testing.assert_array_equal(out, np.zeros((2, 2)))

    def test_wrong_width_raises(self, rng):
        layer = Dense(3, 2, random_state=0)
        with pytest.raises(ValueError, match="expected input"):
            layer.forward(rng.normal(size=(2, 4)))

    def test_init_bound(self):
        layer = Dense(100, 50, random_state=0)
        bound = 1.0 / np.sqrt(100)
        assert np.abs(layer.W).max() <= bound
        assert np.abs(layer.b).max() <= bound

    def test_deterministic_init(self):
        a = Dense(5, 5, random_state=3)
        b = Dense(5, 5, random_state=3)
        np.testing.assert_array_equal(a.W, b.W)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 2)


class TestDenseBackward:
    def test_gradient_check(self, rng):
        layer = Dense(4, 3, random_state=1)
        x = rng.normal(size=(6, 4))
        grad_out = rng.normal(size=(6, 3))
        layer.forward(x)
        grad_in = layer.backward(grad_out)

        eps = 1e-6
        # Weight gradient.
        for i in range(4):
            for j in range(3):
                old = layer.W[i, j]
                layer.W[i, j] = old + eps
                up = np.sum(layer.forward(x) * grad_out)
                layer.W[i, j] = old - eps
                down = np.sum(layer.forward(x) * grad_out)
                layer.W[i, j] = old
                assert layer.dW[i, j] == pytest.approx(
                    (up - down) / (2 * eps), abs=1e-5)
        # Input gradient.
        num = np.zeros_like(x)
        for i in range(6):
            for j in range(4):
                old = x[i, j]
                x[i, j] = old + eps
                up = np.sum(layer.forward(x) * grad_out)
                x[i, j] = old - eps
                down = np.sum(layer.forward(x) * grad_out)
                x[i, j] = old
                num[i, j] = (up - down) / (2 * eps)
        layer.forward(x)
        np.testing.assert_allclose(grad_in, num, atol=1e-5)

    def test_bias_gradient_is_column_sum(self, rng):
        layer = Dense(3, 2, random_state=0)
        x = rng.normal(size=(5, 3))
        grad_out = rng.normal(size=(5, 2))
        layer.forward(x)
        layer.backward(grad_out)
        np.testing.assert_allclose(layer.db, grad_out.sum(axis=0))

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, random_state=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_params_and_grads_aligned(self):
        layer = Dense(3, 2, random_state=0)
        assert len(layer.params) == len(layer.grads) == 2
        assert layer.params[0].shape == layer.grads[0].shape
