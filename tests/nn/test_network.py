"""Tests for Sequential and build_mlp: structure, gradients, checkpoints."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import MSELoss
from repro.nn.network import Sequential, build_mlp


class TestBuildMlp:
    def test_default_architecture(self):
        net = build_mlp(10, hidden=128, n_layers=3, random_state=0)
        dense = [l for l in net.layers if isinstance(l, Dense)]
        assert len(dense) == 3
        assert dense[0].in_features == 10
        assert dense[0].out_features == 128
        assert dense[1].out_features == 128
        assert dense[2].out_features == 1

    def test_sigmoid_output_range(self, rng):
        net = build_mlp(4, hidden=8, random_state=0)
        out = net.forward(rng.normal(size=(20, 4)) * 10)
        assert np.all(out >= 0) and np.all(out <= 1)

    def test_linear_output_unbounded(self, rng):
        net = build_mlp(4, hidden=8, output="linear", out_features=3,
                        random_state=0)
        out = net.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_single_layer(self):
        net = build_mlp(4, n_layers=1, random_state=0)
        dense = [l for l in net.layers if isinstance(l, Dense)]
        assert len(dense) == 1

    def test_deterministic(self, rng):
        x = rng.normal(size=(3, 4))
        a = build_mlp(4, hidden=8, random_state=5).forward(x)
        b = build_mlp(4, hidden=8, random_state=5).forward(x)
        np.testing.assert_array_equal(a, b)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_mlp(4, n_layers=0)
        with pytest.raises(ValueError):
            build_mlp(4, output="softmax")


class TestSequential:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_full_gradient_check(self, rng):
        net = build_mlp(3, hidden=6, random_state=0)
        X = rng.normal(size=(8, 3))
        y = rng.uniform(size=(8, 1))
        loss = MSELoss()
        loss.forward(net.forward(X), y)
        net.backward(loss.backward())
        analytic = [g.copy() for g in net.grads]

        eps = 1e-6
        for pi, p in enumerate(net.params):
            flat = p.reshape(-1)
            num = np.zeros_like(flat)
            for i in range(flat.size):
                old = flat[i]
                flat[i] = old + eps
                up = loss.forward(net.forward(X), y)
                flat[i] = old - eps
                down = loss.forward(net.forward(X), y)
                flat[i] = old
                num[i] = (up - down) / (2 * eps)
            np.testing.assert_allclose(
                analytic[pi].reshape(-1), num, atol=1e-5)

    def test_get_set_weights_roundtrip(self, rng):
        net = build_mlp(4, hidden=8, random_state=0)
        x = rng.normal(size=(3, 4))
        before = net.forward(x)
        weights = net.get_weights()
        # Mutate, then restore.
        for p in net.params:
            p += 1.0
        assert not np.allclose(net.forward(x), before)
        net.set_weights(weights)
        np.testing.assert_allclose(net.forward(x), before)

    def test_set_weights_shape_mismatch(self):
        net = build_mlp(4, hidden=8, random_state=0)
        weights = net.get_weights()
        weights[0] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.set_weights(weights)

    def test_set_weights_count_mismatch(self):
        net = build_mlp(4, hidden=8, random_state=0)
        with pytest.raises(ValueError):
            net.set_weights(net.get_weights()[:-1])

    def test_callable(self, rng):
        net = build_mlp(2, hidden=4, random_state=0)
        x = rng.normal(size=(2, 2))
        np.testing.assert_array_equal(net(x), net.forward(x))
