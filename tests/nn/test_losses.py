"""Tests for MSE and BCE losses: values and gradients."""

import numpy as np
import pytest

from repro.nn.losses import BCELoss, MSELoss


class TestMSE:
    def test_zero_for_exact(self):
        loss = MSELoss()
        pred = np.array([[0.5], [0.7]])
        assert loss.forward(pred, pred.copy()) == 0.0

    def test_known_value(self):
        loss = MSELoss()
        value = loss.forward(np.array([[1.0], [0.0]]),
                             np.array([[0.0], [0.0]]))
        assert value == pytest.approx(0.5)

    def test_gradient_check(self, rng):
        loss = MSELoss()
        pred = rng.uniform(size=(5, 1))
        target = rng.uniform(size=(5, 1))
        loss.forward(pred, target)
        grad = loss.backward()
        eps = 1e-7
        for i in range(5):
            bumped = pred.copy()
            bumped[i, 0] += eps
            up = loss.forward(bumped, target)
            bumped[i, 0] -= 2 * eps
            down = loss.forward(bumped, target)
            assert grad[i, 0] == pytest.approx((up - down) / (2 * eps),
                                               rel=1e-4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros((2, 1)), np.zeros((3, 1)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()


class TestBCE:
    def test_confident_correct_small_loss(self):
        loss = BCELoss()
        value = loss.forward(np.array([[0.999], [0.001]]),
                             np.array([[1.0], [0.0]]))
        assert value < 0.01

    def test_confident_wrong_large_loss(self):
        loss = BCELoss()
        value = loss.forward(np.array([[0.001]]), np.array([[1.0]]))
        assert value > 5.0

    def test_extreme_predictions_finite(self):
        loss = BCELoss()
        value = loss.forward(np.array([[0.0], [1.0]]),
                             np.array([[1.0], [0.0]]))
        assert np.isfinite(value)

    def test_gradient_check(self, rng):
        loss = BCELoss()
        pred = rng.uniform(0.05, 0.95, size=(6, 1))
        target = rng.uniform(size=(6, 1))
        loss.forward(pred, target)
        grad = loss.backward()
        eps = 1e-7
        for i in range(6):
            bumped = pred.copy()
            bumped[i, 0] += eps
            up = loss.forward(bumped, target)
            bumped[i, 0] -= 2 * eps
            down = loss.forward(bumped, target)
            assert grad[i, 0] == pytest.approx((up - down) / (2 * eps),
                                               rel=1e-3)

    def test_soft_targets_supported(self):
        loss = BCELoss()
        value = loss.forward(np.array([[0.3]]), np.array([[0.3]]))
        # Cross-entropy of a distribution with itself = its entropy > 0.
        assert value > 0.0

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            BCELoss(eps=0.7)
