"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import check_random_state, spawn_rng, stable_hash


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = check_random_state(42).integers(0, 1000, size=5)
        b = check_random_state(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).integers(0, 2**31, size=8)
        b = check_random_state(2).integers(0, 2**31, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = check_random_state(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="random_state"):
            check_random_state("not-a-seed")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            check_random_state(3.14)


class TestSpawnRng:
    def test_count(self):
        children = spawn_rng(np.random.default_rng(0), 5)
        assert len(children) == 5

    def test_children_independent_streams(self):
        children = spawn_rng(np.random.default_rng(0), 2)
        a = children[0].uniform(size=10)
        b = children[1].uniform(size=10)
        assert not np.allclose(a, b)

    def test_reproducible_from_parent_seed(self):
        a = spawn_rng(np.random.default_rng(9), 3)
        b = spawn_rng(np.random.default_rng(9), 3)
        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(
                ga.integers(0, 100, 5), gb.integers(0, 100, 5))

    def test_zero_children(self):
        assert spawn_rng(np.random.default_rng(0), 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(np.random.default_rng(0), -1)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abalone") == stable_hash("abalone")

    def test_distinct_inputs(self):
        assert stable_hash("abalone") != stable_hash("cardio")

    def test_respects_modulus(self):
        for text in ("a", "b", "longer-name"):
            assert 0 <= stable_hash(text, modulus=97) < 97

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            stable_hash("x", modulus=0)

    def test_unicode(self):
        assert isinstance(stable_hash("数据集"), int)
