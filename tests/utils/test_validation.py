"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_fitted,
    check_scores,
)


class TestCheckArray:
    def test_list_converted(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_1d_promoted_to_column(self):
        out = check_array([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array(np.zeros((2, 2, 2)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            check_array([[np.inf, 1.0]])

    def test_min_samples(self):
        with pytest.raises(ValueError, match="at least 5"):
            check_array(np.zeros((3, 2)), min_samples=5)

    def test_name_in_error(self):
        with pytest.raises(ValueError, match="my_matrix"):
            check_array(np.zeros((2, 2, 2)), name="my_matrix")

    def test_not_2d_when_disabled(self):
        out = check_array([1.0, 2.0], ensure_2d=False)
        assert out.shape == (2,)


class TestCheckConsistentLength:
    def test_equal_ok(self):
        check_consistent_length([1, 2], [3, 4])

    def test_unequal_raises(self):
        with pytest.raises(ValueError, match="Inconsistent"):
            check_consistent_length([1, 2], [3])

    def test_none_ignored(self):
        check_consistent_length([1, 2], None, [3, 4])


class TestCheckFitted:
    def test_missing_attribute_raises(self):
        class Foo:
            bar = None

        with pytest.raises(RuntimeError, match="not fitted"):
            check_fitted(Foo(), "bar")

    def test_present_attribute_ok(self):
        class Foo:
            bar = 1.0

        check_fitted(Foo(), "bar")


class TestCheckScores:
    def test_flattens(self):
        out = check_scores([[1.0], [2.0]])
        assert out.shape == (2,)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            check_scores([])

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            check_scores([1.0, np.nan])
