"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestListCommands:
    def test_list_models(self):
        code, text = run_cli("list-models")
        assert code == 0
        assert "IForest" in text
        assert "DeepSVDD" in text
        assert "ABOD" in text  # extra baselines listed too

    def test_list_datasets(self):
        code, text = run_cli("list-datasets")
        assert code == 0
        assert "84 datasets" in text
        assert "abalone" in text

    def test_list_datasets_category(self):
        code, text = run_cli("list-datasets", "--category", "Web")
        assert code == 0
        assert "http" in text and "smtp" in text
        assert "abalone" not in text


class TestBoost:
    def test_boost_runs(self):
        code, text = run_cli(
            "boost", "HBOS", "glass", "--iterations", "2",
            "--max-samples", "150", "--max-features", "6")
        assert code == 0
        assert "AUCROC" in text
        assert "UADB" in text

    def test_unknown_detector_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("boost", "NotAModel", "glass")


class TestSweep:
    def test_sweep_runs(self):
        code, text = run_cli(
            "sweep", "--models", "HBOS", "--datasets", "glass",
            "--iterations", "2", "--max-samples", "150",
            "--max-features", "6")
        assert code == 0
        assert "[Table IV]" in text

    def test_sweep_reports_cells_and_progress(self):
        code, text = run_cli(
            "sweep", "--models", "HBOS", "--datasets", "glass",
            "--iterations", "2", "--max-samples", "150",
            "--max-features", "6", "--seeds", "0", "1")
        assert code == 0
        assert "= 2 cells" in text
        assert "[1/2]" in text and "[2/2]" in text

    def test_sweep_parallel_with_cache(self, tmp_path):
        argv = ["sweep", "--models", "HBOS", "--datasets", "glass",
                "--iterations", "2", "--max-samples", "150",
                "--max-features", "6", "--jobs", "2", "--seeds", "0", "1",
                "--cache-dir", str(tmp_path)]
        code, text = run_cli(*argv)
        assert code == 0
        assert len(list(tmp_path.glob("*.json"))) == 2
        code, text = run_cli(*argv)
        assert code == 0
        assert text.count("[cached]") == 2


class TestVariance:
    def test_variance_runs(self):
        code, text = run_cli("variance", "--datasets", "glass", "wine",
                             "--max-samples", "150")
        assert code == 0
        assert "[Fig 2]" in text


class TestExport:
    def test_export_npz(self, tmp_path):
        target = tmp_path / "glass"
        code, text = run_cli("export", "glass", str(target),
                             "--max-samples", "120", "--max-features", "6")
        assert code == 0
        assert (tmp_path / "glass.npz").exists()

    def test_export_csv(self, tmp_path):
        target = tmp_path / "glass.csv"
        code, text = run_cli("export", "glass", str(target),
                             "--format", "csv", "--max-samples", "120",
                             "--max-features", "6")
        assert code == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert header.endswith("label")
