"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestThreadsFlag:
    def test_threads_flag_scopes_a_run_context(self):
        from repro.kernels import get_num_threads

        before = get_num_threads()
        code, text = run_cli("--threads", "3", "runtime-info", "--json")
        assert code == 0
        info = json.loads(text)
        assert info["resolved"]["num_threads"] == 3
        assert info["sources"]["num_threads"] == "context"
        # The context is scoped to the command: nothing leaks into the
        # caller's process-global configuration.
        assert get_num_threads() == before

    def test_threads_rejects_nonpositive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--threads", "0", "list-models"])

    def test_threads_parses_in_either_position(self):
        args = build_parser().parse_args(["--threads", "3", "list-models"])
        assert args.threads == 3
        args = build_parser().parse_args(
            ["sweep", "--models", "HBOS", "--datasets", "glass",
             "--threads", "2"])
        assert args.threads == 2
        args = build_parser().parse_args(["list-models"])
        assert args.threads is None


class TestListCommands:
    def test_list_models(self):
        code, text = run_cli("list-models")
        assert code == 0
        assert "IForest" in text
        assert "DeepSVDD" in text
        assert "ABOD" in text  # extra baselines listed too

    def test_list_datasets(self):
        code, text = run_cli("list-datasets")
        assert code == 0
        assert "84 datasets" in text
        assert "abalone" in text

    def test_list_datasets_category(self):
        code, text = run_cli("list-datasets", "--category", "Web")
        assert code == 0
        assert "http" in text and "smtp" in text
        assert "abalone" not in text


class TestBoost:
    def test_boost_runs(self):
        code, text = run_cli(
            "boost", "HBOS", "glass", "--iterations", "2",
            "--max-samples", "150", "--max-features", "6")
        assert code == 0
        assert "AUCROC" in text
        assert "UADB" in text

    def test_unknown_detector_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("boost", "NotAModel", "glass")


class TestSweep:
    def test_sweep_runs(self):
        code, text = run_cli(
            "sweep", "--models", "HBOS", "--datasets", "glass",
            "--iterations", "2", "--max-samples", "150",
            "--max-features", "6")
        assert code == 0
        assert "[Table IV]" in text

    def test_sweep_reports_cells_and_progress(self):
        code, text = run_cli(
            "sweep", "--models", "HBOS", "--datasets", "glass",
            "--iterations", "2", "--max-samples", "150",
            "--max-features", "6", "--seeds", "0", "1")
        assert code == 0
        assert "= 2 cells" in text
        assert "[1/2]" in text and "[2/2]" in text

    def test_sweep_parallel_with_cache(self, tmp_path):
        argv = ["sweep", "--models", "HBOS", "--datasets", "glass",
                "--iterations", "2", "--max-samples", "150",
                "--max-features", "6", "--jobs", "2", "--seeds", "0", "1",
                "--cache-dir", str(tmp_path)]
        code, text = run_cli(*argv)
        assert code == 0
        assert len(list(tmp_path.glob("*.json"))) == 2
        code, text = run_cli(*argv)
        assert code == 0
        assert text.count("[cached]") == 2


class TestVariance:
    def test_variance_runs(self):
        code, text = run_cli("variance", "--datasets", "glass", "wine",
                             "--max-samples", "150")
        assert code == 0
        assert "[Fig 2]" in text


class TestExport:
    def test_export_npz(self, tmp_path):
        target = tmp_path / "glass"
        code, text = run_cli("export", "glass", str(target),
                             "--max-samples", "120", "--max-features", "6")
        assert code == 0
        assert (tmp_path / "glass.npz").exists()

    def test_export_csv(self, tmp_path):
        target = tmp_path / "glass.csv"
        code, text = run_cli("export", "glass", str(target),
                             "--format", "csv", "--max-samples", "120",
                             "--max-features", "6")
        assert code == 0
        assert target.exists()
        header = target.read_text().splitlines()[0]
        assert header.endswith("label")


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        from repro import __version__
        assert f"repro {__version__}" in capsys.readouterr().out


class TestSaveAndLoadScore:
    def test_save_then_load_score(self, tmp_path):
        target = tmp_path / "hbos-glass"
        code, text = run_cli("save", "HBOS", "glass", str(target),
                             "--max-samples", "150", "--max-features", "6")
        assert code == 0
        assert (target / "manifest.json").exists()
        assert (target / "payload.npz").exists()

        code, text = run_cli("load-score", str(target), "glass",
                             "--max-samples", "150", "--max-features", "6")
        assert code == 0
        assert "data fingerprint: match" in text
        assert "HBOS" in text and "AUCROC" in text

    def test_manifest_records_version(self, tmp_path):
        from repro import __version__
        from repro.serving import read_manifest

        target = tmp_path / "m"
        code, _ = run_cli("save", "HBOS", "glass", str(target),
                          "--max-samples", "120", "--max-features", "6")
        assert code == 0
        assert read_manifest(target)["repro_version"] == __version__

    def test_load_score_fingerprint_mismatch_warns(self, tmp_path):
        target = tmp_path / "m"
        run_cli("save", "HBOS", "glass", str(target),
                "--max-samples", "150", "--max-features", "6")
        # Score a different slice of the dataset than the model saw.
        code, text = run_cli("load-score", str(target), "glass",
                             "--max-samples", "140", "--max-features", "6")
        assert code == 0
        assert "MISMATCH" in text

    def test_load_score_missing_artifact(self, tmp_path):
        code, text = run_cli("load-score", str(tmp_path / "ghost"), "glass")
        assert code == 2
        assert "error:" in text


class TestBoostSave:
    def test_boost_save_roundtrip_scores_exactly(self, tmp_path):
        import numpy as np

        from repro.data.preprocessing import StandardScaler
        from repro.data.registry import load_dataset
        from repro.serving import load_model, read_manifest

        target = tmp_path / "booster"
        code, text = run_cli(
            "boost", "HBOS", "glass", "--iterations", "2",
            "--max-samples", "150", "--max-features", "6",
            "--save", str(target))
        assert code == 0
        assert "saved" in text
        manifest = read_manifest(target)
        assert manifest["kind"] == "UADBooster"
        assert manifest["extra"]["detector"] == "HBOS"

        dataset = load_dataset("glass", max_samples=150, max_features=6)
        X = StandardScaler().fit_transform(dataset.X)
        booster = load_model(target)
        # The persisted scores_ must equal a fresh scoring pass on X.
        np.testing.assert_allclose(booster.score_samples(X),
                                   np.clip(booster.scores_, 0, 1))


class TestServe:
    def test_serve_answers_health_and_score(self, tmp_path):
        import json
        import threading
        import time
        import urllib.request

        from repro.serving.server import shutdown_all

        target = tmp_path / "m"
        run_cli("save", "HBOS", "glass", str(target),
                "--max-samples", "150", "--max-features", "6")

        out = io.StringIO()
        thread = threading.Thread(
            target=main,
            args=(["serve", str(target), "--port", "0"],),
            kwargs={"out": out}, daemon=True)
        thread.start()
        url = None
        for _ in range(100):
            text = out.getvalue()
            if "http://" in text:
                url = text.split("http://", 1)[1].split()[0]
                break
            time.sleep(0.05)
        assert url, f"server never reported its address: {out.getvalue()!r}"
        try:
            response = urllib.request.urlopen(
                f"http://{url}/healthz", timeout=10)
            assert response.status == 200
            body = json.dumps({"X": [[0.0] * 6]}).encode()
            request = urllib.request.Request(
                f"http://{url}/score", data=body,
                headers={"Content-Type": "application/json"})
            response = urllib.request.urlopen(request, timeout=10)
            payload = json.load(response)
            assert response.status == 200
            assert payload["n"] == 1
        finally:
            shutdown_all()
            thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_serve_missing_store(self, tmp_path):
        code, text = run_cli("serve", str(tmp_path / "nothing"))
        assert code == 2
        assert "error:" in text

    def test_serve_fleet_mode_scores_over_http(self, tmp_path):
        import json
        import threading
        import time
        import urllib.request

        from repro.serving.server import shutdown_all

        target = tmp_path / "m"
        run_cli("save", "HBOS", "glass", str(target),
                "--max-samples", "150", "--max-features", "6")

        out = io.StringIO()
        thread = threading.Thread(
            target=main,
            args=(["serve", str(target), "--port", "0",
                   "--workers", "2"],),
            kwargs={"out": out}, daemon=True)
        thread.start()
        url = None
        for _ in range(600):  # fleet boot includes worker handshakes
            text = out.getvalue()
            if "http://" in text:
                url = text.split("http://", 1)[1].split()[0]
                break
            time.sleep(0.05)
        assert url, f"server never reported its address: {out.getvalue()!r}"
        assert "fleet of 2 workers" in out.getvalue()
        try:
            response = urllib.request.urlopen(
                f"http://{url}/stats", timeout=10)
            stats = json.load(response)
            assert stats["n_workers"] == 2
            body = json.dumps({"X": [[0.0] * 6]}).encode()
            request = urllib.request.Request(
                f"http://{url}/score", data=body,
                headers={"Content-Type": "application/json"})
            response = urllib.request.urlopen(request, timeout=10)
            assert response.status == 200
            assert json.load(response)["n"] == 1
        finally:
            shutdown_all()
            thread.join(timeout=15.0)
        assert not thread.is_alive()

    def test_serve_rejects_bad_worker_count(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", str(tmp_path), "--workers", "0"])

    def test_serve_parses_worker_count(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", str(tmp_path), "--workers", "4"])
        assert args.workers == 4
        args = build_parser().parse_args(["serve", str(tmp_path)])
        assert args.workers is None

    def test_serve_parses_request_timeout(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", str(tmp_path), "--workers", "2",
             "--request-timeout", "2.5"])
        assert args.request_timeout == 2.5
        args = build_parser().parse_args(["serve", str(tmp_path)])
        assert args.request_timeout is None

    def test_serve_request_timeout_requires_fleet_mode(self, tmp_path):
        target = tmp_path / "m"
        run_cli("save", "HBOS", "glass", str(target),
                "--max-samples", "150", "--max-features", "6")
        code, text = run_cli("serve", str(target),
                             "--request-timeout", "2")
        assert code == 2
        assert "--workers" in text


class TestJsonListings:
    def test_list_models_json(self):
        code, text = run_cli("list-models", "--json")
        assert code == 0
        payload = json.loads(text)
        assert len(payload["paper"]) == 14
        assert len(payload["extra"]) == 6
        assert "IForest" in payload["paper"]
        assert "ABOD" in payload["extra"]

    def test_list_datasets_json(self):
        code, text = run_cli("list-datasets", "--json")
        assert code == 0
        payload = json.loads(text)
        assert len(payload) == 84
        assert {"name", "anomaly_rate", "n_samples", "n_features",
                "category"} <= set(payload[0])

    def test_list_datasets_json_category_filter(self):
        code, text = run_cli("list-datasets", "--json",
                             "--category", "Web")
        assert code == 0
        payload = json.loads(text)
        assert payload and all(d["category"] == "Web" for d in payload)


PIPELINE_SPEC = {"type": "Pipeline", "params": {"steps": [
    ["scaler", {"type": "StandardScaler", "params": {}}],
    ["detector", {"type": "IForest", "params": {}}],
    ["booster", {"type": "UADBooster",
                 "params": {"n_iterations": 2, "hidden": 16,
                            "epochs_per_iteration": 2}}],
]}}


class TestSpecFlag:
    def _write(self, tmp_path, spec, name="spec.json"):
        path = tmp_path / name
        path.write_text(json.dumps(spec))
        return str(path)

    def test_boost_detector_spec(self, tmp_path):
        spec = self._write(tmp_path, {"type": "HBOS",
                                      "params": {"n_bins": 5}})
        code, text = run_cli("boost", "glass", "--spec", spec,
                             "--iterations", "2", "--max-samples", "150",
                             "--max-features", "6")
        assert code == 0
        assert "detector  : HBOS" in text
        assert "UADB" in text

    def test_boost_pipeline_spec_saves_and_scores(self, tmp_path):
        spec = self._write(tmp_path, PIPELINE_SPEC)
        target = tmp_path / "model"
        code, text = run_cli("boost", "glass", "--spec", spec,
                             "--max-samples", "150", "--max-features", "6",
                             "--save", str(target))
        assert code == 0
        assert "pipeline  : Pipeline" in text
        assert "scaler -> detector -> booster" in text

        from repro.serving import load_model
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["kind"] == "Pipeline"
        assert manifest["spec"]["type"] == "Pipeline"
        assert load_model(target).scores_ is not None

    def test_boost_iterations_routes_to_pipeline_booster(self, tmp_path):
        spec = self._write(tmp_path, PIPELINE_SPEC)
        target = tmp_path / "model"
        code, _ = run_cli("boost", "glass", "--spec", spec,
                          "--iterations", "3", "--max-samples", "150",
                          "--max-features", "6", "--save", str(target))
        assert code == 0
        manifest = json.loads((target / "manifest.json").read_text())
        steps = dict((name, s) for name, s in
                     manifest["spec"]["params"]["steps"])
        assert steps["booster"]["params"]["n_iterations"] == 3

    def test_boost_iterations_noted_without_booster_step(self, tmp_path):
        spec = self._write(tmp_path, {"type": "Pipeline", "params": {
            "steps": [["det", {"type": "HBOS", "params": {}}]]}})
        code, text = run_cli("boost", "glass", "--spec", spec,
                             "--iterations", "3", "--max-samples", "150",
                             "--max-features", "6")
        assert code == 0
        assert "--iterations ignored" in text

    def test_load_score_pipeline_uses_raw_features(self, tmp_path):
        # Pipelines were fitted (and fingerprinted) on raw features;
        # load-score must not standardise on top of the pipeline's own
        # scaler (that double-scaling silently corrupted scores).
        spec = self._write(tmp_path, PIPELINE_SPEC)
        target = tmp_path / "model"
        code, boost_text = run_cli(
            "boost", "glass", "--spec", spec, "--max-samples", "150",
            "--max-features", "6", "--save", str(target))
        assert code == 0
        code, text = run_cli("load-score", str(target), "glass",
                             "--max-samples", "150", "--max-features", "6")
        assert code == 0
        assert "data fingerprint: match" in text
        boosted = boost_text.split("AUCROC=")[1].split()[0]
        assert f"AUCROC={boosted}" in text

    def test_boost_requires_exactly_one_source(self, tmp_path):
        code, text = run_cli("boost", "glass")
        assert code == 2 and "exactly one" in text
        spec = self._write(tmp_path, {"type": "HBOS", "params": {}})
        code, text = run_cli("boost", "HBOS", "glass", "--spec", spec)
        assert code == 2 and "exactly one" in text

    def test_boost_rejects_non_source_spec(self, tmp_path):
        spec = self._write(tmp_path, {"type": "UADBooster", "params": {}})
        code, text = run_cli("boost", "glass", "--spec", spec,
                             "--max-samples", "150", "--max-features", "6")
        assert code == 2
        assert "source-detector contract" in text

    def test_boost_bad_spec_file(self, tmp_path):
        code, text = run_cli("boost", "glass", "--spec",
                             str(tmp_path / "missing.json"))
        assert code == 2
        assert "error:" in text

    def test_save_with_spec(self, tmp_path):
        spec = self._write(tmp_path, {"type": "HBOS",
                                      "params": {"n_bins": 5}})
        target = tmp_path / "model"
        code, text = run_cli("save", "glass", str(target), "--spec", spec,
                             "--max-samples", "150", "--max-features", "6")
        assert code == 0
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["kind"] == "HBOS"
        assert manifest["spec"]["params"]["n_bins"] == 5

    def test_sweep_with_spec_column(self, tmp_path):
        spec = self._write(tmp_path, {"type": "HBOS",
                                      "params": {"n_bins": 4}})
        code, text = run_cli("sweep", "--models", "HBOS",
                             "--spec", spec, "--datasets", "glass",
                             "--iterations", "2", "--max-samples", "150",
                             "--max-features", "6")
        assert code == 0
        assert "= 2 cells" in text
        assert "HBOS@" in text

    def test_sweep_spec_only(self, tmp_path):
        spec = self._write(tmp_path, {"type": "HBOS", "params": {}})
        code, text = run_cli("sweep", "--spec", spec,
                             "--datasets", "glass", "--iterations", "2",
                             "--max-samples", "150", "--max-features", "6")
        assert code == 0
        assert "1 models" in text
