"""Tests for the process-wide neighbor cache: exactness + observability."""

import numpy as np
import pytest

import repro.kernels as kernels
from repro.kernels import NeighborCache, cached_kneighbors, fingerprint
from repro.kernels.distance import kneighbors


@pytest.fixture(autouse=True)
def fresh_cache():
    kernels.clear_cache()
    yield
    kernels.clear_cache()


class TestFingerprint:
    def test_content_keyed(self, rng):
        X = rng.normal(size=(30, 4))
        assert fingerprint(X) == fingerprint(X.copy())
        Y = X.copy()
        Y[3, 2] += 1e-12
        assert fingerprint(X) != fingerprint(Y)

    def test_dtype_and_shape_matter(self, rng):
        X = rng.normal(size=(12, 4))
        assert fingerprint(X) != fingerprint(X.astype(np.float32))
        assert fingerprint(X) != fingerprint(X.reshape(4, 12))


class TestNeighborCacheExactness:
    @pytest.mark.parametrize("exclude_self", [True, False])
    @pytest.mark.parametrize("k", [1, 3, 19])
    def test_matches_direct_kernel(self, rng, k, exclude_self):
        X = rng.normal(size=(40, 5))
        cache = NeighborCache()
        d_c, i_c = cache.kneighbors(X, k, exclude_self=exclude_self)
        d_d, i_d = kneighbors(X, X, k, exclude_self=exclude_self)
        np.testing.assert_array_equal(i_c, i_d)
        np.testing.assert_array_equal(d_c, d_d)

    def test_matches_direct_kernel_on_duplicates(self, rng):
        X = np.vstack([rng.normal(size=(15, 3))] * 3)
        cache = NeighborCache()
        for exclude_self in (True, False):
            for k in (2, 10):
                d_c, i_c = cache.kneighbors(X, k, exclude_self=exclude_self)
                d_d, i_d = kneighbors(X, X, k, exclude_self=exclude_self)
                np.testing.assert_array_equal(i_c, i_d)
                np.testing.assert_array_equal(d_c, d_d)

    def test_monotone_one_build_serves_smaller_k(self, rng):
        X = rng.normal(size=(60, 4))
        cache = NeighborCache(min_k=20)
        d20, i20 = cache.kneighbors(X, 20, exclude_self=True)
        for k in (1, 5, 12):
            d_k, i_k = cache.kneighbors(X, k, exclude_self=True)
            np.testing.assert_array_equal(i_k, i20[:, :k])
            np.testing.assert_array_equal(d_k, d20[:, :k])
        assert cache.stats()["builds"] == 1

    def test_one_build_serves_both_conventions(self, rng):
        X = rng.normal(size=(50, 4))
        cache = NeighborCache()
        cache.kneighbors(X, 10, exclude_self=True)
        cache.kneighbors(X, 10, exclude_self=False)
        cache.kneighbors(X, 20, exclude_self=True)
        assert cache.stats()["builds"] == 1

    def test_larger_k_rebuilds_and_stays_consistent(self, rng):
        X = rng.normal(size=(80, 4))
        cache = NeighborCache(min_k=5)
        d_small, i_small = cache.kneighbors(X, 5, exclude_self=True)
        d_big, i_big = cache.kneighbors(X, 40, exclude_self=True)
        assert cache.stats()["builds"] == 2
        np.testing.assert_array_equal(i_big[:, :5], i_small)
        np.testing.assert_array_equal(d_big[:, :5], d_small)

    def test_returns_copies(self, rng):
        X = rng.normal(size=(25, 3))
        cache = NeighborCache()
        d1, i1 = cache.kneighbors(X, 4)
        d1 += 1.0
        i1 += 1
        d2, i2 = cache.kneighbors(X, 4)
        assert not np.array_equal(d1, d2)
        assert not np.array_equal(i1, i2)

    def test_k_validation(self, rng):
        X = rng.normal(size=(6, 2))
        cache = NeighborCache()
        with pytest.raises(ValueError):
            cache.kneighbors(X, 6, exclude_self=True)
        with pytest.raises(ValueError):
            cache.kneighbors(X, 0)

    def test_pairwise_cached_and_read_only(self, rng):
        X = rng.normal(size=(30, 4))
        cache = NeighborCache()
        D1 = cache.pairwise(X)
        D2 = cache.pairwise(X.copy())
        assert D1 is D2
        assert cache.stats()["builds"] == 1
        with pytest.raises(ValueError):
            D1[0, 0] = 1.0

    def test_lru_eviction(self, rng):
        cache = NeighborCache(max_graphs=2)
        mats = [rng.normal(size=(20, 3)) for _ in range(3)]
        for X in mats:
            cache.kneighbors(X, 3)
        stats = cache.stats()
        assert stats["graphs"] == 2
        assert stats["evictions"] == 1
        cache.kneighbors(mats[0], 3)  # evicted -> rebuilt
        assert cache.stats()["builds"] == 4


class TestModuleLevelCache:
    def test_cached_kneighbors_identity_path(self, rng):
        X = rng.normal(size=(40, 4))
        d_c, i_c = cached_kneighbors(X, X, 6, exclude_self=True)
        d_d, i_d = kneighbors(X, X, 6, exclude_self=True)
        np.testing.assert_array_equal(i_c, i_d)
        np.testing.assert_array_equal(d_c, d_d)
        assert kernels.cache_stats()["builds"] == 1

    def test_cached_kneighbors_content_path(self, rng):
        """A content-equal copy (FeatureBagging's scoring pattern) hits."""
        X = rng.normal(size=(40, 4))
        cached_kneighbors(X, X, 6, exclude_self=True)
        d_c, i_c = cached_kneighbors(X.copy(), X, 6)
        assert kernels.cache_stats()["builds"] == 1
        assert kernels.cache_stats()["hits"] >= 1
        d_d, i_d = kneighbors(X.copy(), X, 6)
        np.testing.assert_array_equal(i_c, i_d)
        np.testing.assert_array_equal(d_c, d_d)

    def test_cached_kneighbors_distinct_query_falls_through(self, rng):
        X = rng.normal(size=(30, 4))
        Q = rng.normal(size=(10, 4))
        d_c, i_c = cached_kneighbors(Q, X, 3)
        assert kernels.cache_stats()["builds"] == 0
        d_d, i_d = kneighbors(Q, X, 3)
        np.testing.assert_array_equal(i_c, i_d)
        np.testing.assert_array_equal(d_c, d_d)

    def test_cache_stats_and_clear(self, rng):
        X = rng.normal(size=(20, 3))
        cached_kneighbors(X, X, 4, exclude_self=True)
        cached_kneighbors(X, X, 4, exclude_self=True)
        stats = kernels.cache_stats()
        assert stats["builds"] == 1 and stats["hits"] == 1
        kernels.clear_cache()
        stats = kernels.cache_stats()
        assert stats["builds"] == 0 and stats["graphs"] == 0


class TestConcurrency:
    def test_concurrent_misses_build_once(self, rng):
        """Simultaneous first queries for one fingerprint must produce
        exactly one O(n^2) build; the rest wait and serve views."""
        import threading

        cache = NeighborCache()
        X = rng.normal(size=(120, 5))
        barrier = threading.Barrier(6)
        results, errors = [], []

        def query():
            try:
                barrier.wait()
                results.append(cache.kneighbors(X, 10, exclude_self=True))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=query) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.stats()["builds"] == 1
        assert len(results) == 6
        d0, i0 = results[0]
        for d, i in results[1:]:
            np.testing.assert_array_equal(d, d0)
            np.testing.assert_array_equal(i, i0)

    def test_concurrent_pairwise_builds_once(self, rng):
        import threading

        cache = NeighborCache()
        X = rng.normal(size=(80, 4))
        barrier = threading.Barrier(4)
        out = []

        def query():
            barrier.wait()
            out.append(cache.pairwise(X))

        threads = [threading.Thread(target=query) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.stats()["builds"] == 1
        for D in out[1:]:
            assert D is out[0]  # the one cached read-only matrix

    def test_failed_build_releases_key(self, rng, monkeypatch):
        """A build that raises must release the in-flight key so later
        queries (or waiters) can build instead of wedging."""
        import repro.kernels.cache as cache_mod

        X = rng.normal(size=(20, 3))
        cache = NeighborCache()

        def boom(*args, **kwargs):
            raise RuntimeError("injected build failure")

        monkeypatch.setattr(cache_mod, "kneighbors", boom)
        with pytest.raises(RuntimeError, match="injected"):
            cache.kneighbors(X, 5, exclude_self=True)
        monkeypatch.undo()
        d, i = cache.kneighbors(X, 5, exclude_self=True)
        assert d.shape == (20, 5)
        d2, i2 = kneighbors(X, X, 5, exclude_self=True)
        np.testing.assert_array_equal(d, d2)
        np.testing.assert_array_equal(i, i2)


class TestSpotCheck:
    def test_unequal_same_shape_query_skips_cache(self, rng):
        """Content-unequal same-shape pairs fall through to the direct
        kernel without registering cache traffic (the spot-check rules
        them out before any fingerprint hashing)."""
        ref = rng.normal(size=(60, 4))
        query = ref + 1.0
        kernels.clear_cache()
        d, i = cached_kneighbors(query, ref, 5)
        d2, i2 = kneighbors(query, ref, 5)
        np.testing.assert_array_equal(d, d2)
        np.testing.assert_array_equal(i, i2)
        stats = kernels.cache_stats()
        assert stats["hits"] == stats["misses"] == stats["builds"] == 0

    def test_spot_equal_but_unequal_still_correct(self, rng):
        """Pairs equal at the sampled rows but unequal elsewhere must be
        caught by the full fingerprint and fall through."""
        ref = rng.normal(size=(61, 4))
        query = ref.copy()
        query[17] += 3.0  # not row 0, 30, or 60
        d, i = cached_kneighbors(query, ref, 5)
        d2, i2 = kneighbors(query, ref, 5)
        np.testing.assert_array_equal(d, d2)
        np.testing.assert_array_equal(i, i2)
