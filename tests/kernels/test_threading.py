"""Thread-count control: resolution order and result invariance."""

import numpy as np
import pytest

from repro.kernels import get_num_threads, set_num_threads
from repro.kernels.distance import kneighbors, pairwise_distances
from repro.kernels.threading import map_blocks


@pytest.fixture(autouse=True)
def restore_threads():
    yield
    set_num_threads(None)


class TestThreadControl:
    def test_set_get_round_trip(self):
        set_num_threads(3)
        assert get_num_threads() == 3
        set_num_threads(None)
        assert get_num_threads() >= 1

    def test_env_var_resolution(self, monkeypatch):
        set_num_threads(None)
        monkeypatch.setenv("REPRO_NUM_THREADS", "5")
        assert get_num_threads() == 5
        monkeypatch.setenv("REPRO_NUM_THREADS", "not-a-number")
        assert get_num_threads() >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_num_threads(0)


class TestThreadInvariance:
    """Any thread count must return bit-identical results."""

    def test_pairwise_identical_across_thread_counts(self, rng):
        A = rng.normal(size=(300, 6))
        B = rng.normal(size=(120, 6))
        set_num_threads(1)
        serial = pairwise_distances(A, B, chunk_size=64)
        for n in (2, 4):
            set_num_threads(n)
            np.testing.assert_array_equal(
                pairwise_distances(A, B, chunk_size=64), serial)

    def test_kneighbors_identical_across_thread_counts(self, rng):
        X = rng.normal(size=(250, 5))
        set_num_threads(1)
        d1, i1 = kneighbors(X, X, 7, exclude_self=True, chunk_size=32)
        for n in (2, 4):
            set_num_threads(n)
            d_n, i_n = kneighbors(X, X, 7, exclude_self=True, chunk_size=32)
            np.testing.assert_array_equal(d_n, d1)
            np.testing.assert_array_equal(i_n, i1)

    def test_worker_exception_propagates(self):
        set_num_threads(2)

        def boom(block):
            raise RuntimeError(f"boom on {block}")

        with pytest.raises(RuntimeError, match="boom"):
            map_blocks(boom, [(0, 1), (1, 2), (2, 3)])
