"""Tests for the composable Pipeline, including persistence and serving."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.api import Pipeline, build_spec, to_spec
from repro.core import UADBooster
from repro.core.variants import SelfBooster
from repro.data.preprocessing import MinMaxScaler, StandardScaler
from repro.detectors import HBOS, IForest, KNN
from repro.serving import ModelStore, load_model, save_model
from repro.serving.server import build_server
from tests.conftest import FAST_BOOSTER


def fast_booster(**overrides):
    return UADBooster(**{**FAST_BOOSTER, "random_state": 0, **overrides})


@pytest.fixture
def raw_dataset(small_dataset):
    # Pipelines own their preprocessing, so tests feed unscaled data.
    X, y = small_dataset
    rng = np.random.default_rng(5)
    return X * 3.0 + rng.normal(size=X.shape[1]), y


class TestConstruction:
    def test_auto_names(self):
        pipe = Pipeline([StandardScaler(), IForest()])
        assert [name for name, _ in pipe.steps] == ["StandardScaler",
                                                    "IForest"]

    def test_requires_detector(self):
        with pytest.raises(ValueError, match="exactly one detector"):
            Pipeline([("scaler", StandardScaler())])

    def test_rejects_two_detectors(self):
        with pytest.raises(ValueError, match="exactly one detector"):
            Pipeline([("a", HBOS()), ("b", KNN())])

    def test_rejects_two_boosters(self):
        with pytest.raises(ValueError, match="at most one booster"):
            Pipeline([("d", HBOS()), ("b1", fast_booster()),
                      ("b2", fast_booster())])

    def test_rejects_wrong_order(self):
        with pytest.raises(ValueError, match="transformers, then"):
            Pipeline([("det", HBOS()), ("scaler", StandardScaler())])
        with pytest.raises(ValueError, match="transformers, then"):
            Pipeline([("boost", fast_booster()), ("det", HBOS())])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            Pipeline([("x", StandardScaler()), ("x", HBOS())])

    def test_rejects_dunder_names(self):
        with pytest.raises(ValueError, match="__"):
            Pipeline([("a__b", HBOS())])

    def test_rejects_non_estimator(self):
        with pytest.raises(TypeError, match="no fit"):
            Pipeline([("x", object())])

    def test_variant_accepted_as_booster(self):
        pipe = Pipeline([("det", HBOS()),
                         ("boost", SelfBooster(n_iterations=1))])
        assert pipe._booster is not None


class TestContract:
    def test_matches_manual_composition(self, raw_dataset):
        X, _ = raw_dataset
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("detector", IForest(random_state=0)),
            ("booster", fast_booster()),
        ]).fit(X)

        Z = StandardScaler().fit_transform(X)
        det = IForest(random_state=0).fit(Z)
        booster = fast_booster().fit(Z, det.fit_scores())

        np.testing.assert_array_equal(pipe.scores_, booster.scores_)
        np.testing.assert_array_equal(pipe.score_samples(X),
                                      booster.score_samples(Z))
        np.testing.assert_array_equal(pipe.predict(X), booster.predict(Z))

    def test_without_booster_scores_like_detector(self, raw_dataset):
        X, _ = raw_dataset
        pipe = Pipeline([("scaler", StandardScaler()),
                         ("det", KNN())]).fit(X)
        Z = StandardScaler().fit_transform(X)
        det = KNN().fit(Z)
        np.testing.assert_array_equal(pipe.scores_, det.fit_scores())
        np.testing.assert_array_equal(pipe.decision_function(X),
                                      det.decision_function(Z))
        np.testing.assert_array_equal(pipe.predict(X), det.predict(Z))

    def test_chained_transformers(self, raw_dataset):
        X, _ = raw_dataset
        pipe = Pipeline([("minmax", MinMaxScaler()),
                         ("standard", StandardScaler()),
                         ("det", HBOS())]).fit(X)
        Z = MinMaxScaler().fit_transform(X)
        Z = StandardScaler().fit_transform(Z)
        np.testing.assert_array_equal(pipe.score_samples(X),
                                      HBOS().fit(Z).score_samples(Z))

    def test_unfitted_scoring_rejected(self, raw_dataset):
        X, _ = raw_dataset
        pipe = Pipeline([("det", HBOS())])
        with pytest.raises(RuntimeError, match="not fitted"):
            pipe.score_samples(X)

    def test_fit_scores(self, raw_dataset):
        X, _ = raw_dataset
        pipe = Pipeline([("det", HBOS())]).fit(X)
        np.testing.assert_array_equal(pipe.fit_scores(), pipe.scores_)


class TestParams:
    def test_deep_params_routed_by_step_name(self):
        pipe = Pipeline([("scaler", StandardScaler()),
                         ("det", IForest(n_estimators=9))])
        assert pipe.get_params()["det__n_estimators"] == 9
        pipe.set_params(det__n_estimators=11)
        assert pipe["det"].n_estimators == 11

    def test_step_replacement_by_name(self):
        pipe = Pipeline([("det", HBOS())])
        pipe.set_params(det=KNN(n_neighbors=3))
        assert isinstance(pipe["det"], KNN)

    def test_reconfiguration_unfits(self, raw_dataset):
        X, _ = raw_dataset
        pipe = Pipeline([("det", HBOS())]).fit(X)
        pipe.set_params(det__n_bins=5)
        with pytest.raises(RuntimeError, match="not fitted"):
            pipe.score_samples(X)

    def test_duck_typed_step_fits_but_guards_protocol_access(
            self, raw_dataset):
        # Steps are classified by capability, so a non-ParamsMixin
        # detector is fittable — but deep params skip it and clone
        # refuses to silently share it between twins.
        X, _ = raw_dataset

        class DuckDetector:
            def fit(self, X):
                self.mean_ = X.mean(axis=0)
                return self

            def fit_scores(self):
                return np.zeros(1)

            def score_samples(self, X):
                return np.abs(X - self.mean_).sum(axis=1)

            def decision_function(self, X):
                return self.score_samples(X)

        pipe = Pipeline([("scaler", StandardScaler()),
                         ("duck", DuckDetector())])
        assert "duck" not in {k.split("__")[0]
                              for k in pipe.get_params() if "__" in k}
        with pytest.raises(TypeError, match="duck"):
            pipe.clone()

    def test_clone_is_deep(self, raw_dataset):
        X, _ = raw_dataset
        pipe = Pipeline([("scaler", StandardScaler()), ("det", HBOS())])
        twin = pipe.clone()
        assert twin["det"] is not pipe["det"]
        pipe.fit(X)
        assert twin.scores_ is None

    def test_spec_round_trip_bit_identical(self, raw_dataset):
        X, _ = raw_dataset
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("detector", IForest(random_state=0)),
            ("booster", fast_booster()),
        ])
        rebuilt = build_spec(to_spec(pipe))
        np.testing.assert_array_equal(pipe.fit(X).score_samples(X),
                                      rebuilt.fit(X).score_samples(X))


class TestPersistenceAndServing:
    def test_artifact_round_trip_bit_identical(self, raw_dataset, tmp_path):
        X, _ = raw_dataset
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("detector", IForest(random_state=0)),
            ("booster", fast_booster()),
        ]).fit(X)
        path = save_model(pipe, tmp_path / "pipe", data=X)
        restored = load_model(path, expected_kind="Pipeline")
        np.testing.assert_array_equal(pipe.score_samples(X),
                                      restored.score_samples(X))

    def test_manifest_records_producing_spec(self, raw_dataset, tmp_path):
        X, _ = raw_dataset
        pipe = Pipeline([("scaler", StandardScaler()),
                         ("det", HBOS())]).fit(X)
        save_model(pipe, tmp_path / "pipe")
        manifest = json.loads((tmp_path / "pipe" / "manifest.json")
                              .read_text())
        spec = manifest["spec"]
        assert spec["type"] == "Pipeline"
        rebuilt = build_spec(spec).fit(X)
        np.testing.assert_array_equal(pipe.score_samples(X),
                                      rebuilt.score_samples(X))

    def test_http_scores_match_in_process(self, raw_dataset, tmp_path):
        X, _ = raw_dataset
        pipe = Pipeline([
            ("scaler", StandardScaler()),
            ("detector", IForest(random_state=0)),
            ("booster", fast_booster()),
        ]).fit(X)
        save_model(pipe, tmp_path / "pipe", data=X)
        server = build_server(ModelStore(tmp_path / "pipe"),
                              port=0, cache_size=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            body = json.dumps({"X": X[:13].tolist()}).encode()
            request = urllib.request.Request(
                f"http://{host}:{port}/score", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.load(response)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
        served = np.asarray(payload["scores"], dtype=np.float64)
        np.testing.assert_array_equal(served, pipe.score_samples(X[:13]))
