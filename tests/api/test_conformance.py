"""Estimator-protocol conformance over every registered component.

One parametrized suite asserting, for all 20 registry detectors plus the
booster family and the scalers:

* ``get_params`` / ``set_params`` round-trips the full configuration;
* ``clone`` produces an unfitted twin with equal parameters;
* ``build_spec(to_spec(est))`` reproduces the configuration, and —
  fitted under a fixed seed — **bit-identical scores** (the acceptance
  bar for the declarative spec format);
* clone-then-refit matches the original fit exactly.
"""

import numpy as np
import pytest

from repro.api import (
    ParamsMixin,
    accepts_param,
    build_spec,
    canonical_spec,
    to_spec,
)
from repro.core import UADBooster
from repro.core.ensemble import FoldEnsemble
from repro.core.variants import VARIANT_CLASSES
from repro.data.preprocessing import KFoldSplitter, MinMaxScaler, \
    StandardScaler
from repro.detectors.registry import ALL_DETECTOR_NAMES, DETECTOR_CLASSES, \
    make_detector
from tests.conftest import FAST_BOOSTER


def _params_equal(a: dict, b: dict) -> bool:
    if set(a) != set(b):
        return False
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, (list, tuple)) or isinstance(vb, (list, tuple)):
            if list(np.ravel(va)) != list(np.ravel(vb)):
                return False
        elif not (va == vb or (va is None and vb is None)):
            return False
    return True


@pytest.fixture(scope="module")
def fit_data():
    rng = np.random.default_rng(42)
    inliers = rng.normal(size=(110, 4))
    anomalies = rng.normal(scale=4.0, size=(10, 4))
    return np.vstack([inliers, anomalies])


@pytest.mark.parametrize("name", ALL_DETECTOR_NAMES)
class TestDetectorConformance:
    def test_params_mixin_adopted(self, name):
        assert issubclass(DETECTOR_CLASSES[name], ParamsMixin)

    def test_get_set_params_round_trip(self, name):
        est = make_detector(name, random_state=0)
        rebuilt = DETECTOR_CLASSES[name]()
        rebuilt.set_params(**est.get_params(deep=False))
        assert _params_equal(rebuilt.get_params(deep=False),
                             est.get_params(deep=False))

    def test_clone_round_trip(self, name):
        est = make_detector(name, random_state=0)
        twin = est.clone()
        assert type(twin) is type(est)
        assert _params_equal(twin.get_params(deep=False),
                             est.get_params(deep=False))

    def test_spec_round_trip(self, name):
        est = make_detector(name, random_state=0)
        spec = to_spec(est)
        canonical_spec(spec)  # must be pure, stable JSON
        rebuilt = build_spec(spec)
        assert _params_equal(rebuilt.get_params(deep=False),
                             est.get_params(deep=False))

    def test_repr_params_based(self, name):
        est = make_detector(name, random_state=0)
        text = repr(est)
        assert text.startswith(f"{type(est).__name__}(")
        if accepts_param(type(est), "random_state"):
            assert "random_state=0" in text

    def test_refit_determinism_clone_and_spec(self, name, fit_data):
        est = make_detector(name, random_state=0)
        reference = est.fit(fit_data).score_samples(fit_data)
        via_clone = est.clone().fit(fit_data).score_samples(fit_data)
        via_spec = build_spec(to_spec(est)).fit(fit_data) \
            .score_samples(fit_data)
        np.testing.assert_array_equal(via_clone, reference)
        np.testing.assert_array_equal(via_spec, reference)


@pytest.mark.parametrize("cls,kwargs", [
    (UADBooster, dict(FAST_BOOSTER, random_state=1)),
    (FoldEnsemble, {"hidden": 8, "random_state": 1}),
    (StandardScaler, {}),
    (MinMaxScaler, {"feature_range": (-2.0, 2.0)}),
    (KFoldSplitter, {"n_splits": 4, "random_state": 1}),
    *[(cls, {"n_iterations": 2, "hidden": 8, "random_state": 1})
      for cls in dict.fromkeys(VARIANT_CLASSES.values())],
])
class TestCoreConformance:
    def test_get_set_clone_round_trip(self, cls, kwargs):
        est = cls(**kwargs)
        params = est.get_params(deep=False)
        rebuilt = cls().set_params(**params)
        assert _params_equal(rebuilt.get_params(deep=False), params)
        assert _params_equal(est.clone().get_params(deep=False), params)

    def test_spec_round_trip(self, cls, kwargs):
        est = cls(**kwargs)
        rebuilt = build_spec(to_spec(est))
        assert type(rebuilt) is cls
        assert _params_equal(rebuilt.get_params(deep=False),
                             est.get_params(deep=False))


class TestBoosterRefitDeterminism:
    def test_spec_rebuilt_booster_bit_identical(self, fit_data):
        source = make_detector("HBOS")
        scores = source.fit(fit_data).fit_scores()
        booster = UADBooster(**FAST_BOOSTER, random_state=3)
        rebuilt = build_spec(to_spec(booster))
        a = booster.fit(fit_data, scores).scores_
        b = rebuilt.fit(fit_data, scores).scores_
        np.testing.assert_array_equal(a, b)
