"""Tests for the ParamsMixin estimator protocol."""

import numpy as np
import pytest

from repro.api import ParamsMixin, accepts_param, clone, param_names
from repro.core import UADBooster
from repro.core.ensemble import FoldEnsemble
from repro.data.preprocessing import MinMaxScaler, StandardScaler
from repro.detectors import IForest, KNN


class TestParamNames:
    def test_signature_order(self):
        names = param_names(IForest)
        assert names == ("n_estimators", "max_samples", "contamination",
                         "random_state")

    def test_accepts_param(self):
        assert accepts_param(IForest, "random_state")
        assert not accepts_param(KNN, "random_state")
        assert accepts_param(KNN, "n_neighbors")


class TestGetParams:
    def test_returns_constructor_values(self):
        det = IForest(n_estimators=42, random_state=7)
        params = det.get_params()
        assert params == {"n_estimators": 42, "max_samples": 256,
                          "contamination": 0.1, "random_state": 7}

    def test_booster_params(self):
        booster = UADBooster(n_iterations=3, hidden=16)
        params = booster.get_params()
        assert params["n_iterations"] == 3
        assert params["hidden"] == 16
        assert params["engine"] == "batched"

    def test_normalised_attribute_round_trips(self):
        # FoldEnsemble stores dtype as np.dtype; feeding it back through
        # __init__ must be lossless.
        ens = FoldEnsemble(dtype="float64")
        rebuilt = FoldEnsemble(**ens.get_params())
        assert rebuilt.dtype == np.dtype("float64")


class TestSetParams:
    def test_updates_and_returns_self(self):
        det = IForest()
        assert det.set_params(n_estimators=7) is det
        assert det.n_estimators == 7
        assert det.max_samples == 256  # untouched params survive

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            IForest().set_params(bogus=1)

    def test_revalidates_through_init(self):
        with pytest.raises(ValueError, match="contamination"):
            IForest().set_params(contamination=0.9)

    def test_resets_fitted_state(self, small_dataset):
        X, _ = small_dataset
        det = KNN().fit(X)
        det.set_params(n_neighbors=3)
        assert det.decision_scores_ is None

    def test_empty_call_is_noop(self, small_dataset):
        X, _ = small_dataset
        det = KNN().fit(X)
        det.set_params()
        assert det.decision_scores_ is not None


class TestClone:
    def test_same_params_fresh_state(self, small_dataset):
        X, _ = small_dataset
        det = IForest(n_estimators=20, random_state=3).fit(X)
        twin = det.clone()
        assert twin is not det
        assert twin.get_params() == det.get_params()
        assert twin.decision_scores_ is None

    def test_function_form_rejects_non_estimators(self):
        with pytest.raises(TypeError, match="protocol"):
            clone(object())

    def test_scalers_clone(self):
        scaler = MinMaxScaler(feature_range=(-1.0, 1.0))
        assert scaler.clone().feature_range == (-1.0, 1.0)
        assert isinstance(StandardScaler().clone(), StandardScaler)


class TestRepr:
    def test_shows_only_non_defaults(self):
        assert repr(IForest()) == "IForest()"
        assert repr(IForest(n_estimators=5)) == "IForest(n_estimators=5)"

    def test_subclass_hyper_parameters_visible(self):
        # The old BaseDetector.__repr__ printed only contamination.
        assert "n_neighbors=3" in repr(KNN(n_neighbors=3))

    def test_booster_repr(self):
        text = repr(UADBooster(n_iterations=4, random_state=0))
        assert text == "UADBooster(n_iterations=4, random_state=0)"


class TestProtocolViolation:
    def test_missing_attribute_detected(self):
        class Broken(ParamsMixin):
            def __init__(self, alpha=1.0):
                self.beta = alpha

        with pytest.raises(AttributeError, match="protocol"):
            Broken().get_params()
