"""Tests for the declarative spec format and the component registry."""

import json

import numpy as np
import pytest

from repro.api import (
    Pipeline,
    SpecError,
    as_spec,
    build_spec,
    canonical_spec,
    component_class,
    load_spec,
    make_component,
    spec_key,
    to_spec,
)
from repro.core import UADBooster
from repro.data.preprocessing import StandardScaler
from repro.detectors import HBOS, IForest
from repro.detectors.registry import ALL_DETECTOR_NAMES


class TestRegistry:
    def test_every_detector_registered(self):
        for name in ALL_DETECTOR_NAMES:
            assert component_class(name) is not None

    def test_core_components_registered(self):
        assert component_class("UADBooster") is UADBooster
        assert component_class("StandardScaler") is StandardScaler
        assert component_class("Pipeline") is Pipeline
        assert component_class("naive").__name__ == "NaiveBooster"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown component"):
            component_class("NotAThing")

    def test_make_component_seeds_by_introspection(self):
        assert make_component("IForest", random_state=5).random_state == 5
        knn = make_component("KNN", random_state=5)  # deterministic: no seed
        assert not hasattr(knn, "random_state")


class TestToSpec:
    def test_detector_spec(self):
        spec = to_spec(IForest(n_estimators=10, random_state=0))
        assert spec["type"] == "IForest"
        assert spec["params"]["n_estimators"] == 10
        assert spec["params"]["random_state"] == 0

    def test_spec_is_pure_json(self):
        spec = to_spec(UADBooster(dtype="float32"))
        json.dumps(spec)  # must not raise

    def test_generator_seed_rejected(self):
        det = IForest(random_state=np.random.default_rng(0))
        with pytest.raises(SpecError, match="not.*spec-serialisable"):
            to_spec(det)

    def test_unregistered_class_rejected(self):
        class Foreign:
            def get_params(self, deep=True):
                return {}

        with pytest.raises(SpecError, match="not a registered component"):
            to_spec(Foreign())


class TestBuildSpec:
    def test_name_and_params(self):
        det = build_spec({"type": "HBOS", "params": {"n_bins": 5}})
        assert isinstance(det, HBOS)
        assert det.n_bins == 5

    def test_seed_injection(self):
        det = build_spec({"type": "IForest"}, random_state=9)
        assert det.random_state == 9

    def test_explicit_seed_wins(self):
        det = build_spec({"type": "IForest",
                          "params": {"random_state": 3}}, random_state=9)
        assert det.random_state == 3

    def test_pinned_seed_on_seedless_component_rejected(self):
        # A spec author pinning random_state on a deterministic detector
        # must get an error, not a silently unseeded run; the uniform
        # build_spec(..., random_state=...) pathway stays a no-op.
        with pytest.raises(SpecError, match="KNN"):
            build_spec({"type": "KNN", "params": {"random_state": 7}})
        build_spec({"type": "KNN"}, random_state=7)  # uniform: fine

    def test_null_seed_is_unpinned(self):
        spec = to_spec(IForest())  # records random_state: None
        assert build_spec(spec, random_state=4).random_state == 4

    def test_nested_pipeline_spec_seeds_every_component(self):
        spec = {"type": "Pipeline", "params": {"steps": [
            ["scaler", {"type": "StandardScaler", "params": {}}],
            ["det", {"type": "IForest", "params": {}}],
            ["boost", {"type": "UADBooster", "params": {}}],
        ]}}
        pipe = build_spec(spec, random_state=2)
        assert isinstance(pipe, Pipeline)
        assert pipe["det"].random_state == 2
        assert pipe["boost"].random_state == 2

    def test_malformed_specs_rejected(self):
        for bad in (42, {"params": {}}, {"type": 3},
                    {"type": "HBOS", "params": 7},
                    {"type": "HBOS", "extra": 1}):
            with pytest.raises(SpecError):
                build_spec(bad)

    def test_unknown_type(self):
        with pytest.raises(SpecError, match="unknown component"):
            build_spec({"type": "NotAThing"})

    def test_bad_param_name(self):
        with pytest.raises(SpecError, match="HBOS"):
            build_spec({"type": "HBOS", "params": {"bogus": 1}})


class TestAsSpec:
    def test_name(self):
        assert as_spec("IForest") == {"type": "IForest", "params": {}}

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            as_spec("NotAThing")

    def test_dict_passthrough(self):
        spec = {"type": "HBOS", "params": {"n_bins": 4}}
        assert as_spec(spec) is spec

    def test_estimator(self):
        assert as_spec(HBOS(n_bins=4))["params"]["n_bins"] == 4


class TestCanonicalForm:
    def test_key_order_independent(self):
        a = {"type": "HBOS", "params": {"n_bins": 5, "contamination": 0.1}}
        b = {"params": {"contamination": 0.1, "n_bins": 5}, "type": "HBOS"}
        assert canonical_spec(a) == canonical_spec(b)
        assert spec_key(a) == spec_key(b)

    def test_param_change_changes_key(self):
        a = {"type": "HBOS", "params": {"n_bins": 5}}
        b = {"type": "HBOS", "params": {"n_bins": 6}}
        assert spec_key(a) != spec_key(b)

    def test_omitted_params_equals_empty_params(self):
        assert canonical_spec({"type": "HBOS"}) \
            == canonical_spec({"type": "HBOS", "params": {}})

    def test_nested_omitted_params_normalised(self):
        a = {"type": "Pipeline", "params": {"steps": [
            ["det", {"type": "HBOS"}]]}}
        b = {"type": "Pipeline", "params": {"steps": [
            ["det", {"type": "HBOS", "params": {}}]]}}
        assert canonical_spec(a) == canonical_spec(b)

    def test_default_constructed_estimator_matches_bare_name(self):
        # One configuration, one canonical form: a registry name, its
        # explicit empty spec, and a live default-constructed estimator
        # must share cache keys and labels.
        from repro.detectors import HBOS

        assert to_spec(HBOS()) == {"type": "HBOS", "params": {}}
        assert canonical_spec(to_spec(HBOS())) \
            == canonical_spec(as_spec("HBOS"))

    def test_non_default_params_survive_to_spec(self):
        spec = to_spec(HBOS(n_bins=5))
        assert spec["params"] == {"n_bins": 5}


class TestLoadSpec:
    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"type": "HBOS",
                                    "params": {"n_bins": 7}}))
        det = build_spec(load_spec(path))
        assert det.n_bins == 7

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_spec(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="cannot read"):
            load_spec(path)
