"""Tests for UADB run diagnostics."""

import numpy as np
import pytest

from repro.core import UADBooster
from repro.detectors import IForest
from repro.experiments.diagnostics import (
    case_rank_trajectories,
    convergence_profile,
    correction_summary,
    label_movement,
)
from tests.conftest import FAST_BOOSTER


@pytest.fixture(scope="module")
def run(small_dataset):
    X, y = small_dataset
    source = IForest(random_state=0).fit(X)
    booster = UADBooster(**FAST_BOOSTER, random_state=0).fit(X, source)
    return booster.history_, y


class TestLabelMovement:
    def test_fields(self, run):
        history, _ = run
        out = label_movement(history)
        assert out["movement"].shape[0] == len(history.pseudo_labels[0])
        assert out["mean_abs"] >= 0
        assert out["max_up"] >= out["max_down"]
        assert out["n_promoted"] >= 0 and out["n_demoted"] >= 0

    def test_movement_consistent_with_matrix(self, run):
        history, _ = run
        out = label_movement(history)
        matrix = history.pseudo_label_matrix()
        np.testing.assert_allclose(out["movement"],
                                   matrix[:, -1] - matrix[:, 0])


class TestCorrectionSummary:
    def test_accounting(self, run):
        history, y = run
        out = correction_summary(history, y)
        counts = out["case_counts"]
        assert sum(counts.values()) == y.size
        assert out["n_errors_initial"] == counts["FP"] + counts["FN"]
        assert 0 <= out["n_corrected"] <= out["n_errors_initial"]
        assert 0.0 <= out["correction_rate"] <= 1.0
        assert out["net_improvement"] == (out["n_corrected"]
                                          - out["n_corrupted"])

    def test_perfect_initial_labels(self, run):
        history, _ = run
        # With ground truth equal to thresholded initial labels there are
        # no errors, so the correction rate is defined as zero.
        initial = history.pseudo_labels[0]
        fake_y = (initial > 0.5).astype(int)
        if fake_y.sum() in (0, fake_y.size):
            pytest.skip("degenerate initial labels")
        out = correction_summary(history, fake_y)
        assert out["n_errors_initial"] == 0
        assert out["correction_rate"] == 0.0


class TestCaseRankTrajectories:
    def test_shapes(self, run):
        history, y = run
        out = case_rank_trajectories(history, y)
        assert set(out) == {"TP", "TN", "FP", "FN"}
        for series in out.values():
            assert len(series) == history.n_iterations


class TestConvergenceProfile:
    def test_fields(self, run):
        history, _ = run
        out = convergence_profile(history)
        assert len(out["label_deltas"]) == history.n_iterations
        assert len(out["score_deltas"]) == history.n_iterations - 1
        assert len(out["variance_means"]) == history.n_iterations
        assert all(d >= 0 for d in out["label_deltas"])
        assert isinstance(out["settled"], bool)
