"""Tests for the experiment harness (small, fast configurations)."""

import pytest

from repro.data.synthetic import make_anomaly_dataset
from repro.experiments.harness import (
    DEFAULT_BENCH_DATASETS,
    ExperimentRunner,
    run_grid,
    run_single,
    run_variant,
    spec_label,
)

FAST = {"n_iterations": 2,
        "booster_kwargs": {"hidden": 16, "epochs_per_iteration": 2}}


@pytest.fixture(scope="module")
def tiny_dataset():
    return make_anomaly_dataset("global", n_inliers=130, n_anomalies=14,
                                n_features=4, random_state=2)


class TestRunSingle:
    def test_result_fields(self, tiny_dataset):
        result = run_single(tiny_dataset, "IForest", seed=0, **FAST)
        assert result.detector == "IForest"
        assert result.dataset == tiny_dataset.name
        assert 0.0 <= result.source_auc <= 1.0
        assert 0.0 <= result.booster_ap <= 1.0
        assert len(result.iteration_auc) == 2

    def test_improvement_properties(self, tiny_dataset):
        result = run_single(tiny_dataset, "HBOS", seed=0, **FAST)
        assert result.auc_improvement == pytest.approx(
            result.booster_auc - result.source_auc)
        assert result.ap_improvement == pytest.approx(
            result.booster_ap - result.source_ap)

    def test_seed_changes_result(self, tiny_dataset):
        a = run_single(tiny_dataset, "IForest", seed=0, **FAST)
        b = run_single(tiny_dataset, "IForest", seed=1, **FAST)
        assert a.booster_auc != b.booster_auc

    def test_history_disabled_skips_iterations(self, tiny_dataset):
        result = run_single(
            tiny_dataset, "IForest", seed=0, n_iterations=2,
            booster_kwargs={"hidden": 16, "epochs_per_iteration": 2,
                            "record_history": False})
        assert result.iteration_auc == []


class TestRunVariant:
    @pytest.mark.parametrize("variant", ["naive", "self"])
    def test_variant_metrics(self, tiny_dataset, variant):
        out = run_variant(tiny_dataset, "HBOS", variant, n_iterations=2,
                          seed=0,
                          variant_kwargs={"hidden": 16,
                                          "epochs_per_iteration": 2})
        assert out["variant"] == variant
        assert 0.0 <= out["auc"] <= 1.0
        assert 0.0 <= out["source_ap"] <= 1.0


class TestRunGrid:
    def test_grid_size(self, tiny_dataset):
        results = run_grid(detectors=("IForest", "HBOS"),
                           datasets=(tiny_dataset,), seeds=(0, 1), **FAST)
        assert len(results) == 4

    def test_named_datasets_loaded(self):
        results = run_grid(detectors=("HBOS",), datasets=("glass",),
                           seeds=(0,), max_samples=150, max_features=6,
                           **FAST)
        assert results[0].dataset == "glass"

    def test_progress_callback(self, tiny_dataset):
        messages = []
        run_grid(detectors=("HBOS",), datasets=(tiny_dataset,), seeds=(0,),
                 progress=messages.append, **FAST)
        assert len(messages) == 1
        assert "HBOS" in messages[0]
        assert "[1/1]" in messages[0]

    def test_default_bench_datasets_are_registered(self):
        from repro.data.registry import DATASET_NAMES
        for name in DEFAULT_BENCH_DATASETS:
            assert name in DATASET_NAMES


@pytest.fixture(scope="module")
def second_dataset():
    return make_anomaly_dataset("local", n_inliers=120, n_anomalies=12,
                                n_features=4, random_state=5)


class TestExperimentRunner:
    GRID = {"detectors": ("IForest", "HBOS"), "seeds": (0,)}

    def test_parallel_matches_serial(self, tiny_dataset, second_dataset):
        datasets = (tiny_dataset, second_dataset)
        serial = run_grid(datasets=datasets, **self.GRID, **FAST)
        parallel = run_grid(datasets=datasets, n_jobs=2, **self.GRID, **FAST)
        assert parallel == serial

    def test_cache_roundtrip_exact(self, tiny_dataset, second_dataset,
                                   tmp_path):
        datasets = (tiny_dataset, second_dataset)
        first = run_grid(datasets=datasets, cache_dir=tmp_path,
                         **self.GRID, **FAST)
        assert len(list(tmp_path.glob("*.json"))) == 4
        messages = []
        second = run_grid(datasets=datasets, cache_dir=tmp_path,
                          progress=messages.append, **self.GRID, **FAST)
        assert second == first
        assert all("[cached]" in msg for msg in messages)

    def test_cache_keyed_on_config(self, tiny_dataset, tmp_path):
        run_grid(detectors=("HBOS",), datasets=(tiny_dataset,), seeds=(0,),
                 cache_dir=tmp_path, **FAST)
        run_grid(detectors=("HBOS",), datasets=(tiny_dataset,), seeds=(1,),
                 cache_dir=tmp_path, **FAST)
        run_grid(detectors=("HBOS",), datasets=(tiny_dataset,), seeds=(0,),
                 cache_dir=tmp_path, n_iterations=3,
                 booster_kwargs=FAST["booster_kwargs"])
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_corrupt_cache_entry_is_recomputed(self, tiny_dataset, tmp_path):
        first = run_grid(detectors=("HBOS",), datasets=(tiny_dataset,),
                         seeds=(0,), cache_dir=tmp_path, **FAST)
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{not json")
        again = run_grid(detectors=("HBOS",), datasets=(tiny_dataset,),
                         seeds=(0,), cache_dir=tmp_path, **FAST)
        assert again == first

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            ExperimentRunner(n_jobs=0)


class TestSpecCells:
    def test_name_and_equivalent_spec_match_exactly(self, tiny_dataset):
        by_name = run_single(tiny_dataset, "IForest", seed=0, **FAST)
        by_spec = run_single(tiny_dataset,
                             {"type": "IForest", "params": {}},
                             seed=0, **FAST)
        assert by_spec == by_name  # including the bare-name label

    def test_live_default_estimator_labels_as_bare_name(self, tiny_dataset):
        from repro.detectors import HBOS

        by_name = run_single(tiny_dataset, "HBOS", seed=0, **FAST)
        by_instance = run_single(tiny_dataset, HBOS(), seed=0, **FAST)
        assert by_instance == by_name

    def test_parameterised_spec_gets_hash_label(self, tiny_dataset):
        spec = {"type": "HBOS", "params": {"n_bins": 4}}
        result = run_single(tiny_dataset, spec, seed=0, **FAST)
        assert result.detector.startswith("HBOS@")
        assert spec_label(spec) == result.detector

    def test_pipeline_spec_as_source(self, tiny_dataset):
        spec = {"type": "Pipeline", "params": {"steps": [
            ["scaler", {"type": "MinMaxScaler", "params": {}}],
            ["det", {"type": "HBOS", "params": {}}],
        ]}}
        result = run_single(tiny_dataset, spec, seed=0, **FAST)
        assert result.detector.startswith("Pipeline@")
        assert 0.0 <= result.booster_auc <= 1.0

    def test_grid_mixes_names_and_specs(self, tiny_dataset):
        results = run_grid(
            detectors=("HBOS", {"type": "HBOS", "params": {"n_bins": 4}}),
            datasets=(tiny_dataset,), seeds=(0,), **FAST)
        assert [r.detector for r in results][0] == "HBOS"
        assert results[1].detector.startswith("HBOS@")

    def test_cache_key_is_canonical_spec(self, tiny_dataset, tmp_path):
        # A name and its explicit-spec twin share one cache entry; a
        # parameter change is a miss.
        run_grid(detectors=("HBOS",), datasets=(tiny_dataset,), seeds=(0,),
                 cache_dir=tmp_path, **FAST)
        messages = []
        run_grid(detectors=({"type": "HBOS", "params": {}},),
                 datasets=(tiny_dataset,), seeds=(0,), cache_dir=tmp_path,
                 progress=messages.append, **FAST)
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert "[cached]" in messages[0]
        run_grid(detectors=({"type": "HBOS", "params": {"n_bins": 4}},),
                 datasets=(tiny_dataset,), seeds=(0,), cache_dir=tmp_path,
                 **FAST)
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_unknown_spec_type_raises(self, tiny_dataset):
        with pytest.raises(KeyError):
            run_grid(detectors=("NotAModel",), datasets=(tiny_dataset,),
                     seeds=(0,), **FAST)


class TestSharedNeighborKernel:
    def test_one_knn_build_per_dataset_fingerprint(self):
        """The acceptance bar for the shared kernel backend: a grid over
        the 5 neighbor-based detectors builds each dataset's k-NN graph
        exactly once (every cell standardizes the same dataset to the
        same bytes, so later cells hit the process-wide cache)."""
        import repro.kernels as kernels

        datasets = [
            make_anomaly_dataset("local", n_inliers=120, n_anomalies=15,
                                 n_features=5, random_state=seed)
            for seed in (0, 1)
        ]
        kernels.clear_cache()
        runner = ExperimentRunner(n_jobs=1)
        results = runner.run_grid(
            detectors=("KNN", "LOF", "COF", "SOD", "ABOD"),
            datasets=datasets, seeds=(0,), **FAST)
        assert len(results) == 10
        stats = kernels.cache_stats()
        assert stats["graph_builds"] == len(datasets)
        assert stats["builds"] == len(datasets)
        assert stats["hits"] >= 4 * len(datasets)
        kernels.clear_cache()

    def test_num_threads_does_not_change_results(self, tiny_dataset):
        from repro.kernels import set_num_threads

        try:
            a = run_grid(detectors=("KNN",), datasets=(tiny_dataset,),
                         seeds=(0,), num_threads=1, **FAST)
            b = run_grid(detectors=("KNN",), datasets=(tiny_dataset,),
                         seeds=(0,), num_threads=4, **FAST)
        finally:
            set_num_threads(None)
        assert a[0] == b[0]

    def test_num_threads_validation(self):
        with pytest.raises(ValueError):
            ExperimentRunner(num_threads=0)

    def test_worker_threads_split_cooperatively(self, monkeypatch):
        """Grid workers get the parent thread budget split across the
        job budget (n_jobs=4 on 8 cores -> 2 kernel threads each)
        instead of oversubscribing n_jobs x cpu_count GEMM threads; an
        explicit per-worker count wins."""
        import os

        from repro.runtime import Executor, RunContext, resolve_num_threads

        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        probe = lambda _: resolve_num_threads()  # noqa: E731
        items = list(range(4))
        ex = Executor("thread", max_workers=4)
        assert ex.map(probe, items) == [2, 2, 2, 2]
        # Serial execution never runs tasks concurrently, so each task
        # keeps the full budget — splitting would just idle cores.
        assert Executor("serial", max_workers=4).map(probe, items) \
            == [8, 8, 8, 8]
        with RunContext(num_threads=3):
            assert ex.map(probe, items) == [1, 1, 1, 1]  # 3 // 4 -> floor 1
        explicit = Executor("serial", max_workers=4, worker_threads=5)
        assert explicit.map(probe, items) == [5, 5, 5, 5]

    def test_num_threads_restored_after_grid(self, tiny_dataset):
        """The grid-scoped thread count must not leak into the caller's
        process-global kernel configuration."""
        from repro.kernels.threading import (get_configured_num_threads,
                                             set_num_threads)

        try:
            set_num_threads(2)
            run_grid(detectors=("KNN",), datasets=(tiny_dataset,),
                     seeds=(0,), num_threads=1, **FAST)
            assert get_configured_num_threads() == 2
            set_num_threads(None)
            run_grid(detectors=("KNN",), datasets=(tiny_dataset,),
                     seeds=(0,), num_threads=3, **FAST)
            assert get_configured_num_threads() is None
        finally:
            set_num_threads(None)
