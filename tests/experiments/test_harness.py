"""Tests for the experiment harness (small, fast configurations)."""

import pytest

from repro.data.synthetic import make_anomaly_dataset
from repro.experiments.harness import (
    DEFAULT_BENCH_DATASETS,
    run_grid,
    run_single,
    run_variant,
)

FAST = {"n_iterations": 2,
        "booster_kwargs": {"hidden": 16, "epochs_per_iteration": 2}}


@pytest.fixture(scope="module")
def tiny_dataset():
    return make_anomaly_dataset("global", n_inliers=130, n_anomalies=14,
                                n_features=4, random_state=2)


class TestRunSingle:
    def test_result_fields(self, tiny_dataset):
        result = run_single(tiny_dataset, "IForest", seed=0, **FAST)
        assert result.detector == "IForest"
        assert result.dataset == tiny_dataset.name
        assert 0.0 <= result.source_auc <= 1.0
        assert 0.0 <= result.booster_ap <= 1.0
        assert len(result.iteration_auc) == 2

    def test_improvement_properties(self, tiny_dataset):
        result = run_single(tiny_dataset, "HBOS", seed=0, **FAST)
        assert result.auc_improvement == pytest.approx(
            result.booster_auc - result.source_auc)
        assert result.ap_improvement == pytest.approx(
            result.booster_ap - result.source_ap)

    def test_seed_changes_result(self, tiny_dataset):
        a = run_single(tiny_dataset, "IForest", seed=0, **FAST)
        b = run_single(tiny_dataset, "IForest", seed=1, **FAST)
        assert a.booster_auc != b.booster_auc

    def test_history_disabled_skips_iterations(self, tiny_dataset):
        result = run_single(
            tiny_dataset, "IForest", seed=0, n_iterations=2,
            booster_kwargs={"hidden": 16, "epochs_per_iteration": 2,
                            "record_history": False})
        assert result.iteration_auc == []


class TestRunVariant:
    @pytest.mark.parametrize("variant", ["naive", "self"])
    def test_variant_metrics(self, tiny_dataset, variant):
        out = run_variant(tiny_dataset, "HBOS", variant, n_iterations=2,
                          seed=0,
                          variant_kwargs={"hidden": 16,
                                          "epochs_per_iteration": 2})
        assert out["variant"] == variant
        assert 0.0 <= out["auc"] <= 1.0
        assert 0.0 <= out["source_ap"] <= 1.0


class TestRunGrid:
    def test_grid_size(self, tiny_dataset):
        results = run_grid(detectors=("IForest", "HBOS"),
                           datasets=(tiny_dataset,), seeds=(0, 1), **FAST)
        assert len(results) == 4

    def test_named_datasets_loaded(self):
        results = run_grid(detectors=("HBOS",), datasets=("glass",),
                           seeds=(0,), max_samples=150, max_features=6,
                           **FAST)
        assert results[0].dataset == "glass"

    def test_progress_callback(self, tiny_dataset):
        messages = []
        run_grid(detectors=("HBOS",), datasets=(tiny_dataset,), seeds=(0,),
                 progress=messages.append, **FAST)
        assert len(messages) == 1
        assert "HBOS" in messages[0]

    def test_default_bench_datasets_are_registered(self):
        from repro.data.registry import DATASET_NAMES
        for name in DEFAULT_BENCH_DATASETS:
            assert name in DATASET_NAMES
