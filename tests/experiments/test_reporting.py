"""Tests for plain-text table/figure rendering."""

from repro.experiments.reporting import (
    format_boxplots,
    format_fig2,
    format_fig5,
    format_fig7,
    format_table,
    format_table4,
    format_table6,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["A", "Bee"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Bee" in lines[1]
        # All data rows share the header's width structure.
        assert len(lines[3]) == len(lines[1])

    def test_empty_rows(self):
        text = format_table(["X"], [])
        assert "X" in text


class TestFormatters:
    def test_table4(self):
        summary = {"IForest": {m: {"original": 0.7, "booster": 0.72,
                                   "improvement": 0.02,
                                   "improvement_pct": 2.9, "effects": 3,
                                   "n_datasets": 4, "p_value": 0.01}
                               for m in ("auc", "ap")}}
        text = format_table4(summary)
        assert "[Table IV]" in text
        assert "IForest" in text
        assert "3/4" in text

    def test_table6(self):
        table = {s: {"HBOS": {"auc": 0.7, "ap": 0.4}}
                 for s in ("origin", "uadb")}
        text = format_table6(table)
        assert "origin" in text and "uadb" in text
        assert "Average" in text

    def test_fig2(self):
        info = {"gaps": {"a": -0.5, "b": 0.2}, "n_negative": 1,
                "n_total": 2, "fraction_negative": 0.5}
        text = format_fig2(info)
        assert "anomalies have higher variance on 1/2" in text

    def test_fig5(self):
        records = [{"anomaly_type": "clustered", "model": "IForest",
                    "teacher_errors": 44, "booster_errors": 6,
                    "correction_rate": 0.86, "teacher_auc": 0.8,
                    "booster_auc": 0.95}]
        text = format_fig5(records)
        assert "clustered" in text
        assert "86%" in text

    def test_fig7(self):
        curves = {"LOF": {"source_auc": 0.6,
                          "per_iteration_auc": [0.61, 0.63]}}
        text = format_fig7(curves)
        assert "it1" in text and "it2" in text

    def test_boxplots(self):
        stats = {"KNN": {m: {w: {"min": 0.1, "q1": 0.2, "median": 0.3,
                                 "q3": 0.4, "max": 0.5, "mean": 0.3}
                             for w in ("source", "booster")}
                         for m in ("auc", "ap")}}
        text = format_boxplots(stats)
        assert "KNN" in text and "booster" in text
