"""Tests for table reproduction (aggregation, Table IV/V/VI shapes)."""

import numpy as np
import pytest

from repro.data.synthetic import make_anomaly_dataset
from repro.experiments.harness import run_grid
from repro.experiments.tables import (
    aggregate_results,
    boxplot_stats,
    table4_summary,
    table5_per_iteration,
    table6_variants,
)

FAST = {"n_iterations": 2,
        "booster_kwargs": {"hidden": 16, "epochs_per_iteration": 2}}


@pytest.fixture(scope="module")
def grid_results():
    datasets = [
        make_anomaly_dataset("global", n_inliers=120, n_anomalies=14,
                             n_features=4, random_state=s)
        for s in (1, 2)
    ]
    datasets[0].name = "synth-a"
    datasets[1].name = "synth-b"
    return run_grid(detectors=("IForest", "HBOS"), datasets=datasets,
                    seeds=(0, 1), **FAST)


class TestAggregate:
    def test_nesting(self, grid_results):
        nested = aggregate_results(grid_results)
        assert set(nested) == {"IForest", "HBOS"}
        assert set(nested["IForest"]) == {"synth-a", "synth-b"}

    def test_seed_average(self, grid_results):
        nested = aggregate_results(grid_results)
        cell = nested["IForest"]["synth-a"]
        manual = np.mean([r.booster_auc for r in grid_results
                          if r.detector == "IForest"
                          and r.dataset == "synth-a"])
        assert cell["booster_auc"] == pytest.approx(manual)


class TestTable4:
    def test_structure(self, grid_results):
        summary = table4_summary(grid_results)
        for detector, row in summary.items():
            for metric in ("auc", "ap"):
                m = row[metric]
                assert set(m) == {"original", "booster", "improvement",
                                  "improvement_pct", "effects", "n_datasets",
                                  "p_value"}
                assert 0 <= m["effects"] <= m["n_datasets"] == 2
                assert 0.0 <= m["p_value"] <= 1.0

    def test_improvement_consistency(self, grid_results):
        summary = table4_summary(grid_results)
        m = summary["IForest"]["auc"]
        assert m["improvement"] == pytest.approx(
            m["booster"] - m["original"])


class TestTable5:
    def test_structure(self):
        table = table5_per_iteration(
            detectors=("HBOS",), datasets=("glass",), n_iterations=4,
            seeds=(0,), max_samples=150, max_features=6)
        cell = table["HBOS"]["glass"]
        for metric in ("auc", "ap"):
            assert "teacher" in cell[metric]
            assert "iter_2" in cell[metric]["iterations"]
            assert "iter_4" in cell[metric]["iterations"]
            assert cell[metric]["improvement"] == pytest.approx(
                cell[metric]["final"] - cell[metric]["teacher"])


class TestTable6:
    def test_structure(self):
        table = table6_variants(
            detectors=("HBOS",), datasets=("glass",), seeds=(0,),
            n_iterations=2, max_samples=150, max_features=6)
        assert set(table) == {"origin", "naive", "discrepancy", "self",
                              "discrepancy_star", "uadb"}
        for strategy in table.values():
            assert 0.0 <= strategy["HBOS"]["auc"] <= 1.0
            assert 0.0 <= strategy["HBOS"]["ap"] <= 1.0


class TestBoxplots:
    def test_five_number_summaries(self, grid_results):
        stats = boxplot_stats(grid_results)
        s = stats["IForest"]["auc"]["source"]
        assert s["min"] <= s["q1"] <= s["median"] <= s["q3"] <= s["max"]
