"""Tests for figure reproduction (small, fast configurations)."""

import numpy as np
import pytest

from repro.data.synthetic import make_anomaly_dataset
from repro.experiments.figures import (
    FIG5_MODEL_PAIRS,
    fig1_instance_variance,
    fig2_variance_gap,
    fig4_case_trajectories,
    fig5_synthetic_types,
    fig6_no_gap_improvement,
    fig7_iteration_curves,
    fig9_ranking_development,
    imitation_variance,
)
from repro.experiments.harness import run_grid

FAST = {"n_iterations": 2,
        "booster_kwargs": {"hidden": 16, "epochs_per_iteration": 2}}


class TestImitationVariance:
    def test_output_fields(self):
        ds = make_anomaly_dataset("local", n_inliers=130, n_anomalies=14,
                                  n_features=4, random_state=0)
        out = imitation_variance(ds, seed=0, epochs=2)
        assert out["variance"].shape == (144,)
        assert np.all(out["variance"] >= 0)
        assert set(np.unique(out["y"])) == {0, 1}


class TestFig1:
    def test_structure(self):
        out = fig1_instance_variance(dataset_names=("glass",),
                                     max_samples=150, max_features=6)
        cell = out["glass"]
        assert cell["variance_normal"].size > 0
        assert cell["variance_abnormal"].size > 0
        assert cell["mean_normal"] >= 0


class TestFig2:
    def test_gap_summary(self):
        out = fig2_variance_gap(dataset_names=("glass", "wine"),
                                max_samples=150, max_features=6)
        assert out["n_total"] == 2
        assert 0 <= out["n_negative"] <= 2
        assert set(out["gaps"]) == {"glass", "wine"}


class TestFig4:
    def test_trajectories(self):
        ds = make_anomaly_dataset("local", n_inliers=180, n_anomalies=20,
                                  random_state=1)
        out = fig4_case_trajectories(ds, detector="IForest", n_iterations=2,
                                     seed=0)
        assert out["cases"], "at least one case should be present"
        for case, info in out["cases"].items():
            assert case in ("TP", "TN", "FP", "FN")
            assert len(info["uadb"]) == 2
            assert len(info["static"]) == 2
            assert 0.0 <= info["initial"] <= 1.0


class TestFig5:
    def test_records(self):
        records = fig5_synthetic_types(n_iterations=2, seed=0,
                                       n_inliers=130, n_anomalies=14)
        assert len(records) == sum(len(v) for v in FIG5_MODEL_PAIRS.values())
        for r in records:
            assert r["anomaly_type"] in FIG5_MODEL_PAIRS
            assert r["teacher_errors"] >= 0
            assert 0.0 <= r["correction_rate"] <= 1.0


class TestFig6AndFig7:
    @pytest.fixture(scope="class")
    def results(self):
        return run_grid(detectors=("HBOS",), datasets=("glass", "wine"),
                        seeds=(0,), max_samples=150, max_features=6, **FAST)

    def test_fig6(self, results):
        gap_info = {"gaps": {"glass": 0.1, "wine": -0.2}}
        out = fig6_no_gap_improvement(results, gap_info)
        assert out["selected_datasets"] == ["glass"]
        assert "HBOS" in out["per_detector"]
        assert out["per_detector"]["HBOS"]["n_datasets"] == 1

    def test_fig7(self, results):
        curves = fig7_iteration_curves(results)
        assert "HBOS" in curves
        assert len(curves["HBOS"]["per_iteration_auc"]) == 2


class TestFig9:
    def test_structure(self):
        out = fig9_ranking_development(dataset_names=("glass",),
                                       detector="HBOS", n_iterations=2,
                                       max_samples=150, max_features=6)
        cell = out["glass"]
        assert len(cell["auc"]) == 2
        assert set(cell["mean_ranks"]) == {"TP", "TN", "FP", "FN"}
        for ranks in cell["mean_ranks"].values():
            assert len(ranks) == 2
