"""Tests for repro.serving.fleet.sharding — the consistent-hash ring.

The contract under test is the one the fleet's exactness story leans on:
assignment is a pure, process-independent function of (worker set, key),
and membership changes move only the changed worker's keys.
"""

import pytest

from repro.runtime import Executor
from repro.serving.fleet.sharding import HashRing, hash_point

KEYS = [f"model-{i:03d}" for i in range(200)]
WORKERS4 = ["w0", "w1", "w2", "w3"]


def _assign_in_subprocess(payload):
    """Module-level so the process backend can pickle it by reference."""
    worker_ids, keys = payload
    ring = HashRing(worker_ids)
    return {key: ring.assign(key) for key in keys}


class TestHashPoint:
    def test_deterministic_and_64_bit(self):
        assert hash_point("iforest") == hash_point("iforest")
        assert 0 <= hash_point("iforest") < 2**64

    def test_distinct_tokens_distinct_points(self):
        points = {hash_point(k) for k in KEYS}
        assert len(points) == len(KEYS)


class TestRingConstruction:
    def test_empty_workers_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            HashRing([])

    def test_duplicate_workers_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["w0", "w1", "w0"])

    def test_bad_replicas_rejected(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(["w0"], replicas=0)

    def test_worker_order_is_irrelevant(self):
        forward = HashRing(WORKERS4)
        backward = HashRing(list(reversed(WORKERS4)))
        for key in KEYS:
            assert forward.assign(key) == backward.assign(key)


class TestAssignmentStability:
    def test_single_worker_owns_everything(self):
        ring = HashRing(["solo"])
        assert all(ring.assign(k) == "solo" for k in KEYS)

    def test_adding_a_worker_moves_keys_only_to_it(self):
        before = HashRing(WORKERS4)
        after = HashRing(WORKERS4 + ["w4"])
        moved = [k for k in KEYS if before.assign(k) != after.assign(k)]
        # Consistent hashing: every moved key lands on the newcomer...
        assert all(after.assign(k) == "w4" for k in moved)
        # ...and roughly 1/(N+1) of the keyspace moves, not all of it.
        assert len(moved) <= len(KEYS) // 2

    def test_removing_a_worker_moves_only_its_keys(self):
        before = HashRing(WORKERS4)
        after = HashRing(["w0", "w1", "w3"])
        for key in KEYS:
            if before.assign(key) != "w2":
                assert after.assign(key) == before.assign(key)

    def test_exclude_walk_equals_ring_without_worker(self):
        # Routing around a dead worker must match the ring that never
        # contained it — that is what makes recovery re-routes stable.
        full = HashRing(WORKERS4)
        without = HashRing(["w0", "w1", "w3"])
        for key in KEYS:
            assert full.assign(key, exclude={"w2"}) == without.assign(key)

    def test_all_excluded_raises(self):
        ring = HashRing(WORKERS4)
        with pytest.raises(LookupError):
            ring.assign("anything", exclude=set(WORKERS4))


class TestShardMap:
    def test_partition_is_exact(self):
        shards = HashRing(WORKERS4).shard_map(KEYS)
        assert sorted(shards) == WORKERS4  # empty shards still listed
        flat = [k for shard in shards.values() for k in shard]
        assert sorted(flat) == sorted(KEYS)
        assert len(flat) == len(set(flat))

    def test_shards_are_sorted(self):
        shards = HashRing(WORKERS4).shard_map(KEYS)
        for shard in shards.values():
            assert shard == sorted(shard)

    def test_replicas_spread_the_load(self):
        shards = HashRing(WORKERS4, replicas=64).shard_map(KEYS)
        # With 64 virtual nodes no worker should own the lion's share.
        assert max(len(s) for s in shards.values()) <= 0.6 * len(KEYS)

    def test_exclude_reroutes_only_dead_shard(self):
        ring = HashRing(WORKERS4)
        healthy = ring.shard_map(KEYS)
        rerouted = ring.shard_map(KEYS, exclude={"w1"})
        assert "w1" not in rerouted
        for wid in ("w0", "w2", "w3"):
            assert set(healthy[wid]) <= set(rerouted[wid])


class TestCrossProcessDeterminism:
    def test_assignments_identical_in_child_processes(self):
        parent = _assign_in_subprocess((WORKERS4, KEYS))
        child_maps = Executor(backend="process", max_workers=2).map(
            _assign_in_subprocess, [(WORKERS4, KEYS)] * 2)
        for child in child_maps:
            assert child == parent
