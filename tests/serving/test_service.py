"""Tests for the micro-batched scoring service."""

import threading
import time

import numpy as np
import pytest

from repro.detectors.registry import make_detector
from repro.serving import ModelStore, ScoringService, save_model
from repro.serving.service import _score_fn


@pytest.fixture(scope="module")
def store(small_dataset, tmp_path_factory):
    """Two fitted detectors saved into a multi-model store."""
    X, _ = small_dataset
    root = tmp_path_factory.mktemp("store")
    for model_id, name in (("hbos", "HBOS"), ("iforest", "IForest")):
        save_model(make_detector(name, random_state=0).fit(X),
                   root / model_id, data=X)
    return ModelStore(root)


@pytest.fixture(scope="module")
def X(small_dataset):
    return small_dataset[0]


class TestScoring:
    def test_matches_direct_model_call(self, store, X):
        with ScoringService(store) as service:
            scores = service.score("hbos", X)
            expected = store.load("hbos").score_samples(X)
            assert np.array_equal(scores, expected)

    def test_single_row_and_1d_input(self, store, X):
        with ScoringService(store) as service:
            row_scores = service.score("hbos", X[0])
            assert row_scores.shape == (1,)

    def test_unknown_model_raises_in_caller(self, store, X):
        with ScoringService(store) as service:
            with pytest.raises(KeyError):
                service.score("ghost", X)

    def test_bad_feature_count_raises_in_caller(self, store, X):
        with ScoringService(store) as service:
            with pytest.raises(ValueError):
                service.score("hbos", np.zeros((3, X.shape[1] + 2)))

    def test_empty_input_rejected(self, store):
        with ScoringService(store) as service:
            with pytest.raises(ValueError):
                service.score("hbos", np.zeros((0, 4)))

    def test_closed_service_rejects(self, store, X):
        service = ScoringService(store)
        service.close()
        with pytest.raises(RuntimeError):
            service.score("hbos", X)

    def test_naive_mode_scores_identically(self, store, X):
        with ScoringService(store, micro_batch=False) as service:
            expected = store.load("hbos").score_samples(X)
            assert np.array_equal(service.score("hbos", X), expected)
            assert service.stats()["batches"] == 1

    def test_stats_report_the_runtime_context(self, store, X):
        from repro.runtime import RunContext

        with RunContext(num_threads=2):
            with ScoringService(store) as service:
                service.score("hbos", X)
                runtime = service.stats()["runtime"]
        assert runtime["context"]["num_threads"] == 2
        assert runtime["resolved"]["num_threads"] == 2

    def test_scorer_thread_inherits_the_creating_context(self, store, X):
        """The micro-batch worker is a runtime worker: kernel work in
        coalesced predicts runs under the service owner's context."""
        from repro.runtime import RunContext, resolve_num_threads

        probe = []
        with RunContext(num_threads=3):
            service = ScoringService(store)
            try:
                # Piggyback on the scorer thread via a score call, then
                # read what the scorer resolved from its own thread.
                original_loop_get = service.get_model

                def spying_get(model_id):
                    probe.append(resolve_num_threads())
                    return original_loop_get(model_id)

                service.get_model = spying_get
                service.score("hbos", X)
            finally:
                service.close()
        assert probe and probe[0] == 3


class TestConcurrency:
    def test_concurrent_requests_correct(self, store, X):
        expected = {model_id: store.load(model_id).score_samples(X)
                    for model_id in ("hbos", "iforest")}
        failures = []

        def worker(model_id, lo, hi):
            scores = service.score(model_id, X[lo:hi])
            if not np.allclose(scores, expected[model_id][lo:hi],
                               rtol=0, atol=1e-9):
                failures.append((model_id, lo, hi))

        with ScoringService(store) as service:
            threads = []
            for i in range(24):
                model_id = "hbos" if i % 2 else "iforest"
                lo = (7 * i) % (X.shape[0] - 10)
                threads.append(threading.Thread(
                    target=worker, args=(model_id, lo, lo + 9)))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = service.stats()
        assert not failures
        assert stats["requests"] == 24

    def test_queued_requests_coalesce(self, store, X):
        service = ScoringService(store)
        try:
            # Stall the scorer on its first batch so the rest of the burst
            # queues up behind it and must be answered in coalesced calls.
            original = service.get_model
            release = threading.Event()

            def slow_get_model(model_id):
                release.wait(timeout=5.0)
                return original(model_id)

            service.get_model = slow_get_model
            threads = [threading.Thread(
                target=service.score, args=("hbos", X[i:i + 2]))
                for i in range(12)]
            for t in threads:
                t.start()
            time.sleep(0.2)  # let every request reach the queue
            release.set()
            for t in threads:
                t.join()
            stats = service.stats()
        finally:
            service.close()
        assert stats["requests"] == 12
        assert stats["batches"] < 12
        assert stats["max_batch_requests"] > 1

    def test_batched_scores_match_solo_scores(self, store, X):
        """Coalescing must not change what a request gets back."""
        with ScoringService(store) as service:
            solo = service.score("hbos", X[:5])
        service = ScoringService(store)
        try:
            original = service.get_model
            release = threading.Event()

            def slow_get_model(model_id):
                release.wait(timeout=5.0)
                return original(model_id)

            service.get_model = slow_get_model
            results = {}

            def worker(key, lo, hi):
                results[key] = service.score("hbos", X[lo:hi])

            threads = [threading.Thread(target=worker, args=(i, i, i + 5))
                       for i in range(8)]
            for t in threads:
                t.start()
            time.sleep(0.2)
            release.set()
            for t in threads:
                t.join()
        finally:
            service.close()
        assert np.allclose(results[0], solo, rtol=0, atol=1e-9)


class TestModelCache:
    def test_lru_eviction(self, store, X):
        with ScoringService(store, cache_size=1) as service:
            service.score("hbos", X[:3])
            service.score("iforest", X[:3])
            service.score("hbos", X[:3])
            stats = service.stats()
            assert len(service._models) == 1
            assert stats["cache_misses"] == 3  # hbos evicted and reloaded

    def test_cache_hits(self, store, X):
        with ScoringService(store, cache_size=4) as service:
            for _ in range(3):
                service.score("hbos", X[:3])
            stats = service.stats()
            assert stats["cache_misses"] == 1
            assert stats["cache_hits"] == 2

    def test_models_lists_store_ids(self, store):
        with ScoringService(store) as service:
            assert service.models() == ["hbos", "iforest"]


class TestScoreFn:
    def test_prefers_score_samples(self, store):
        model = store.load("hbos")
        assert _score_fn(model) == model.score_samples

    def test_rejects_unscorable(self):
        with pytest.raises(TypeError):
            _score_fn(object())

    def test_invalid_params(self, store):
        with pytest.raises(ValueError):
            ScoringService(store, cache_size=0)
        with pytest.raises(ValueError):
            ScoringService(store, max_batch_rows=0)


class TestRequestIsolation:
    def test_nonfinite_request_rejected_before_coalescing(self, store, X):
        """A NaN request must fail alone, never inside a shared batch."""
        bad = X[:3].copy()
        bad[1, 0] = np.nan
        with ScoringService(store) as service:
            with pytest.raises(ValueError, match="NaN"):
                service.score("hbos", bad)
            # The service stays healthy for everyone else.
            assert np.array_equal(service.score("hbos", X[:3]),
                                  store.load("hbos").score_samples(X[:3]))


class TestSubmitCallback:
    """The non-blocking submit() surface the fleet worker drives."""

    def test_callback_receives_scores(self, store, X):
        done = threading.Event()
        received = {}

        def deliver(scores, error):
            received["scores"], received["error"] = scores, error
            done.set()

        with ScoringService(store) as service:
            service.submit("hbos", X[:5], deliver)
            assert done.wait(timeout=10.0)
        assert received["error"] is None
        assert np.array_equal(received["scores"],
                              store.load("hbos").score_samples(X[:5]))

    def test_callback_receives_worker_side_error(self, store, X):
        done = threading.Event()
        received = {}

        def deliver(scores, error):
            received["scores"], received["error"] = scores, error
            done.set()

        with ScoringService(store) as service:
            service.submit("ghost", X[:5], deliver)
            assert done.wait(timeout=10.0)
        assert received["scores"] is None
        assert isinstance(received["error"], KeyError)

    def test_validation_errors_raise_synchronously(self, store):
        fired = []
        with ScoringService(store) as service:
            with pytest.raises(ValueError):
                service.submit("hbos", np.zeros((0, 4)), fired.append)
        assert fired == []

    def test_naive_mode_invokes_callback_inline(self, store, X):
        received = {}

        def deliver(scores, error):
            received["scores"], received["error"] = scores, error

        with ScoringService(store, micro_batch=False) as service:
            service.submit("hbos", X[:5], deliver)
            # No scorer thread in naive mode: delivery already happened.
            assert received["error"] is None
            assert np.array_equal(
                received["scores"],
                store.load("hbos").score_samples(X[:5]))

    def test_submitted_scores_match_blocking_score(self, store, X):
        done = threading.Event()
        received = {}

        def deliver(scores, error):
            received["scores"] = scores
            done.set()

        with ScoringService(store) as service:
            expected = service.score("hbos", X[:7])
            service.submit("hbos", X[:7], deliver)
            assert done.wait(timeout=10.0)
        assert np.array_equal(received["scores"], expected)


class TestGracefulClose:
    def test_close_drains_queued_requests(self, store, X):
        """Requests accepted before close() must complete, not vanish."""
        service = ScoringService(store)
        results = []
        lock = threading.Lock()

        def deliver(scores, error):
            with lock:
                results.append((scores, error))

        for i in range(8):
            service.submit("hbos" if i % 2 else "iforest",
                           X[i:i + 3], deliver)
        service.close()
        assert len(results) == 8
        assert all(error is None for _, error in results)
        assert all(scores.shape == (3,) for scores, _ in results)

    def test_close_joins_scorer_thread(self, store):
        service = ScoringService(store)
        scorer = service._scorer
        assert scorer.is_alive()
        service.close()
        assert not scorer.is_alive()

    def test_close_is_idempotent(self, store):
        service = ScoringService(store)
        service.close()
        service.close()
        assert service.closed

    def test_close_reports_drain_outcome(self, store, X):
        """close() returns True once the queue drained and the scorer
        joined — the signal fleet workers forward in their bye message."""
        service = ScoringService(store)
        assert service.close() is True
        # A second close on an already-drained service is still True.
        assert service.close() is True

    def test_stats_expose_draining_state(self, store, X):
        service = ScoringService(store)
        stats = service.stats()
        assert stats["closed"] is False
        assert stats["draining"] is False
        service.close()
        stats = service.stats()
        assert stats["closed"] is True
        assert stats["draining"] is False  # drained: scorer has exited

    def test_queue_depth_in_stats(self, store, X):
        with ScoringService(store) as service:
            service.score("hbos", X[:3])
            assert service.stats()["queue_depth"] == 0
