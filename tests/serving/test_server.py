"""Tests for the JSON HTTP scoring server."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.detectors.registry import make_detector
from repro.serving import build_server, save_model, serve
from repro.serving.server import shutdown_all


@pytest.fixture(scope="module")
def store_root(small_dataset, tmp_path_factory):
    X, _ = small_dataset
    root = tmp_path_factory.mktemp("server-store")
    for model_id, name in (("hbos", "HBOS"), ("iforest", "IForest")):
        save_model(make_detector(name, random_state=0).fit(X),
                   root / model_id, data=X)
    return root


@pytest.fixture(scope="module")
def server(store_root):
    server = build_server(store_root, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


def request_json(server, path, payload=None):
    port = server.server_address[1]
    url = f"http://127.0.0.1:{port}{path}"
    if payload is None:
        response = urllib.request.urlopen(url, timeout=10)
    else:
        req = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        response = urllib.request.urlopen(req, timeout=10)
    return response.status, json.load(response)


def request_error(server, path, body: bytes):
    port = server.server_address[1]
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body,
        headers={"Content-Type": "application/json"})
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(req, timeout=10)
    return info.value.code, json.load(info.value)


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = request_json(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"] == repro.__version__
        assert payload["models"] == ["hbos", "iforest"]

    def test_models_listing(self, server):
        status, payload = request_json(server, "/models")
        assert status == 200
        listed = {m["id"]: m for m in payload["models"]}
        assert set(listed) == {"hbos", "iforest"}
        assert listed["hbos"]["kind"] == "HBOS"
        assert listed["hbos"]["repro_version"] == repro.__version__
        assert listed["hbos"]["data_fingerprint"]["sha256"]

    def test_score_matches_in_process(self, server, small_dataset,
                                      store_root):
        from repro.serving import load_model

        X, _ = small_dataset
        status, payload = request_json(
            server, "/score", {"model_id": "hbos", "X": X[:20].tolist()})
        assert status == 200
        assert payload["model_id"] == "hbos"
        assert payload["n"] == 20
        expected = load_model(store_root / "hbos").score_samples(X[:20])
        assert np.array_equal(np.array(payload["scores"]), expected)

    def test_concurrent_scoring_is_consistent(self, server, small_dataset):
        X, _ = small_dataset
        results = {}

        def hit(i):
            _, payload = request_json(
                server, "/score",
                {"model_id": "iforest", "X": X[i:i + 5].tolist()})
            results[i] = payload["scores"]

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 10
        assert all(len(scores) == 5 for scores in results.values())


class TestErrors:
    def test_unknown_path(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            request_json(server, "/nope")
        assert info.value.code == 404

    def test_unknown_model(self, server):
        code, payload = request_error(
            server, "/score", json.dumps({"model_id": "ghost",
                                          "X": [[0.0]]}).encode())
        assert code == 404
        assert "ghost" in payload["error"]

    def test_model_id_required_with_multiple_models(self, server):
        code, payload = request_error(
            server, "/score", json.dumps({"X": [[0.0]]}).encode())
        assert code == 400
        assert "model_id" in payload["error"]

    def test_invalid_json(self, server):
        code, payload = request_error(server, "/score", b"{broken")
        assert code == 400
        assert "invalid JSON" in payload["error"]

    def test_missing_x(self, server):
        code, payload = request_error(server, "/score",
                                      json.dumps({"a": 1}).encode())
        assert code == 400

    def test_non_numeric_x(self, server):
        code, payload = request_error(
            server, "/score",
            json.dumps({"model_id": "hbos",
                        "X": [["a", "b"]]}).encode())
        assert code == 400

    def test_wrong_feature_count(self, server):
        code, payload = request_error(
            server, "/score",
            json.dumps({"model_id": "hbos", "X": [[0.0, 1.0]]}).encode())
        assert code == 400
        assert "features" in payload["error"]


class TestSingleModelStore:
    def test_model_id_defaults_for_single_artifact(self, small_dataset,
                                                   tmp_path):
        X, _ = small_dataset
        path = save_model(make_detector("HBOS").fit(X), tmp_path / "solo")
        server = build_server(path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, payload = request_json(server, "/score",
                                           {"X": X[:3].tolist()})
            assert status == 200
            assert payload["model_id"] == "solo"
            assert payload["n"] == 3
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)


class TestServeLifecycle:
    def test_serve_blocks_until_shutdown_all(self, store_root):
        started = threading.Event()
        handles = {}

        def ready(server):
            handles["server"] = server
            started.set()

        thread = threading.Thread(
            target=serve, args=(store_root,),
            kwargs={"port": 0, "ready": ready}, daemon=True)
        thread.start()
        assert started.wait(timeout=10.0)
        status, payload = request_json(handles["server"], "/healthz")
        assert status == 200
        assert shutdown_all() >= 1
        thread.join(timeout=10.0)
        assert not thread.is_alive()


class TestStatsEndpoint:
    def test_stats_reports_service_counters(self, server, small_dataset):
        X, _ = small_dataset
        request_json(server, "/score",
                     {"model_id": "hbos", "X": X[:5].tolist()})
        status, payload = request_json(server, "/stats")
        assert status == 200
        assert payload["requests"] >= 1
        assert "cache_hits" in payload
        assert "queue_depth" in payload


class TestStructuredErrorGuarantee:
    """No route may ever answer with an HTML traceback page."""

    def test_unexpected_fault_becomes_json_500(self, server, small_dataset,
                                               monkeypatch):
        X, _ = small_dataset

        def boom(model_id, X):
            raise ZeroDivisionError("synthetic fault")

        monkeypatch.setattr(server.service, "score", boom)
        code, payload = request_error(
            server, "/score",
            json.dumps({"model_id": "hbos", "X": X[:2].tolist()}).encode())
        assert code == 500
        assert "ZeroDivisionError" in payload["error"]
        assert "synthetic fault" in payload["error"]

    def test_stats_fault_becomes_json_500(self, server, monkeypatch):
        monkeypatch.setattr(server.service, "stats",
                            lambda: 1 / 0)
        with pytest.raises(urllib.error.HTTPError) as info:
            request_json(server, "/stats")
        assert info.value.code == 500
        assert "error" in json.load(info.value)

    def test_overload_becomes_503_with_retry_after(self, server,
                                                   small_dataset,
                                                   monkeypatch):
        from repro.serving import FleetOverloadedError

        X, _ = small_dataset

        def reject(model_id, X):
            raise FleetOverloadedError("queue full", retry_after=0.25)

        monkeypatch.setattr(server.service, "score", reject)
        port = server.server_address[1]
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/score",
            data=json.dumps({"model_id": "hbos",
                             "X": X[:2].tolist()}).encode(),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10)
        assert info.value.code == 503
        assert info.value.headers["Retry-After"] == "0.25"
        assert "queue full" in json.load(info.value)["error"]


class TestFleetMode:
    @pytest.fixture(scope="class")
    def fleet_server(self, store_root):
        server = build_server(store_root, port=0, workers=2,
                              heartbeat_interval=0.05,
                              monitor_interval=0.05,
                              start_timeout=120.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)

    def test_healthz_includes_fleet_summary(self, fleet_server):
        status, payload = request_json(fleet_server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["fleet"]["n_workers"] == 2
        assert payload["fleet"]["healthy_workers"] == 2

    def test_healthz_degraded_still_answers_200(self, fleet_server):
        """A degraded fleet (ring successors covering) keeps serving —
        the load balancer must NOT eject it, so /healthz stays 200."""
        handle = fleet_server.service._supervisor.handles["w0"]
        handle.state = "starting"
        try:
            status, payload = request_json(fleet_server, "/healthz")
        finally:
            handle.state = "healthy"
        assert status == 200
        assert payload["status"] == "degraded"
        assert payload["fleet"]["restarting_workers"] == ["w0"]

    def test_healthz_failing_answers_503(self, fleet_server):
        handles = fleet_server.service._supervisor.handles
        old = {wid: h.state for wid, h in handles.items()}
        for handle in handles.values():
            handle.state = "crashed"
        try:
            port = fleet_server.server_address[1]
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=10)
            payload = json.load(info.value)
        finally:
            for wid, handle in handles.items():
                handle.state = old[wid]
        assert info.value.code == 503
        assert payload["status"] == "failing"

    def test_scores_match_in_process_service(self, fleet_server,
                                             small_dataset, store_root):
        from repro.serving import load_model

        X, _ = small_dataset
        for model_id in ("hbos", "iforest"):
            status, payload = request_json(
                fleet_server, "/score",
                {"model_id": model_id, "X": X[:16].tolist()})
            assert status == 200
            expected = load_model(
                store_root / model_id).score_samples(X[:16])
            assert np.array_equal(np.array(payload["scores"]), expected)

    def test_stats_reports_workers(self, fleet_server):
        status, payload = request_json(fleet_server, "/stats")
        assert status == 200
        assert payload["n_workers"] == 2
        assert set(payload["workers"]) == {"w0", "w1"}
        assert "sharding" in payload

    def test_unknown_model_is_404_through_fleet(self, fleet_server):
        code, payload = request_error(
            fleet_server, "/score",
            json.dumps({"model_id": "ghost", "X": [[0.0]]}).encode())
        assert code == 404
        assert "ghost" in payload["error"]

    def test_server_close_stops_workers(self, store_root):
        server = build_server(store_root, port=0, workers=1,
                              heartbeat_interval=0.05,
                              monitor_interval=0.05,
                              start_timeout=120.0)
        fleet = server.service
        server.server_close()
        assert fleet.closed


class TestBindFailures:
    def test_occupied_port_raises_and_leaks_no_service(self, store_root,
                                                       server):
        port = server.server_address[1]
        active_before = threading.active_count()
        with pytest.raises(OSError):
            build_server(store_root, port=port)
        # No scorer thread was started for the failed server.
        assert threading.active_count() == active_before
