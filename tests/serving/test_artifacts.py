"""Save/load round-trip parity and artifact-format validation."""

import json

import numpy as np
import pytest

import repro
from repro.core import UADBooster
from repro.core.ensemble import ENGINES, FoldEnsemble
from repro.detectors.registry import ALL_DETECTOR_NAMES, make_detector
from repro.serving import (
    ArtifactError,
    ModelStore,
    load_model,
    read_manifest,
    save_model,
)
from repro.serving.artifacts import data_fingerprint
from tests.conftest import FAST_BOOSTER, FAST_ENSEMBLE


@pytest.fixture(scope="module")
def X(small_dataset):
    return small_dataset[0]


class TestDetectorRoundTrip:
    """Every registry detector must score identically after save/load."""

    @pytest.mark.parametrize("name", ALL_DETECTOR_NAMES)
    def test_scores_exact(self, name, X, tmp_path):
        detector = make_detector(name, random_state=0)
        detector.fit(X)
        path = save_model(detector, tmp_path / name, data=X)
        loaded = load_model(path)
        assert type(loaded) is type(detector)
        assert np.array_equal(loaded.decision_scores_,
                              detector.decision_scores_)
        assert np.array_equal(loaded.score_samples(X),
                              detector.score_samples(X))
        assert np.array_equal(loaded.predict(X), detector.predict(X))


class TestEnsembleRoundTrip:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_predict_exact(self, engine, X, tmp_path):
        ens = FoldEnsemble(**FAST_ENSEMBLE, engine=engine, random_state=0)
        ens.initialize(X)
        y = np.random.default_rng(1).uniform(size=X.shape[0])
        ens.train_round(X, y)
        path = save_model(ens, tmp_path / engine)
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(X.copy()), ens.predict(X))
        assert np.array_equal(loaded.predict_per_fold(X.copy()),
                              ens.predict_per_fold(X))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_training_continues_bit_identically(self, engine, X, tmp_path):
        """Optimizer moments + rng survive, so resumed training matches."""
        y = np.random.default_rng(1).uniform(size=X.shape[0])
        reference = FoldEnsemble(**FAST_ENSEMBLE, engine=engine,
                                 random_state=0).initialize(X)
        reference.train_round(X, y)
        saved = load_model(save_model(reference, tmp_path / engine))
        reference.train_round(X, y)
        saved.train_round(X.copy(), y)
        assert np.array_equal(saved.predict(X.copy()), reference.predict(X))


class TestBoosterRoundTrip:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_scores_exact_on_new_data(self, engine, X, tmp_path, rng):
        source = make_detector("HBOS").fit(X)
        booster = UADBooster(**FAST_BOOSTER, engine=engine, random_state=0)
        booster.fit(X, source)
        path = save_model(booster, tmp_path / engine, data=X)
        loaded = load_model(path)
        assert np.array_equal(loaded.scores_, booster.scores_)
        assert np.array_equal(loaded.pseudo_labels_, booster.pseudo_labels_)
        X_new = rng.normal(size=(37, X.shape[1]))
        assert np.array_equal(loaded.score_samples(X_new),
                              booster.score_samples(X_new))
        assert loaded.history_.n_iterations == booster.history_.n_iterations

    def test_history_roundtrip(self, X, tmp_path):
        booster = UADBooster(**FAST_BOOSTER, random_state=0)
        booster.fit(X, make_detector("HBOS").fit(X))
        loaded = load_model(save_model(booster, tmp_path / "b"))
        assert np.array_equal(loaded.history_.pseudo_label_matrix(),
                              booster.history_.pseudo_label_matrix())


class TestManifest:
    def test_contents(self, X, tmp_path):
        detector = make_detector("HBOS").fit(X)
        path = save_model(detector, tmp_path / "m", data=X,
                          extra={"dataset": "unit-test"})
        manifest = read_manifest(path)
        assert manifest["format"] == "repro-model"
        assert manifest["format_version"] == 1
        assert manifest["repro_version"] == repro.__version__
        assert manifest["kind"] == "HBOS"
        assert manifest["config"]["n_bins"] == 10
        assert manifest["extra"] == {"dataset": "unit-test"}
        fp = manifest["data_fingerprint"]
        assert fp == data_fingerprint(X)
        assert fp["shape"] == list(X.shape)

    def test_manifest_is_plain_json(self, X, tmp_path):
        path = save_model(make_detector("IForest",
                                        random_state=0).fit(X),
                          tmp_path / "m")
        with open(path / "manifest.json", encoding="utf-8") as handle:
            assert isinstance(json.load(handle), dict)


class TestArtifactErrors:
    def test_missing_dir(self, tmp_path):
        with pytest.raises(ArtifactError, match="no model artifact"):
            load_model(tmp_path / "nowhere")

    def test_corrupt_manifest_json(self, X, tmp_path):
        path = save_model(make_detector("HBOS").fit(X), tmp_path / "m")
        (path / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="corrupt manifest"):
            load_model(path)

    def test_wrong_format_marker(self, X, tmp_path):
        path = save_model(make_detector("HBOS").fit(X), tmp_path / "m")
        (path / "manifest.json").write_text(json.dumps({"format": "other"}),
                                            encoding="utf-8")
        with pytest.raises(ArtifactError, match="not a repro-model"):
            load_model(path)

    def test_forward_incompatible_version(self, X, tmp_path):
        path = save_model(make_detector("HBOS").fit(X), tmp_path / "m")
        manifest = read_manifest(path)
        manifest["format_version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest),
                                            encoding="utf-8")
        with pytest.raises(ArtifactError, match="newer"):
            load_model(path)

    def test_missing_payload(self, X, tmp_path):
        path = save_model(make_detector("HBOS").fit(X), tmp_path / "m")
        (path / "payload.npz").unlink()
        with pytest.raises(ArtifactError, match="missing payload"):
            load_model(path)

    def test_truncated_payload(self, X, tmp_path):
        path = save_model(make_detector("HBOS").fit(X), tmp_path / "m")
        payload = path / "payload.npz"
        payload.write_bytes(payload.read_bytes()[:40])
        with pytest.raises(ArtifactError):
            load_model(path)

    def test_kind_mismatch(self, X, tmp_path):
        path = save_model(make_detector("HBOS").fit(X), tmp_path / "m")
        with pytest.raises(ArtifactError, match="expected"):
            load_model(path, expected_kind="UADBooster")

    def test_unregistered_model_rejected_on_save(self, tmp_path):
        with pytest.raises(ArtifactError, match="unregistered"):
            save_model(object(), tmp_path / "m")

    def test_unserialisable_state_rejected(self, tmp_path):
        detector = make_detector("FeatureBagging", random_state=0,
                                 base_factory=lambda: None)
        with pytest.raises(ArtifactError, match="not serialisable"):
            save_model(detector, tmp_path / "m")


class TestModelStore:
    def test_multi_model_store(self, X, tmp_path):
        store = ModelStore(tmp_path)
        store.save(make_detector("HBOS").fit(X), "hbos")
        store.save(make_detector("IForest", random_state=0).fit(X),
                   "iforest")
        assert store.ids() == ["hbos", "iforest"]
        assert store.manifest("hbos")["kind"] == "HBOS"
        assert type(store.load("iforest")).__name__ == "IForest"

    def test_single_artifact_store(self, X, tmp_path):
        save_model(make_detector("HBOS").fit(X), tmp_path / "solo")
        store = ModelStore(tmp_path / "solo")
        assert store.is_single_model
        assert store.ids() == ["solo"]
        assert type(store.load("solo")).__name__ == "HBOS"

    def test_unknown_and_invalid_ids(self, X, tmp_path):
        store = ModelStore(tmp_path)
        with pytest.raises(KeyError):
            store.path_for("ghost")
        with pytest.raises(KeyError):
            store.path_for("../escape")
        with pytest.raises(ArtifactError):
            store.save(make_detector("HBOS").fit(X), "a/b")

    def test_missing_root(self, tmp_path):
        with pytest.raises(ArtifactError):
            ModelStore(tmp_path / "nope")


class TestPayloadChecksum:
    def test_manifest_records_payload_sha(self, X, tmp_path):
        path = save_model(make_detector("HBOS").fit(X), tmp_path / "m")
        assert len(read_manifest(path)["payload_sha256"]) == 64

    def test_mismatched_payload_rejected(self, X, tmp_path):
        """A torn save (old manifest + new payload) must not load."""
        a = save_model(make_detector("HBOS").fit(X), tmp_path / "a")
        b = save_model(make_detector("HBOS", n_bins=7).fit(X),
                       tmp_path / "b")
        (a / "payload.npz").write_bytes((b / "payload.npz").read_bytes())
        with pytest.raises(ArtifactError, match="checksum"):
            load_model(a)

    def test_no_temp_files_left_behind(self, X, tmp_path):
        path = save_model(make_detector("HBOS").fit(X), tmp_path / "m")
        assert sorted(p.name for p in path.iterdir()) == [
            "manifest.json", "payload.npz"]
