"""Tests for the serving state codec."""

import numpy as np
import pytest

from repro.serving.state import (
    STATEFUL_CLASSES,
    decode,
    encode,
    register_stateful,
)


def roundtrip(value):
    arrays = {}
    tree = encode(value, arrays)
    # The tree must be pure JSON: serialise it for real.
    import json
    tree = json.loads(json.dumps(tree))
    return decode(tree, arrays)


class TestPrimitives:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -7, 2**80, 1.5, -0.0, "text", "",
    ])
    def test_identity(self, value):
        assert roundtrip(value) == value

    def test_numpy_scalars_keep_dtype(self):
        for value in (np.float32(1.25), np.float64(-3.5), np.int64(9),
                      np.int32(-2), np.bool_(True)):
            back = roundtrip(value)
            assert back == value
            assert back.dtype == value.dtype

    def test_dtype(self):
        assert roundtrip(np.dtype("float32")) == np.dtype("float32")


class TestContainers:
    def test_nested_lists_and_tuples(self):
        value = [1, (2.5, "x"), [(3,), ()]]
        back = roundtrip(value)
        assert back == value
        assert isinstance(back[1], tuple)
        assert isinstance(back[2][0], tuple)

    def test_sets(self):
        value = {3, 1, 2}
        back = roundtrip(value)
        assert back == value
        assert isinstance(back, set)

    def test_dicts(self):
        value = {"a": [1, 2], "b": {"c": None}}
        assert roundtrip(value) == value

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(TypeError):
            encode({1: "x"}, {})


class TestArrays:
    def test_array_roundtrip_is_lossless(self):
        arr = np.random.default_rng(0).normal(size=(5, 3)).astype(np.float32)
        back = roundtrip(arr)
        assert back.dtype == arr.dtype
        assert np.array_equal(back, arr)

    def test_arrays_are_hoisted_not_inlined(self):
        arrays = {}
        tree = encode([np.zeros(3), np.ones(2)], arrays)
        assert len(arrays) == 2
        assert tree == [{"__ndarray__": "a0"}, {"__ndarray__": "a1"}]

    def test_missing_payload_array_raises(self):
        with pytest.raises(KeyError):
            decode({"__ndarray__": "a99"}, {})


class TestRandomState:
    def test_generator_roundtrip_continues_stream(self):
        rng = np.random.default_rng(123)
        rng.normal(size=10)  # advance the stream
        clone = roundtrip(rng)
        assert np.array_equal(rng.normal(size=5), clone.normal(size=5))

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(ValueError):
            decode({"__rng__": {"name": "NoSuchBG", "state": {}}}, {})


class TestObjects:
    def test_unregistered_class_rejected(self):
        class Mystery:
            pass

        with pytest.raises(TypeError, match="register"):
            encode(Mystery(), {})

    def test_callable_state_rejected(self):
        with pytest.raises(TypeError):
            encode(lambda x: x, {})

    def test_unknown_object_name_on_decode(self):
        with pytest.raises(ValueError, match="unregistered"):
            decode({"__object__": "NoSuchClass", "state": None}, {})

    def test_register_name_collision_rejected(self):
        class A:
            pass

        class B:
            pass

        register_stateful(A, name="collision-test")
        try:
            register_stateful(A, name="collision-test")  # idempotent
            with pytest.raises(ValueError):
                register_stateful(B, name="collision-test")
        finally:
            STATEFUL_CLASSES.pop("collision-test", None)

    def test_builtin_registry_covers_detectors(self):
        from repro.detectors.registry import DETECTOR_CLASSES

        for name, cls in DETECTOR_CLASSES.items():
            assert STATEFUL_CLASSES.get(name) is cls

    def test_transient_caches_dropped(self):
        from repro.nn.activations import ReLU

        relu = ReLU()
        relu.forward(np.array([[1.0, -1.0]]))
        assert relu._mask is not None
        back = roundtrip(relu)
        assert back._mask is None

    def test_slots_object_roundtrip(self):
        from repro.detectors.iforest import _IsolationTree

        X = np.random.default_rng(0).normal(size=(32, 3))
        tree = _IsolationTree(X, max_depth=4, rng=np.random.default_rng(1))
        back = roundtrip(tree)
        assert np.array_equal(back.path_lengths(X), tree.path_lengths(X))
