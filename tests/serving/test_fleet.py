"""Tests for repro.serving.fleet — the multi-worker scoring tier.

The headline assertion is the determinism bar from the fleet's contract:
for worker counts 1, 2, and 4, every score returned through the fleet is
exactly ``np.array_equal`` to the single-process ScoringService answer.
The rest covers routing, bounded admission (backpressure is an explicit
reject, not buffering), crash recovery, and observability.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.detectors.registry import make_detector
from repro.serving import (
    FleetOverloadedError,
    ModelStore,
    ScoringFleet,
    ScoringService,
    save_model,
)
from repro.resilience import is_retryable
from repro.serving.fleet.frontend import _rebuild_error
from repro.serving.fleet.supervisor import WorkerCrashedError, \
    WorkerFailedError
from repro.serving.fleet.worker import latency_summary

MODELS = (("hbos", "HBOS"), ("iforest", "IForest"),
          ("ecod", "ECOD"), ("pca", "PCA"))

# Tight loops so crash tests converge fast; generous start timeout so a
# loaded CI box does not flake the handshake.
FAST = dict(heartbeat_interval=0.05, monitor_interval=0.05,
            start_timeout=120.0)


@pytest.fixture(scope="module")
def store(small_dataset, tmp_path_factory):
    X, _ = small_dataset
    root = tmp_path_factory.mktemp("fleet_store")
    for model_id, name in MODELS:
        save_model(make_detector(name, random_state=0).fit(X),
                   root / model_id, data=X)
    return ModelStore(root)


@pytest.fixture(scope="module")
def X(small_dataset):
    return small_dataset[0]


@pytest.fixture(scope="module")
def expected(store, X):
    """Reference scores from the single-process service."""
    with ScoringService(store) as service:
        return {model_id: service.score(model_id, X)
                for model_id, _ in MODELS}


def _score_with_retry(fleet, model_id, X, attempts=80, pause=0.1):
    """Score through a recovering fleet, retrying retryable rejects."""
    last = None
    for _ in range(attempts):
        try:
            return fleet.score(model_id, X)
        except (FleetOverloadedError, WorkerCrashedError) as exc:
            last = exc
            time.sleep(pause)
    raise AssertionError(f"fleet never recovered: {last!r}")


class TestScoreParity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_exact_parity_with_single_service(self, store, X, expected,
                                              n_workers):
        with ScoringFleet(store, n_workers=n_workers, **FAST) as fleet:
            for model_id, _ in MODELS:
                assert np.array_equal(fleet.score(model_id, X),
                                      expected[model_id]), model_id

    def test_single_row_input(self, store, X, expected):
        with ScoringFleet(store, n_workers=2, **FAST) as fleet:
            got = fleet.score("hbos", X[0])
            assert np.array_equal(got, expected["hbos"][:1])


class TestErrorPropagation:
    def test_unknown_model_raises_keyerror(self, store, X):
        with ScoringFleet(store, n_workers=2, **FAST) as fleet:
            with pytest.raises(KeyError, match="ghost"):
                fleet.score("ghost", X)

    def test_bad_feature_count_raises_valueerror(self, store, X):
        with ScoringFleet(store, n_workers=2, **FAST) as fleet:
            with pytest.raises(ValueError):
                fleet.score("hbos", np.zeros((3, X.shape[1] + 2)))

    def test_nonfinite_input_rejected_in_frontend(self, store):
        with ScoringFleet(store, n_workers=1, **FAST) as fleet:
            before = fleet.stats()["requests"]
            with pytest.raises(ValueError, match="NaN"):
                fleet.score("hbos", np.full((2, 4), np.nan))
            # Validation failures never reach admission or a worker.
            assert fleet.stats()["requests"] == before

    def test_rebuild_error_maps_known_types(self):
        assert isinstance(_rebuild_error(("KeyError", "x")), KeyError)
        assert isinstance(_rebuild_error(("ValueError", "x")), ValueError)
        rebuilt = _rebuild_error(("WeirdError", "boom"))
        assert isinstance(rebuilt, RuntimeError)
        assert "WeirdError" in str(rebuilt)

    def test_closed_fleet_rejects(self, store, X):
        fleet = ScoringFleet(store, n_workers=1, **FAST)
        fleet.close()
        with pytest.raises(RuntimeError, match="closed"):
            fleet.score("hbos", X)


class TestBackpressure:
    """Admission rejects are deterministic given the in-flight counters,
    so the caps are tested by injecting the counter state directly —
    no timing games against a 1-core CI box."""

    def test_per_model_cap_rejects_with_retry_after(self, store, X):
        with ScoringFleet(store, n_workers=1, max_inflight_per_model=2,
                          **FAST) as fleet:
            with fleet._admission_lock:
                fleet._model_inflight["hbos"] = 2
            with pytest.raises(FleetOverloadedError,
                               match="in-flight cap") as excinfo:
                fleet.score("hbos", X)
            assert excinfo.value.retry_after > 0
            # Other models are unaffected — that is the QoS point.
            fleet.score("iforest", X)
            assert fleet.stats()["rejected"] == 1

    def test_per_worker_cap_rejects_with_retry_after(self, store, X):
        with ScoringFleet(store, n_workers=1, max_inflight_per_worker=4,
                          **FAST) as fleet:
            handle = fleet._supervisor.handles["w0"]
            with handle._lock:
                for request_id in range(4):  # simulate a full queue
                    handle._pending[-1 - request_id] = object()
            try:
                with pytest.raises(FleetOverloadedError,
                                   match="queue is full") as excinfo:
                    fleet.score("hbos", X)
                assert excinfo.value.retry_after >= 0.05
            finally:
                with handle._lock:
                    handle._pending.clear()
            fleet.score("hbos", X)  # admits again once the queue drains

    def test_release_runs_even_on_worker_error(self, store, X):
        with ScoringFleet(store, n_workers=1, **FAST) as fleet:
            with pytest.raises(KeyError):
                fleet.score("ghost", X)
            assert fleet._model_inflight == {}

    def test_bad_caps_rejected(self, store):
        with pytest.raises(ValueError, match="in-flight caps"):
            ScoringFleet(store, n_workers=1, max_inflight_per_worker=0)
        with pytest.raises(ValueError, match="n_workers"):
            ScoringFleet(store, n_workers=0)


class TestCrashRecovery:
    def test_sigkilled_worker_restarts_and_scores_identically(
            self, store, X, expected):
        with ScoringFleet(store, n_workers=2, **FAST) as fleet:
            stats = fleet.stats()
            victim = stats["sharding"]["assignments"]["hbos"]
            pid = stats["workers"][victim]["pid"]
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = fleet.stats()
                if (stats["workers"][victim]["restarts"] >= 1
                        and stats["healthy_workers"] == 2):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("supervisor never restarted the worker")
            assert stats["total_restarts"] >= 1
            assert stats["workers"][victim]["pid"] != pid
            got = _score_with_retry(fleet, "hbos", X)
            assert np.array_equal(got, expected["hbos"])

    def test_reroute_during_recovery_keeps_exact_scores(
            self, store, X, expected):
        """While the owner is down, its models are served by a ring
        successor — with identical scores, because placement never
        changes results."""
        with ScoringFleet(store, n_workers=2, **FAST) as fleet:
            assignments = fleet.stats()["sharding"]["assignments"]
            victim = assignments["hbos"]
            handle = fleet._supervisor.handles[victim]
            handle.state = "starting"  # simulate mid-recovery membership
            try:
                got = fleet.score("hbos", X)
            finally:
                handle.state = "healthy"
            assert np.array_equal(got, expected["hbos"])
            assert fleet.stats()["rerouted"] >= 1

    def test_no_healthy_workers_is_retryable_overload(self, store, X):
        with ScoringFleet(store, n_workers=1, **FAST) as fleet:
            handle = fleet._supervisor.handles["w0"]
            handle.state = "starting"
            try:
                with pytest.raises(FleetOverloadedError,
                                   match="no healthy"):
                    fleet.score("hbos", X)
            finally:
                handle.state = "healthy"


class TestGiveUp:
    """Past ``max_restarts`` the supervisor stops reviving a worker:
    its state becomes terminal ``failed``, its shard is covered by ring
    successors permanently, and only when *every* worker has failed do
    requests surface the non-retryable :class:`WorkerFailedError`."""

    def test_worker_past_restart_budget_fails_permanently(
            self, store, X, expected):
        with ScoringFleet(store, n_workers=2, max_restarts=0,
                          **FAST) as fleet:
            stats = fleet.stats()
            victim = stats["sharding"]["assignments"]["hbos"]
            os.kill(stats["workers"][victim]["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if fleet.stats()["workers"][victim]["state"] == "failed":
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("worker never reached failed state")
            health = fleet.health()
            assert health["status"] == "degraded"
            assert health["failed_workers"] == [victim]
            # The failed worker's shard reroutes to the survivor — with
            # exact scores, permanently (no restart is coming).
            got = _score_with_retry(fleet, "hbos", X)
            assert np.array_equal(got, expected["hbos"])
            assert fleet.stats()["workers"][victim]["state"] == "failed"

    def test_all_workers_failed_is_nonretryable(self, store, X):
        with ScoringFleet(store, n_workers=1, max_restarts=0,
                          **FAST) as fleet:
            os.kill(fleet.stats()["workers"]["w0"]["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if fleet.stats()["workers"]["w0"]["state"] == "failed":
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("worker never reached failed state")
            assert fleet.health()["status"] == "failing"
            with pytest.raises(WorkerFailedError,
                               match="failed permanently") as excinfo:
                fleet.score("hbos", X)
            # Terminal: retrying cannot help, and policies must not.
            assert not is_retryable(excinfo.value)
            assert is_retryable(WorkerCrashedError("w0 died"))


class TestObservability:
    def test_stats_shape(self, store, X):
        with ScoringFleet(store, n_workers=2, **FAST) as fleet:
            fleet.score("hbos", X)
            # Wait for at least one post-score heartbeat per worker.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                stats = fleet.stats()
                if all("service" in w for w in stats["workers"].values()):
                    break
                time.sleep(0.05)
            assert stats["n_workers"] == 2
            assert stats["healthy_workers"] == 2
            assert stats["requests"] >= 1
            assert set(stats["sharding"]["assignments"]) == \
                set(store.ids())
            for worker_id, worker in stats["workers"].items():
                assert worker["state"] == "healthy"
                assert worker["pid"] is not None
                assert worker["heartbeat_age_s"] is not None
                assert "latency" in worker
                assert "queue_depth" in worker["service"]
            assert "runtime" in stats

    def test_workers_warm_start_their_shard(self, store, X):
        with ScoringFleet(store, n_workers=2, cache_size=8,
                          **FAST) as fleet:
            stats = fleet.stats()
            shards = {wid: worker["shard"]
                      for wid, worker in stats["workers"].items()}
            for worker_id, worker in stats["workers"].items():
                # Warm set == shard (cache_size covers every shard here).
                assert sorted(worker["warm_models"]) == \
                    sorted(shards[worker_id])

    def test_health_summary(self, store):
        with ScoringFleet(store, n_workers=2, **FAST) as fleet:
            health = fleet.health()
            assert health == {"status": "ok", "n_workers": 2,
                              "healthy_workers": 2, "failed_workers": [],
                              "restarting_workers": [], "open_breakers": [],
                              "total_restarts": 0}

    def test_health_degraded_while_worker_recovers(self, store):
        with ScoringFleet(store, n_workers=2, **FAST) as fleet:
            handle = fleet._supervisor.handles["w0"]
            handle.state = "starting"
            try:
                health = fleet.health()
            finally:
                handle.state = "healthy"
            assert health["status"] == "degraded"
            assert health["restarting_workers"] == ["w0"]
            assert fleet.health()["status"] == "ok"

    def test_health_failing_without_healthy_workers(self, store):
        with ScoringFleet(store, n_workers=1, **FAST) as fleet:
            handle = fleet._supervisor.handles["w0"]
            handle.state = "crashed"
            try:
                health = fleet.health()
            finally:
                handle.state = "healthy"
            assert health["status"] == "failing"
            assert health["healthy_workers"] == 0

    def test_latency_summary_percentiles(self):
        assert latency_summary([]) == {
            "count": 0, "p50_ms": None, "p99_ms": None, "mean_ms": None}
        summary = latency_summary([0.001] * 99 + [0.1])
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(1.0)
        assert summary["p99_ms"] >= summary["p50_ms"]


class TestLifecycle:
    def test_close_is_idempotent_and_terminal(self, store):
        fleet = ScoringFleet(store, n_workers=1, **FAST)
        pids = [w["pid"] for w in fleet.stats()["workers"].values()]
        fleet.close()
        fleet.close()
        assert fleet.closed
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not any(_pid_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert not any(_pid_alive(pid) for pid in pids)

    def test_context_manager_closes(self, store):
        with ScoringFleet(store, n_workers=1, **FAST) as fleet:
            pass
        assert fleet.closed


def _pid_alive(pid) -> bool:
    try:
        os.kill(pid, 0)
    except (OSError, TypeError):
        return False
    return True
