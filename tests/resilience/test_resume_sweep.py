"""Crash-resumable sweeps: SIGKILL a sweep, resume it, lose nothing.

The journal is the sweep's crash-durability contract: every computed
cell is fsync'd to a JSONL line before the next cell starts, so a
hard-killed sweep resumes with zero recomputation of journaled cells and
produces a results table byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import format_table4, run_grid, table4_summary
from repro.experiments.harness import ExperimentRunner

# A tiny grid (2 detectors x 1 dataset x 2 seeds = 4 cells) that is
# still big enough to kill mid-flight with >= 2 cells journaled.
GRID = dict(detectors=("HBOS", "PCA"), datasets=("glass",), seeds=(0, 1),
            n_iterations=2, max_samples=120, max_features=8)


def _journal_lines(path):
    if not path.exists():
        return []
    lines = []
    for line in path.read_text().splitlines():
        try:
            lines.append(json.loads(line))
        except ValueError:
            continue
    return lines


class TestJournal:
    def test_journal_records_every_computed_cell(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        runner = ExperimentRunner(journal=journal, backend="serial")
        results = runner.run_grid(**GRID)
        lines = _journal_lines(journal)
        assert len(lines) == 4
        assert runner.last_counters == {"cells": 4, "cache_hits": 0,
                                        "journal_hits": 0, "computed": 4}
        journaled_aucs = sorted(e["result"]["booster_auc"] for e in lines)
        assert journaled_aucs == sorted(r.booster_auc for r in results)

    def test_resume_replays_journal_without_recompute(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        baseline = ExperimentRunner(backend="serial").run_grid(**GRID)
        ExperimentRunner(journal=journal, backend="serial").run_grid(**GRID)

        resumed_runner = ExperimentRunner(journal=journal, resume=True,
                                          backend="serial")
        resumed = resumed_runner.run_grid(**GRID)
        assert resumed_runner.last_counters["journal_hits"] == 4
        assert resumed_runner.last_counters["computed"] == 0
        assert format_table4(table4_summary(resumed)) == \
            format_table4(table4_summary(baseline))

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        ExperimentRunner(journal=journal, backend="serial").run_grid(**GRID)
        with open(journal, "a") as fh:
            fh.write('{"key": "dead", "res')  # the in-flight cell's tear
        runner = ExperimentRunner(journal=journal, resume=True,
                                  backend="serial")
        runner.run_grid(**GRID)
        assert runner.last_counters["journal_hits"] == 4

    def test_resume_requires_a_journal(self):
        with pytest.raises(ValueError, match="requires a journal"):
            ExperimentRunner(resume=True)


@pytest.mark.slow
class TestSigkillResume:
    def test_sigkilled_sweep_resumes_byte_identical(self, tmp_path):
        """The headline: SIGKILL a real sweep subprocess mid-run, resume
        with ``repro sweep --resume`` semantics, and the final table is
        byte-identical to an uninterrupted run with zero recomputation
        of journaled cells."""
        journal = tmp_path / "sweep.jsonl"
        argv = [
            sys.executable, "-m", "repro", "sweep",
            "--models", "HBOS", "PCA", "--datasets", "glass",
            "--seeds", "0", "1", "--iterations", "2",
            "--max-samples", "120", "--max-features", "8",
            "--journal", str(journal), "--backend", "serial", "--jobs", "1",
        ]
        env = dict(os.environ, PYTHONPATH="src", REPRO_BENCH_CACHE="")
        proc = subprocess.Popen(argv, cwd=os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Wait for >= 2 durable cells, then kill hard mid-sweep.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if len(_journal_lines(journal)) >= 2:
                    break
                if proc.poll() is not None:
                    break  # finished before we could kill it — fine
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        journaled = len(_journal_lines(journal))
        assert journaled >= 2  # the kill window did its job

        baseline = run_grid(backend="serial", **GRID)
        resumed_runner = ExperimentRunner(journal=journal, resume=True,
                                          backend="serial")
        resumed = resumed_runner.run_grid(**GRID)
        # Every journaled cell replays; only the remainder recomputes.
        assert resumed_runner.last_counters["journal_hits"] == journaled
        assert resumed_runner.last_counters["computed"] == 4 - journaled
        assert format_table4(table4_summary(resumed)) == \
            format_table4(table4_summary(baseline))
