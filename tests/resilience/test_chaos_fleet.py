"""Chaos suite: the fleet under a seeded fault plan scores exactly.

The repo's standing determinism bar says fleet scores are
``np.array_equal`` to the single-process ScoringService for any worker
count.  This suite extends that bar to *recovery paths*: with a seeded
plan injecting worker crashes, submit delays, and dropped replies, a
fleet driven through its RetryPolicy still returns scores byte-identical
to a fault-free run — chaos changes latency, never values.
"""

import numpy as np
import pytest

from repro.detectors.registry import make_detector
from repro.resilience import (
    Deadline,
    DeadlineExceededError,
    RequestTimeoutError,
    RetryPolicy,
    clear_injectors,
)
from repro.runtime import RunContext
from repro.serving import ModelStore, ScoringFleet, ScoringService, \
    save_model

MODELS = (("hbos", "HBOS"), ("iforest", "IForest"),
          ("ecod", "ECOD"), ("pca", "PCA"))

# Tight supervision loops so crash recovery converges fast; a short
# request timeout so dropped replies are detected in test time rather
# than the 30 s production default.
FAST = dict(heartbeat_interval=0.05, monitor_interval=0.05,
            start_timeout=120.0, request_timeout=3.0)

#: Generous retry budget: chaos runs must recover, not flake.
POLICY = RetryPolicy(max_attempts=12, base_delay=0.05, max_delay=1.0,
                     jitter=0.1, seed=0)


@pytest.fixture(scope="module")
def store(small_dataset, tmp_path_factory):
    X, _ = small_dataset
    root = tmp_path_factory.mktemp("chaos_store")
    for model_id, name in MODELS:
        save_model(make_detector(name, random_state=0).fit(X),
                   root / model_id, data=X)
    return ModelStore(root)


@pytest.fixture(scope="module")
def X(small_dataset):
    return small_dataset[0]


@pytest.fixture(scope="module")
def expected(store, X):
    """Fault-free reference scores from the single-process service."""
    with ScoringService(store) as service:
        return {model_id: service.score(model_id, X)
                for model_id, _ in MODELS}


@pytest.fixture(autouse=True)
def _fresh_injectors():
    # The parent process must never see a stale injector from a previous
    # test's plan; workers compile their own from the serialized context.
    clear_injectors()
    yield
    clear_injectors()


def _score_all(fleet, X):
    return {model_id: fleet.score(model_id, X) for model_id, _ in MODELS}


class TestChaosParity:
    """Seeded crash + delay + drop, still exactly the reference scores."""

    # One plan exercising all three recovery paths: the second request a
    # worker sees kills it (supervisor restart + ring successor), early
    # submits are delayed (queue jitter), and an iforest reply is dropped
    # (the frontend times out against a live worker and retries).
    # Trigger points are chosen >= 2 so a fresh worker incarnation can
    # always serve its first request — the invariant that makes every
    # chaos pass converge instead of crash-looping.
    PLAN = ("crash@2; "
            "delay@1x3:0.02; "
            "drop@2,model=iforest")

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_scores_equal_fault_free_run(self, store, X, expected,
                                         n_workers):
        with RunContext(faults=self.PLAN, seed=0):
            with ScoringFleet(store, n_workers=n_workers,
                              retry_policy=POLICY, **FAST) as fleet:
                got = _score_all(fleet, X)
        for model_id, _ in MODELS:
            assert np.array_equal(got[model_id], expected[model_id]), \
                model_id

    def test_chaos_run_is_reproducible(self, store, X):
        """Same plan + same seed -> the same faults fire; scores are
        (trivially, but meaningfully) identical across chaos runs."""
        import time
        runs = []
        for _ in range(2):
            clear_injectors()
            # at draws from 2..3 per worker: two full passes over the
            # models give every worker >= 4 requests, so the seeded
            # crash is guaranteed to fire whichever end it resolves to.
            with RunContext(faults="crash@2-3", seed=3):
                with ScoringFleet(store, n_workers=2, retry_policy=POLICY,
                                  **FAST) as fleet:
                    first = _score_all(fleet, X)
                    second = _score_all(fleet, X)
                    runs += [first, second]
                    # The restart is counted by the monitor thread;
                    # give it a beat to observe the death.
                    deadline = time.monotonic() + 10
                    while time.monotonic() < deadline:
                        if fleet.stats()["total_restarts"] >= 1:
                            break
                        time.sleep(0.05)
                    assert fleet.stats()["total_restarts"] >= 1
        for model_id, _ in MODELS:
            for run in runs[1:]:
                assert np.array_equal(runs[0][model_id], run[model_id])

    def test_dropped_reply_is_a_timeout_not_a_crash(self, store, X,
                                                    expected):
        """Satellite regression: a lost reply against a live worker is
        RequestTimeoutError (HTTP 504), not WorkerCrashedError — and a
        retrying caller recovers exact scores."""
        with RunContext(faults="drop@1,model=hbos", seed=0):
            with ScoringFleet(store, n_workers=1, request_timeout=1.0,
                              heartbeat_interval=0.05,
                              monitor_interval=0.05,
                              start_timeout=120.0) as fleet:
                with pytest.raises(RequestTimeoutError) as excinfo:
                    fleet.score("hbos", X)
                assert excinfo.value.retry_after > 0
                assert fleet.stats()["timeouts"] == 1
                # The worker is still alive: the very next call works.
                assert np.array_equal(fleet.score("hbos", X),
                                      expected["hbos"])

    def test_retry_counter_counts_recoveries(self, store, X, expected):
        with RunContext(faults="drop@1,model=hbos", seed=0):
            with ScoringFleet(store, n_workers=1, retry_policy=POLICY,
                              heartbeat_interval=0.05,
                              monitor_interval=0.05,
                              start_timeout=120.0,
                              request_timeout=1.0) as fleet:
                assert np.array_equal(fleet.score("hbos", X),
                                      expected["hbos"])
                assert fleet.stats()["retries"] >= 1


class TestDeadlines:
    def test_expired_deadline_fails_fast_without_submitting(self, store, X):
        with ScoringFleet(store, n_workers=1, **FAST) as fleet:
            deadline = Deadline.after(0.001)
            while not deadline.expired:
                pass
            before = fleet.stats()["requests"]
            with pytest.raises(DeadlineExceededError):
                fleet.score("hbos", X, deadline=deadline)
            assert fleet.stats()["requests"] == before

    def test_deadline_bounds_retry_loop_end_to_end(self, store, X):
        """Under a reply-dropping plan with a tiny deadline, the retry
        loop gives up inside the budget instead of sleeping past it."""
        policy = RetryPolicy(max_attempts=50, base_delay=0.2, jitter=0.0,
                             seed=0)
        with RunContext(faults="drop@1x50,model=hbos", seed=0):
            with ScoringFleet(store, n_workers=1, retry_policy=policy,
                              heartbeat_interval=0.05,
                              monitor_interval=0.05,
                              start_timeout=120.0,
                              request_timeout=0.3) as fleet:
                import time
                start = time.monotonic()
                with pytest.raises((DeadlineExceededError,
                                    RequestTimeoutError)):
                    fleet.score("hbos", X, deadline=Deadline.after(1.0))
                assert time.monotonic() - start < 5.0

    def test_fleet_default_deadline_applies_per_request(self, store, X,
                                                        expected):
        with ScoringFleet(store, n_workers=1, deadline=30.0,
                          **FAST) as fleet:
            # A fresh budget arms per request, so sequential calls both
            # succeed rather than sharing one decaying countdown.
            for _ in range(2):
                assert np.array_equal(fleet.score("hbos", X),
                                      expected["hbos"])
            assert fleet.stats()["resilience"]["deadline"] == 30.0
