"""Tests for repro.resilience.faults — the seeded fault-injection plan.

Everything here is in-process: plan parsing, trigger arithmetic, filter
matching, seeded ranges, and runtime activation.  The end-to-end chaos
runs (real worker crashes under a plan) live in test_chaos_fleet.py.
"""

import os

import pytest

from repro.resilience import (
    CRASH_EXIT_CODE,
    FaultInjector,
    InjectedFault,
    active_injector,
    clear_injectors,
    inject,
    parse_plan,
)
from repro.runtime import RunContext


@pytest.fixture(autouse=True)
def _isolated_injectors():
    clear_injectors()
    yield
    clear_injectors()


class TestParsePlan:
    def test_empty_specs(self):
        assert parse_plan(None) == []
        assert parse_plan("") == []
        assert parse_plan("   ") == []

    def test_minimal_clause_gets_kind_defaults(self):
        (entry,) = parse_plan("crash@3")
        assert entry["kind"] == "crash"
        assert entry["site"] == "worker.request"
        assert entry["at"] == 3
        assert entry["times"] == 1

    def test_full_grammar(self):
        (entry,) = parse_plan("delay@2x5:0.25,model=hbos,worker=w1")
        assert entry == {"kind": "delay", "site": "queue.submit",
                         "at": 2, "times": 5, "seconds": 0.25,
                         "filters": {"model": "hbos", "worker": "w1"}}

    def test_site_override_and_multiple_clauses(self):
        entries = parse_plan("error@1,site=harness.cell; drop@2,model=pca")
        assert [e["site"] for e in entries] == ["harness.cell",
                                                "worker.reply"]

    def test_seeded_range_survives_parsing(self):
        (entry,) = parse_plan("crash@2-6")
        assert entry["at"] == (2, 6)

    def test_json_list_form(self):
        entries = parse_plan('[{"kind": "slow", "at": 1, "seconds": 0.2}]')
        assert entries[0]["site"] == "service.score"
        assert entries[0]["seconds"] == 0.2

    @pytest.mark.parametrize("bad", [
        "explode@1",                 # unknown kind
        "crash",                     # no trigger
        "crash@0",                   # at is 1-based
        "crash@zz",                  # non-integer
        "crash@5-2",                 # empty range
        "delay@1:abc",               # bad seconds
        "crash@1,oops",              # filter is not key=value
        "crash@1,site=nowhere",      # unknown site
    ])
    def test_malformed_plans_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_plan(bad)


class TestFaultInjector:
    def test_error_fires_on_the_nth_matching_event(self):
        injector = FaultInjector("error@3,site=store.load")
        injector.apply("store.load", model="a")
        injector.apply("store.load", model="a")
        with pytest.raises(InjectedFault) as excinfo:
            injector.apply("store.load", model="a")
        assert excinfo.value.retry_after > 0
        injector.apply("store.load", model="a")  # fires exactly once

    def test_times_widens_the_firing_window(self):
        injector = FaultInjector("error@2x2,site=store.load")
        injector.apply("store.load")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.apply("store.load")
        injector.apply("store.load")

    def test_filters_only_count_matching_events(self):
        injector = FaultInjector("error@2,model=hbos,site=store.load")
        injector.apply("store.load", model="pca")   # not counted
        injector.apply("store.load", model="hbos")  # match 1
        injector.apply("store.load", model="pca")   # not counted
        with pytest.raises(InjectedFault):
            injector.apply("store.load", model="hbos")  # match 2: fires

    def test_drop_returns_marker(self):
        injector = FaultInjector("drop@1")
        assert injector.apply("worker.reply") == "drop"
        assert injector.apply("worker.reply") is None

    def test_seeded_range_is_deterministic(self):
        a = FaultInjector("crash@2-9", seed=5)
        b = FaultInjector("crash@2-9", seed=5)
        c = FaultInjector("crash@2-9", seed=6)
        at = a.entries[0]["at"]
        assert 2 <= at <= 9
        assert b.entries[0]["at"] == at
        # A different seed draws a different (but fixed) trigger point.
        assert isinstance(c.entries[0]["at"], int)

    def test_unseeded_range_resolves_to_low_end(self):
        injector = FaultInjector("crash@4-8", seed=None)
        assert injector.entries[0]["at"] in range(4, 9)

    def test_stats_expose_trigger_state(self):
        injector = FaultInjector("drop@1")
        injector.apply("worker.reply")
        (entry,) = injector.stats()
        assert entry["matched"] == 1
        assert entry["fired"] == 1


class TestRuntimeActivation:
    def test_no_plan_means_noop(self):
        assert active_injector() is None
        assert inject("store.load", model="x") is None

    def test_plan_activates_through_run_context(self):
        with RunContext(faults="error@1,site=store.load", seed=0):
            with pytest.raises(InjectedFault):
                inject("store.load")

    def test_plan_activates_through_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@1,site=harness.cell")
        with pytest.raises(InjectedFault):
            inject("harness.cell")

    def test_injector_cached_so_counters_accumulate(self):
        with RunContext(faults="error@2,site=store.load", seed=0):
            inject("store.load")             # match 1 — no fire
            assert active_injector() is active_injector()
            with pytest.raises(InjectedFault):
                inject("store.load")         # match 2 — fires

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 17
        assert CRASH_EXIT_CODE != os.EX_OK
