"""Tests for repro.resilience.policy — deadlines, retry, breakers.

The headline property is the repo-wide determinism bar extended to
failure handling: a RetryPolicy's backoff schedule is a pure function of
``(seed, attempt)``, reproducible from the active RunContext seed alone,
exactly like scores.
"""

import time

import pytest

from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    InjectedFault,
    RequestTimeoutError,
    RetryPolicy,
    is_retryable,
)
from repro.runtime import RunContext
from repro.serving import FleetOverloadedError, WorkerCrashedError, \
    WorkerFailedError


class TestDeadline:
    def test_budget_counts_down_and_expires(self):
        d = Deadline.after(0.05)
        assert 0 < d.remaining() <= 0.05
        assert not d.expired
        time.sleep(0.06)
        assert d.expired
        with pytest.raises(DeadlineExceededError, match="0.05s deadline"):
            d.check("scoring request")

    def test_clamp_bounds_nested_waits(self):
        d = Deadline.after(10.0)
        assert d.clamp(2.0) == 2.0          # usual bound wins early
        assert d.clamp(60.0) <= 10.0        # budget wins late

    def test_start_is_idempotent(self):
        d = Deadline(5.0)
        first = d.start()._expires_at
        time.sleep(0.01)
        assert d.start()._expires_at == first

    def test_coerce(self):
        assert Deadline.coerce(None) is None
        d = Deadline.coerce(1.5)
        assert isinstance(d, Deadline) and d.budget == 1.5
        assert Deadline.coerce(d) is d      # already-started passthrough

    def test_invalid_budget(self):
        with pytest.raises(ValueError, match="budget"):
            Deadline(0)

    def test_deadline_exceeded_is_not_retryable(self):
        assert not is_retryable(DeadlineExceededError("out of budget"))


class TestRetryPolicySchedule:
    def test_schedule_is_reproducible_for_a_seed(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        assert policy.schedule() == policy.schedule()
        # A pure function of (seed, attempt): a fresh policy object with
        # the same seed produces the identical schedule.
        assert policy.schedule() == RetryPolicy(max_attempts=5,
                                                seed=42).schedule()

    def test_schedule_differs_across_seeds(self):
        a = RetryPolicy(max_attempts=6, seed=0).schedule()
        b = RetryPolicy(max_attempts=6, seed=1).schedule()
        assert a != b

    def test_seed_resolves_through_run_context(self):
        policy = RetryPolicy(max_attempts=5)
        with RunContext(seed=7):
            in_ctx = policy.schedule()
        with RunContext(seed=7):
            again = policy.schedule()
        with RunContext(seed=8):
            other = policy.schedule()
        assert in_ctx == again
        assert in_ctx != other

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0, seed=0)
        assert policy.schedule() == (0.1, 0.2, 0.4, 0.5, 0.5, 0.5, 0.5)

    def test_retry_after_hint_is_a_floor(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.0, seed=0)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(0, retry_after=3.0) == 3.0

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                             jitter=0.25, seed=123)
        for delay in policy.schedule(10):
            assert 1.0 <= delay <= 1.25

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-1)

    def test_params_roundtrip(self):
        policy = RetryPolicy(max_attempts=7, base_delay=0.2, seed=3)
        clone = RetryPolicy(**policy.get_params())
        assert clone.schedule() == policy.schedule()


class TestRetryPolicyCall:
    def test_retries_retryable_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise InjectedFault("transient")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0,
                             seed=0)
        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(calls) == 3
        # InjectedFault carries retry_after=0.05, which floors the
        # otherwise-smaller 0.01/0.02 exponential backoff.
        assert slept == [0.05, 0.05]

    def test_non_retryable_raises_immediately(self):
        calls = []

        def bug():
            calls.append(1)
            raise ValueError("real bug")

        policy = RetryPolicy(max_attempts=5, seed=0)
        with pytest.raises(ValueError):
            policy.call(bug, sleep=lambda _: None)
        assert len(calls) == 1

    def test_exhausted_attempts_reraise_last_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(InjectedFault):
            policy.call(lambda: (_ for _ in ()).throw(InjectedFault("x")),
                        sleep=lambda _: None)

    def test_backoff_never_sleeps_past_the_deadline(self):
        # The retry pause would outlive the budget: re-raise instead of
        # sleeping into certain failure.
        policy = RetryPolicy(max_attempts=5, base_delay=60.0, jitter=0.0,
                             seed=0)
        deadline = Deadline.after(0.2)
        start = time.monotonic()
        with pytest.raises(InjectedFault):
            policy.call(
                lambda: (_ for _ in ()).throw(InjectedFault("slow")),
                deadline=deadline)
        assert time.monotonic() - start < 1.0

    def test_on_retry_observability_hook(self):
        seen = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(InjectedFault):
            policy.call(lambda: (_ for _ in ()).throw(InjectedFault("x")),
                        sleep=lambda _: None,
                        on_retry=lambda a, e, d: seen.append((a, d)))
        assert seen == [(0, 0.05), (1, 0.05)]  # the retry_after floor


class TestRetryability:
    @pytest.mark.parametrize("exc", [
        FleetOverloadedError("full", retry_after=1.0),
        WorkerCrashedError("died"),
        RequestTimeoutError("slow"),
        CircuitOpenError("open"),
        InjectedFault("chaos"),
    ])
    def test_transient_errors_opt_in(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize("exc", [
        DeadlineExceededError("budget"),
        WorkerFailedError("permanent"),
        ValueError("user error"),
        KeyError("missing model"),
    ])
    def test_final_errors_do_not(self, exc):
        assert not is_retryable(exc)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_success()            # success resets the streak
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.acquire("w0")
        assert excinfo.value.retry_after > 0
        assert is_retryable(excinfo.value)

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.05,
                                 half_open_max=1)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.state == "half_open"
        assert breaker.allow()              # the single probe slot
        assert not breaker.allow()          # concurrent probes rejected
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats()["opened"] == 2

    def test_stats_counters(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        breaker.allow()
        stats = breaker.stats()
        assert stats["state"] == "open"
        assert stats["successes"] == 1
        assert stats["failures"] == 2
        assert stats["opened"] == 1
        assert stats["rejected"] == 1

    def test_reset_overrides(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.record_failure()
        assert breaker.state == "open"
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout"):
            CircuitBreaker(reset_timeout=0)

    def test_clone_gets_fresh_state(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        clone = breaker.clone()
        assert breaker.state == "open"
        assert clone.state == "closed"
        assert clone.failure_threshold == 1
