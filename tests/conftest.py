"""Shared fixtures: small, fast datasets and booster configurations."""

import numpy as np
import pytest

from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_anomaly_dataset

# Booster settings that keep unit tests fast while exercising every code
# path (3 folds, iterative updates, final scoring).
FAST_BOOSTER = {
    "n_iterations": 2,
    "hidden": 16,
    "n_layers": 3,
    "epochs_per_iteration": 2,
    "batch_size": 64,
}

FAST_ENSEMBLE = {
    "hidden": 16,
    "epochs": 2,
    "batch_size": 64,
    "min_steps_per_round": 10,
    "first_round_steps": 40,
}


@pytest.fixture(scope="session")
def small_dataset():
    """A 240-sample local-anomaly dataset with standardised features."""
    data = make_anomaly_dataset("local", n_inliers=216, n_anomalies=24,
                                n_features=4, random_state=7)
    X = StandardScaler().fit_transform(data.X)
    return X, data.y


@pytest.fixture(scope="session")
def clustered_dataset():
    """A 2-d clustered-anomaly dataset (easy for global methods)."""
    data = make_anomaly_dataset("clustered", n_inliers=180, n_anomalies=20,
                                n_features=2, random_state=3)
    X = StandardScaler().fit_transform(data.X)
    return X, data.y


@pytest.fixture
def rng():
    return np.random.default_rng(0)
