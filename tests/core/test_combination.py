"""Tests for score-combination utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combination import aom, average, maximization, moa, \
    normalize_scores


def random_score_lists(seed, n=30, k=4):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, rng.uniform(0.5, 10), size=n) for _ in range(k)]


class TestNormalizeScores:
    def test_rank_in_unit_interval(self):
        out = normalize_scores(random_score_lists(0), method="rank")
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_rank_preserves_order(self):
        scores = np.array([3.0, 1.0, 2.0])
        out = normalize_scores([scores], method="rank")[:, 0]
        assert np.array_equal(np.argsort(out), np.argsort(scores))

    def test_zscore_standardises(self):
        out = normalize_scores(random_score_lists(1), method="zscore")
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_unit_bounds(self):
        out = normalize_scores(random_score_lists(2), method="unit")
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            normalize_scores(random_score_lists(0), method="weird")

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            normalize_scores([[1.0, np.nan]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_scores([])


class TestCombiners:
    def test_average_of_identical_is_identity(self):
        scores = np.array([0.1, 0.5, 0.9])
        out = average([scores, scores], normalization="unit")
        np.testing.assert_allclose(out, (scores - 0.1) / 0.8)

    def test_maximization_dominates_average(self):
        lists = random_score_lists(3)
        assert np.all(maximization(lists) >= average(lists) - 1e-12)

    def test_aom_between_average_and_max(self):
        lists = random_score_lists(4, k=6)
        avg = average(lists)
        mx = maximization(lists)
        a = aom(lists, n_buckets=3, random_state=0)
        assert np.all(a >= avg - 1e-9)
        assert np.all(a <= mx + 1e-9)

    def test_moa_between_average_and_max(self):
        lists = random_score_lists(5, k=6)
        avg = average(lists)
        mx = maximization(lists)
        m = moa(lists, n_buckets=3, random_state=0)
        assert np.all(m >= avg - 1e-9)
        assert np.all(m <= mx + 1e-9)

    def test_single_bucket_aom_is_max(self):
        lists = random_score_lists(6)
        np.testing.assert_allclose(
            aom(lists, n_buckets=1, random_state=0), maximization(lists))

    def test_bucket_count_validated(self):
        lists = random_score_lists(7, k=3)
        with pytest.raises(ValueError):
            aom(lists, n_buckets=5)

    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_combiners_bounded_by_rank_normalisation(self, seed):
        lists = random_score_lists(seed)
        for combiner in (average, maximization):
            out = combiner(lists)
            assert out.min() >= 0.0 and out.max() <= 1.0

    def test_combination_improves_over_worst_detector(self):
        """Averaging a good and a random detector beats the random one."""
        from repro.metrics.ranking import auc_roc
        rng = np.random.default_rng(0)
        y = np.array([0] * 90 + [1] * 10)
        good = y + rng.normal(0, 0.3, size=100)
        bad = rng.normal(size=100)
        combined = average([good, bad])
        assert auc_roc(y, combined) > auc_roc(y, bad)
