"""Tests for the k-fold booster ensemble."""

import numpy as np
import pytest

from repro.core.ensemble import FoldEnsemble
from tests.conftest import FAST_ENSEMBLE


class TestInitialize:
    def test_builds_three_folds(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(**FAST_ENSEMBLE, random_state=0).initialize(X)
        assert len(ens._networks) == 3
        assert len(ens._train_indices) == 3

    def test_each_fold_trains_on_two_thirds(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(**FAST_ENSEMBLE, random_state=0).initialize(X)
        for idx in ens._train_indices:
            assert idx.size == pytest.approx(2 * X.shape[0] / 3, abs=2)

    def test_fold_reduction_on_tiny_data(self):
        X = np.random.default_rng(0).normal(size=(2, 3))
        ens = FoldEnsemble(n_folds=3, **{k: v for k, v in
                                         FAST_ENSEMBLE.items()
                                         if k != "hidden"},
                           hidden=4, random_state=0).initialize(X)
        assert len(ens._networks) >= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FoldEnsemble(n_folds=0)
        with pytest.raises(ValueError):
            FoldEnsemble(min_steps_per_round=-1)
        with pytest.raises(ValueError):
            FoldEnsemble(loss="hinge")


class TestTrainRound:
    def test_train_before_init_raises(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(**FAST_ENSEMBLE)
        with pytest.raises(RuntimeError):
            ens.train_round(X, np.zeros(X.shape[0]))

    def test_returns_histories(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(**FAST_ENSEMBLE, random_state=0).initialize(X)
        histories = ens.train_round(X, np.random.default_rng(0).uniform(
            size=X.shape[0]))
        assert len(histories) == 3
        assert all(h.epoch_losses for h in histories)

    def test_first_round_gets_more_epochs(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(hidden=8, epochs=1, batch_size=64,
                           min_steps_per_round=4, first_round_steps=40,
                           random_state=0).initialize(X)
        y = np.random.default_rng(0).uniform(size=X.shape[0])
        first = ens.train_round(X, y)
        second = ens.train_round(X, y)
        assert len(first[0].epoch_losses) > len(second[0].epoch_losses)

    def test_label_length_mismatch(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(**FAST_ENSEMBLE, random_state=0).initialize(X)
        with pytest.raises(ValueError):
            ens.train_round(X, np.zeros(3))

    def test_learns_labels(self, small_dataset):
        X, _ = small_dataset
        target = (X[:, 0] > 0).astype(float)
        ens = FoldEnsemble(hidden=16, min_steps_per_round=150,
                           first_round_steps=300,
                           random_state=0).initialize(X)
        for _ in range(3):
            ens.train_round(X, target)
        pred = ens.predict(X)
        assert np.corrcoef(pred, target)[0, 1] > 0.8


class TestPredict:
    def test_average_of_folds(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(**FAST_ENSEMBLE, random_state=0).initialize(X)
        per_fold = ens.predict_per_fold(X)
        np.testing.assert_allclose(ens.predict(X), per_fold.mean(axis=1))

    def test_per_fold_shape(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(**FAST_ENSEMBLE, random_state=0).initialize(X)
        assert ens.predict_per_fold(X).shape == (X.shape[0], 3)

    def test_predict_before_init_raises(self, small_dataset):
        X, _ = small_dataset
        with pytest.raises(RuntimeError):
            FoldEnsemble(**FAST_ENSEMBLE).predict(X)

    def test_outputs_in_unit_interval(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(**FAST_ENSEMBLE, random_state=0).initialize(X)
        pred = ens.predict(X * 100)
        assert np.all(pred >= 0) and np.all(pred <= 1)

    def test_deterministic(self, small_dataset):
        X, _ = small_dataset
        y = np.random.default_rng(1).uniform(size=X.shape[0])

        def run():
            ens = FoldEnsemble(**FAST_ENSEMBLE, random_state=5).initialize(X)
            ens.train_round(X, y)
            return ens.predict(X)

        np.testing.assert_allclose(run(), run())


class TestStandardizedCache:
    """The design-matrix cache must not serve stale data after in-place
    mutation of the cached array (regression: the key was identity-only)."""

    def _trained(self, X):
        ens = FoldEnsemble(**FAST_ENSEMBLE, random_state=0).initialize(X)
        ens.train_round(X, np.random.default_rng(1).uniform(size=X.shape[0]))
        return ens

    def test_in_place_mutation_invalidates_cache(self, small_dataset):
        X, _ = small_dataset
        ens = self._trained(X)
        work = X.copy()
        stale = ens.predict(work)          # populates the cache for `work`
        work *= 2.0                        # in-place: same object identity
        refreshed = ens.predict(work)
        fresh = ens.predict(work.copy())   # uncached reference
        np.testing.assert_array_equal(refreshed, fresh)
        assert not np.array_equal(refreshed, stale)

    def test_single_element_sum_visible_mutation_detected(self,
                                                          small_dataset):
        X, _ = small_dataset
        ens = self._trained(X)
        work = X.copy()
        ens.predict(work)
        work[3, 1] += 100.0
        np.testing.assert_array_equal(ens.predict(work),
                                      ens.predict(work.copy()))

    def test_cache_still_hits_for_untouched_array(self, small_dataset):
        X, _ = small_dataset
        ens = self._trained(X)
        work = X.copy()
        ens.predict(work)
        cached = ens._cache_Z
        ens.predict(work)
        assert ens._cache_Z is cached      # identity: no recompute

    def test_repeated_predictions_stay_equal(self, small_dataset):
        X, _ = small_dataset
        ens = self._trained(X)
        np.testing.assert_array_equal(ens.predict(X), ens.predict(X))
