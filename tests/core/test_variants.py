"""Tests for the four alternative booster frameworks (Table VI)."""

import numpy as np
import pytest

from repro.core.variants import (
    VARIANT_CLASSES,
    DiscrepancyBooster,
    DiscrepancyStarBooster,
    NaiveBooster,
    SelfBooster,
    make_variant,
)
from repro.detectors import IForest
from tests.conftest import FAST_BOOSTER

FAST_VARIANT = {k: v for k, v in FAST_BOOSTER.items()}


@pytest.fixture(scope="module")
def source_scores(small_dataset):
    X, _ = small_dataset
    return IForest(random_state=0).fit(X).fit_scores()


class TestRegistry:
    def test_four_variants(self):
        assert set(VARIANT_CLASSES) == {
            "naive", "discrepancy", "self", "discrepancy_star"}

    def test_make_variant(self):
        assert isinstance(make_variant("naive"), NaiveBooster)
        assert isinstance(make_variant("discrepancy"), DiscrepancyBooster)
        assert isinstance(make_variant("self"), SelfBooster)
        assert isinstance(make_variant("discrepancy_star"),
                          DiscrepancyStarBooster)

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            make_variant("quantum")


@pytest.mark.parametrize("name", sorted(VARIANT_CLASSES))
class TestVariantContract:
    def test_fit_produces_scores(self, name, small_dataset, source_scores):
        X, _ = small_dataset
        model = make_variant(name, **FAST_VARIANT, random_state=0)
        model.fit(X, source_scores)
        assert model.scores_.shape == (X.shape[0],)
        assert np.all(np.isfinite(model.scores_))

    def test_deterministic(self, name, small_dataset, source_scores):
        X, _ = small_dataset
        a = make_variant(name, **FAST_VARIANT, random_state=4)
        b = make_variant(name, **FAST_VARIANT, random_state=4)
        np.testing.assert_allclose(
            a.fit(X, source_scores).scores_,
            b.fit(X, source_scores).scores_)

    def test_invalid_iterations(self, name):
        with pytest.raises(ValueError):
            make_variant(name, n_iterations=0)


class TestVariantSemantics:
    def test_naive_mimics_teacher(self, small_dataset, source_scores):
        """Static distillation without correction tracks the teacher."""
        X, _ = small_dataset
        model = NaiveBooster(n_iterations=3, hidden=32, random_state=0)
        model.fit(X, source_scores)
        assert np.corrcoef(model.scores_, source_scores)[0, 1] > 0.7

    def test_discrepancy_scores_are_deviations(self, small_dataset,
                                               source_scores):
        X, _ = small_dataset
        model = DiscrepancyBooster(**FAST_VARIANT, random_state=0)
        model.fit(X, source_scores)
        student = model._ensemble.predict(X)
        expected = np.std(np.column_stack([source_scores, student]), axis=1)
        np.testing.assert_allclose(model.scores_, expected)

    def test_discrepancy_score_samples_requires_training_data(
            self, small_dataset, source_scores):
        X, _ = small_dataset
        model = DiscrepancyBooster(**FAST_VARIANT, random_state=0)
        model.fit(X, source_scores)
        with pytest.raises(ValueError, match="training data"):
            model.score_samples(X[:5])

    def test_self_booster_labels_evolve(self, small_dataset, source_scores):
        """Self booster replaces labels each round; its final output need
        not track the teacher as closely as the naive booster."""
        X, _ = small_dataset
        naive = NaiveBooster(**FAST_VARIANT, random_state=0)
        self_b = SelfBooster(**FAST_VARIANT, random_state=0)
        naive.fit(X, source_scores)
        self_b.fit(X, source_scores)
        assert not np.allclose(naive.scores_, self_b.scores_)

    def test_non_discrepancy_score_samples_on_new_data(
            self, small_dataset, source_scores):
        X, _ = small_dataset
        model = SelfBooster(**FAST_VARIANT, random_state=0)
        model.fit(X, source_scores)
        out = model.score_samples(X[:4] * 1.01)
        assert out.shape == (4,)

    def test_unfitted_raises(self, small_dataset):
        X, _ = small_dataset
        with pytest.raises(RuntimeError):
            NaiveBooster(**FAST_VARIANT).score_samples(X)
