"""Batched vs sequential engine parity.

The batched engine's contract (see ``repro.nn.batched``) is *bit-for-bit*
equality with the per-fold sequential loop under a shared random stream,
so every comparison here uses exact equality, not approx.
"""

import numpy as np
import pytest

from repro.core.booster import UADBooster
from repro.core.ensemble import ENGINES, FoldEnsemble
from tests.conftest import FAST_BOOSTER, FAST_ENSEMBLE


def _ensemble_pair(**overrides):
    kwargs = dict(FAST_ENSEMBLE)
    kwargs.update(overrides)
    return (FoldEnsemble(engine="sequential", random_state=11, **kwargs),
            FoldEnsemble(engine="batched", random_state=11, **kwargs))


class TestBoosterParity:
    def test_scores_bit_identical(self, small_dataset):
        X, _ = small_dataset
        source = np.random.default_rng(5).uniform(size=X.shape[0])
        seq = UADBooster(engine="sequential", random_state=3,
                         **FAST_BOOSTER).fit(X, source)
        bat = UADBooster(engine="batched", random_state=3,
                         **FAST_BOOSTER).fit(X, source)
        assert np.array_equal(seq.scores_, bat.scores_)
        assert np.array_equal(seq.pseudo_labels_, bat.pseudo_labels_)

    def test_iteration_traces_bit_identical(self, small_dataset):
        X, _ = small_dataset
        source = np.random.default_rng(5).uniform(size=X.shape[0])
        boosters = [
            UADBooster(engine=eng, random_state=3, **FAST_BOOSTER)
            .fit(X, source)
            for eng in ENGINES
        ]
        for a, b in zip(boosters[0].history_.booster_scores,
                        boosters[1].history_.booster_scores):
            assert np.array_equal(a, b)

    def test_float64_parity(self, small_dataset):
        X, _ = small_dataset
        source = np.random.default_rng(5).uniform(size=X.shape[0])
        seq = UADBooster(engine="sequential", dtype="float64",
                         random_state=3, **FAST_BOOSTER).fit(X, source)
        bat = UADBooster(engine="batched", dtype="float64",
                         random_state=3, **FAST_BOOSTER).fit(X, source)
        assert seq.scores_.dtype == np.float64
        assert np.array_equal(seq.scores_, bat.scores_)

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            FoldEnsemble(engine="turbo")
        with pytest.raises(ValueError, match="dtype"):
            FoldEnsemble(dtype="float16")


class TestEnsembleParity:
    def test_ragged_batches_parity(self, small_dataset):
        # 240 samples, 3 folds -> 160-row splits; batch 64 leaves a ragged
        # 32-row tail every epoch, exercising the per-fold fallback path.
        X, _ = small_dataset
        y = np.random.default_rng(9).uniform(size=X.shape[0])
        seq, bat = _ensemble_pair(batch_size=64)
        for ens in (seq, bat):
            ens.initialize(X)
            ens.train_round(X, y)
            ens.train_round(X, y)
        assert np.array_equal(seq.predict_per_fold(X),
                              bat.predict_per_fold(X))

    def test_histories_match(self, small_dataset):
        X, _ = small_dataset
        y = np.random.default_rng(9).uniform(size=X.shape[0])
        seq, bat = _ensemble_pair()
        h_seq = seq.initialize(X).train_round(X, y)
        h_bat = bat.initialize(X).train_round(X, y)
        assert len(h_seq) == len(h_bat) == 3
        for a, b in zip(h_seq, h_bat):
            assert a.epoch_losses == pytest.approx(b.epoch_losses, abs=0.0)

    def test_mse_loss_parity(self, small_dataset):
        X, _ = small_dataset
        y = np.random.default_rng(9).uniform(size=X.shape[0])
        seq, bat = _ensemble_pair(loss="mse")
        seq.initialize(X).train_round(X, y)
        bat.initialize(X).train_round(X, y)
        assert np.array_equal(seq.predict(X), bat.predict(X))

    def test_predict_on_fresh_data(self, small_dataset):
        # A new array object misses the identity cache and must still be
        # standardised and scored identically by both engines.
        X, _ = small_dataset
        y = np.random.default_rng(9).uniform(size=X.shape[0])
        seq, bat = _ensemble_pair()
        seq.initialize(X).train_round(X, y)
        bat.initialize(X).train_round(X, y)
        X_new = np.random.default_rng(13).normal(size=(17, X.shape[1]))
        assert np.array_equal(seq.predict(X_new), bat.predict(X_new))
        assert seq.predict_per_fold(X_new).shape == (17, 3)


class TestShapeEdgeCases:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_fewer_samples_than_folds(self, engine):
        # n=2 with n_folds=3 collapses to 2 folds; n_folds=min(n_folds, n).
        X = np.random.default_rng(0).normal(size=(2, 3))
        ens = FoldEnsemble(n_folds=3, hidden=4, epochs=1, batch_size=4,
                           min_steps_per_round=2, first_round_steps=2,
                           engine=engine, random_state=0).initialize(X)
        ens.train_round(X, np.array([0.1, 0.9]))
        assert ens.predict_per_fold(X).shape == (2, 2)

    def test_fewer_samples_than_folds_parity(self):
        X = np.random.default_rng(0).normal(size=(2, 3))
        y = np.array([0.1, 0.9])
        scores = []
        for engine in ENGINES:
            ens = FoldEnsemble(n_folds=3, hidden=4, epochs=1, batch_size=4,
                               min_steps_per_round=2, first_round_steps=2,
                               engine=engine, random_state=0).initialize(X)
            ens.train_round(X, y)
            scores.append(ens.predict(X))
        assert np.array_equal(scores[0], scores[1])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_single_fold(self, engine, small_dataset):
        X, _ = small_dataset
        y = np.random.default_rng(9).uniform(size=X.shape[0])
        ens = FoldEnsemble(n_folds=1, engine=engine, random_state=0,
                           **FAST_ENSEMBLE).initialize(X)
        ens.train_round(X, y)
        per_fold = ens.predict_per_fold(X)
        assert per_fold.shape == (X.shape[0], 1)
        assert np.array_equal(ens.predict(X), per_fold[:, 0])

    def test_single_fold_parity(self, small_dataset):
        X, _ = small_dataset
        y = np.random.default_rng(9).uniform(size=X.shape[0])
        scores = []
        for engine in ENGINES:
            ens = FoldEnsemble(n_folds=1, engine=engine, random_state=0,
                               **FAST_ENSEMBLE).initialize(X)
            ens.train_round(X, y)
            scores.append(ens.predict(X))
        assert np.array_equal(scores[0], scores[1])


class TestStandardizedCache:
    def test_same_object_skips_rescaling(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(engine="batched", random_state=0,
                           **FAST_ENSEMBLE).initialize(X)
        Z1 = ens._standardized(X)
        assert ens._standardized(X) is Z1  # identity hit, no recompute

    def test_fresh_equal_array_rescales_consistently(self, small_dataset):
        X, _ = small_dataset
        ens = FoldEnsemble(engine="batched", random_state=0,
                           **FAST_ENSEMBLE).initialize(X)
        Z1 = ens._standardized(X).copy()
        Z2 = ens._standardized(X.copy())
        assert np.array_equal(Z1, Z2)
