"""Tests for pseudo-label update rules, including the error-correction
direction property (Table II case analysis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import self_update, variance_update


class TestVarianceUpdate:
    def test_output_in_unit_interval(self):
        out = variance_update([0.1, 0.9], [0.05, 0.2])
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_zero_variance_is_rescale_only(self):
        y = np.array([0.2, 0.4, 0.8])
        out = variance_update(y, np.zeros(3))
        np.testing.assert_allclose(out, (y - 0.2) / 0.6)

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            variance_update([0.5, 0.5], [0.1, -0.1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            variance_update([0.5], [0.1, 0.2])

    def test_table2_error_correction_direction(self):
        """The paper's case analysis: after the update,
        - FN (low label, high variance) must move up relative to TN;
        - FP (high label, low variance) must move down relative to TP."""
        #            TP    FN    FP    TN
        y = np.array([0.9, 0.1, 0.9, 0.1])
        v = np.array([0.20, 0.20, 0.02, 0.02])
        out = variance_update(y, v)
        fn_minus_tn = out[1] - out[3]
        tp_minus_fp = out[0] - out[2]
        assert fn_minus_tn > 0            # FN rises above TN
        assert tp_minus_fp > 0            # FP falls below TP
        # Old gaps were zero; the update opened them.
        assert fn_minus_tn == pytest.approx(tp_minus_fp)

    def test_repeated_updates_flip_fn_above_fp(self):
        """Iterating the update eventually inverts FN/FP ordering, which is
        the paper's definition of error correction."""
        y = np.array([0.95, 0.05, 0.90, 0.10])  # TP, FN, FP, TN
        v = np.array([0.20, 0.20, 0.02, 0.02])
        for _ in range(30):
            y = variance_update(y, v)
        assert y[1] > y[2]  # FN now scores above FP

    @given(st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_idempotent_bounds(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.uniform(size=12)
        v = rng.uniform(0, 0.25, size=12)
        out = variance_update(y, v)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestSelfUpdate:
    def test_is_minmax(self):
        out = self_update([0.2, 0.6, 0.4])
        np.testing.assert_allclose(out, [0.0, 1.0, 0.5])

    def test_constant_input(self):
        np.testing.assert_array_equal(self_update([0.5, 0.5]), [0.0, 0.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            self_update([0.5, np.nan])
