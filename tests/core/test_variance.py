"""Tests for variance estimation — UADB's correction signal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.variance import (
    group_variance_gap,
    instance_variance,
    variance_history,
)


class TestInstanceVariance:
    def test_constant_rows_zero(self):
        preds = np.tile([[0.3]], (5, 4))
        np.testing.assert_array_equal(instance_variance(preds), np.zeros(5))

    def test_known_value(self):
        preds = np.array([[0.0, 1.0]])
        assert instance_variance(preds)[0] == pytest.approx(0.25)

    def test_single_column_zero(self):
        assert instance_variance(np.array([0.1, 0.9]))[0] == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            instance_variance(np.array([[np.nan, 1.0]]))

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            instance_variance(np.zeros((2, 2, 2)))

    @given(st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_non_negative_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        preds = rng.uniform(size=(int(rng.integers(1, 20)),
                                  int(rng.integers(1, 8))))
        v = instance_variance(preds)
        assert np.all(v >= 0)
        assert np.all(v <= 0.25 + 1e-12)  # max variance of values in [0,1]

    @given(st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_shift_invariance(self, seed):
        rng = np.random.default_rng(seed)
        preds = rng.uniform(size=(6, 4))
        np.testing.assert_allclose(
            instance_variance(preds), instance_variance(preds + 3.0),
            atol=1e-12)


class TestVarianceHistory:
    def test_combines_labels_and_student(self):
        labels = np.array([[0.0], [0.5]])
        student = np.array([1.0, 0.5])
        v = variance_history(labels, student)
        assert v[0] == pytest.approx(0.25)
        assert v[1] == pytest.approx(0.0)

    def test_accepts_multi_column_student(self):
        labels = np.array([[0.5], [0.5]])
        per_fold = np.array([[0.4, 0.6], [0.5, 0.5]])
        v = variance_history(labels, per_fold)
        assert v[0] > v[1]

    def test_1d_labels_accepted(self):
        v = variance_history(np.array([0.1, 0.9]), np.array([0.1, 0.9]))
        np.testing.assert_allclose(v, 0.0)

    def test_row_mismatch(self):
        with pytest.raises(ValueError):
            variance_history(np.zeros((3, 1)), np.zeros(2))


class TestGroupVarianceGap:
    def test_negative_when_anomalies_vary_more(self):
        v = np.array([0.01, 0.01, 0.5, 0.5])
        y = np.array([0, 0, 1, 1])
        assert group_variance_gap(v, y) < 0

    def test_positive_when_normals_vary_more(self):
        v = np.array([0.5, 0.5, 0.01, 0.01])
        y = np.array([0, 0, 1, 1])
        assert group_variance_gap(v, y) > 0

    def test_known_value(self):
        v = np.array([0.1, 0.2])
        y = np.array([0, 1])
        assert group_variance_gap(v, y) == pytest.approx((0.1 - 0.2) / 0.2)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            group_variance_gap(np.ones(3), np.ones(3))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            group_variance_gap(np.ones(3), np.ones(2))
