"""Tests for UADBooster (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.booster import BoosterHistory, UADBooster
from repro.detectors import IForest, LOF
from repro.metrics.ranking import auc_roc
from tests.conftest import FAST_BOOSTER


@pytest.fixture(scope="module")
def fitted_booster(small_dataset):
    X, _ = small_dataset
    source = IForest(random_state=0).fit(X)
    booster = UADBooster(**FAST_BOOSTER, random_state=0)
    booster.fit(X, source)
    return booster


class TestFit:
    def test_accepts_detector(self, small_dataset):
        X, _ = small_dataset
        source = IForest(random_state=0).fit(X)
        booster = UADBooster(**FAST_BOOSTER, random_state=0).fit(X, source)
        assert booster.scores_.shape == (X.shape[0],)

    def test_accepts_raw_scores(self, small_dataset):
        X, _ = small_dataset
        raw = np.random.default_rng(0).uniform(size=X.shape[0]) * 100
        booster = UADBooster(**FAST_BOOSTER, random_state=0).fit(X, raw)
        assert booster.scores_.shape == (X.shape[0],)

    def test_unfitted_detector_rejected(self, small_dataset):
        X, _ = small_dataset
        with pytest.raises(RuntimeError):
            UADBooster(**FAST_BOOSTER).fit(X, IForest())

    def test_score_length_mismatch(self, small_dataset):
        X, _ = small_dataset
        with pytest.raises(ValueError):
            UADBooster(**FAST_BOOSTER).fit(X, np.zeros(7))

    def test_scores_in_unit_interval(self, fitted_booster):
        assert fitted_booster.scores_.min() >= 0.0
        assert fitted_booster.scores_.max() <= 1.0

    def test_pseudo_labels_in_unit_interval(self, fitted_booster):
        assert fitted_booster.pseudo_labels_.min() >= 0.0
        assert fitted_booster.pseudo_labels_.max() <= 1.0

    def test_deterministic(self, small_dataset):
        X, _ = small_dataset
        raw = np.random.default_rng(3).uniform(size=X.shape[0])
        a = UADBooster(**FAST_BOOSTER, random_state=9).fit(X, raw).scores_
        b = UADBooster(**FAST_BOOSTER, random_state=9).fit(X, raw).scores_
        np.testing.assert_allclose(a, b)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            UADBooster(n_iterations=0)


class TestHistory:
    def test_history_lengths(self, fitted_booster):
        h = fitted_booster.history_
        T = FAST_BOOSTER["n_iterations"]
        assert h.n_iterations == T
        assert len(h.pseudo_labels) == T + 1
        assert len(h.booster_scores) == T
        assert len(h.variances) == T

    def test_label_matrix_shape(self, fitted_booster):
        h = fitted_booster.history_
        n = fitted_booster.scores_.shape[0]
        T = FAST_BOOSTER["n_iterations"]
        assert h.pseudo_label_matrix().shape == (n, T + 1)

    def test_variances_non_negative(self, fitted_booster):
        for v in fitted_booster.history_.variances:
            assert np.all(v >= 0)

    def test_history_disabled(self, small_dataset):
        X, _ = small_dataset
        raw = np.random.default_rng(0).uniform(size=X.shape[0])
        booster = UADBooster(**FAST_BOOSTER, record_history=False,
                             random_state=0).fit(X, raw)
        assert booster.history_ is None
        assert booster.scores_ is not None

    def test_empty_history_raises(self):
        with pytest.raises(RuntimeError):
            BoosterHistory().pseudo_label_matrix()


class TestScoring:
    def test_score_samples_new_data(self, fitted_booster, small_dataset):
        X, _ = small_dataset
        scores = fitted_booster.score_samples(X[:5] + 0.01)
        assert scores.shape == (5,)
        assert np.all((0 <= scores) & (scores <= 1))

    def test_predict_threshold(self, fitted_booster, small_dataset):
        X, _ = small_dataset
        labels = fitted_booster.predict(X, threshold=0.5)
        assert set(np.unique(labels)) <= {0, 1}

    def test_unfitted_raises(self, small_dataset):
        X, _ = small_dataset
        with pytest.raises(RuntimeError):
            UADBooster(**FAST_BOOSTER).score_samples(X)


class TestBoosterBehaviour:
    def test_distills_teacher_knowledge(self, small_dataset):
        """With enough training the booster correlates with the teacher."""
        X, _ = small_dataset
        source = IForest(random_state=0).fit(X)
        booster = UADBooster(n_iterations=3, hidden=32,
                             random_state=0).fit(X, source)
        corr = np.corrcoef(booster.scores_, source.fit_scores())[0, 1]
        assert corr > 0.7

    def test_recovers_failing_lof_on_clustered(self, clustered_dataset):
        """The paper's headline case: a neighbour-based teacher fails on a
        tight remote anomaly cluster; the booster recovers much of it."""
        X, y = clustered_dataset
        source = LOF(n_neighbors=10).fit(X)
        teacher_auc = auc_roc(y, source.fit_scores())
        booster = UADBooster(n_iterations=5, random_state=0).fit(X, source)
        booster_auc = auc_roc(y, booster.scores_)
        assert teacher_auc < 0.85  # teacher genuinely imperfect here
        assert booster_auc > teacher_auc - 0.02

    def test_more_folds_supported(self, small_dataset):
        X, _ = small_dataset
        raw = np.random.default_rng(0).uniform(size=X.shape[0])
        booster = UADBooster(**{**FAST_BOOSTER}, n_folds=4,
                             random_state=0).fit(X, raw)
        assert booster._ensemble.predict_per_fold(X).shape[1] == 4
