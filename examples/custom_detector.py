"""Boost a user-defined detector: UADB only needs anomaly scores.

This example defines a deliberately naive detector (distance to the data
mean — a poor assumption for multi-cluster data) and shows that (a) it
plugs into the BaseDetector API in a few lines and (b) UADB can still
work with it, because the booster is model-agnostic.

Run:  python examples/custom_detector.py
"""

import numpy as np

from repro.core import UADBooster
from repro.data import make_anomaly_dataset
from repro.data.preprocessing import StandardScaler
from repro.detectors import BaseDetector
from repro.experiments.diagnostics import correction_summary, label_movement
from repro.metrics import auc_roc


class MeanDistanceDetector(BaseDetector):
    """Toy detector: anomaly score = Euclidean distance to the data mean.

    Works when the data is one blob; fails when inliers form several
    clusters (cluster fringes look anomalous, central anomalies do not).
    """

    def _fit(self, X):
        self._mean = X.mean(axis=0)
        return self._decision_function(X)

    def _decision_function(self, X):
        return np.linalg.norm(X - self._mean, axis=1)


def main():
    data = make_anomaly_dataset("local", n_inliers=700, n_anomalies=80,
                                n_features=5, n_clusters=3, random_state=1)
    X = StandardScaler().fit_transform(data.X)

    source = MeanDistanceDetector().fit(X)
    print(f"custom detector AUCROC : "
          f"{auc_roc(data.y, source.fit_scores()):.4f}")

    booster = UADBooster(random_state=0).fit(X, source)
    print(f"UADB booster AUCROC    : {auc_roc(data.y, booster.scores_):.4f}")

    # Diagnostics: where did the corrections go?
    movement = label_movement(booster.history_)
    summary = correction_summary(booster.history_, data.y)
    print(f"pseudo-labels promoted : {movement['n_promoted']}, "
          f"demoted: {movement['n_demoted']}")
    print(f"teacher errors         : {summary['n_errors_initial']}, "
          f"corrected: {summary['n_corrected']}, "
          f"corrupted: {summary['n_corrupted']}")


if __name__ == "__main__":
    main()
