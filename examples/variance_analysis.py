"""Reproduce the paper's motivating observation (Figs 1-2): anomalies have
higher teacher-student prediction variance than normal samples.

For each dataset we fit an IForest teacher, train an MLP imitator on its
scores, and compare the per-instance variance of the pair between ground-
truth inliers and anomalies.

Run:  python examples/variance_analysis.py [dataset ...]
"""

import sys

from repro.experiments.figures import fig1_instance_variance, fig2_variance_gap
from repro.experiments.reporting import format_fig2

SHOWCASE = ("glass", "musk", "PageBlocks", "thyroid")
SWEEP = ("abalone", "annthyroid", "breastw", "cardio", "fault", "glass",
         "HeartDisease", "Ionosphere", "landsat", "letter", "mammography",
         "musk", "PageBlocks", "Pima", "satellite", "thyroid", "vowels",
         "WDBC", "wine", "yeast")


def main():
    names = tuple(sys.argv[1:]) or SHOWCASE

    print("[Fig 1] per-instance variance by ground truth")
    out = fig1_instance_variance(dataset_names=names, max_samples=600,
                                 max_features=32)
    for name, cell in out.items():
        direction = ("anomalies vary MORE"
                     if cell["mean_abnormal"] > cell["mean_normal"]
                     else "anomalies vary less")
        print(f"  {name:<14s} normal={cell['mean_normal']:.5f} "
              f"abnormal={cell['mean_abnormal']:.5f}  -> {direction}")

    print()
    print(f"[Fig 2] relative variance gap over {len(SWEEP)} datasets")
    gaps = fig2_variance_gap(dataset_names=SWEEP, max_samples=400,
                             max_features=24)
    print(format_fig2(gaps))


if __name__ == "__main__":
    main()
