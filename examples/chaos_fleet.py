"""Chaos-testing walkthrough: a fleet under a seeded fault plan.

Builds a small model store, then drives a 3-worker
:class:`~repro.serving.ScoringFleet` through the resilience layer:

1. a seeded fault plan (``RunContext.faults`` / ``REPRO_FAULTS``) that
   crashes each worker on its 2nd request and drops an early reply;
2. a :class:`~repro.resilience.RetryPolicy` with seeded backoff and a
   :class:`~repro.resilience.Deadline` bounding each request end to end;
3. the punchline: every score returned through the chaos is exactly
   ``np.array_equal`` to a fault-free run — faults change latency,
   never values — and the same plan + seed reproduces the same faults;
4. the ``health()`` verdict moving ok -> degraded -> ok as workers die
   and recover.

The same chaos from the command line::

    REPRO_FAULTS='crash@2; drop@2,model=hbos' REPRO_SEED=0 \\
        repro serve models/ --workers 3

Run:  python examples/chaos_fleet.py [store_dir]
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.data import load_dataset
from repro.data.preprocessing import StandardScaler
from repro.detectors.registry import make_detector
from repro.resilience import Deadline, RetryPolicy
from repro.runtime import RunContext
from repro.serving import (
    ModelStore,
    ScoringFleet,
    ScoringService,
    save_model,
)

FAST = dict(heartbeat_interval=0.1, monitor_interval=0.1,
            request_timeout=3.0)

# Crash every worker on its 2nd request; delay the first three submits
# by 20 ms; drop the 2nd hbos reply (the frontend will time out against
# a live worker and retry).  Trigger points >= 2 guarantee a restarted
# worker serves at least one request, so every pass converges.
PLAN = "crash@2; delay@1x3:0.02; drop@2,model=hbos"


def main():
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("models")

    data = load_dataset("cardio", max_samples=400, max_features=16)
    X = StandardScaler().fit_transform(data.X)
    for name in ("HBOS", "IForest", "ECOD", "PCA"):
        save_model(make_detector(name, random_state=0).fit(X),
                   outdir / name.lower(), data=X)
    store = ModelStore(outdir)
    print(f"saved {len(store.ids())} artifacts to {outdir}/")

    # Fault-free reference answers from the in-process service.
    with ScoringService(store) as single:
        expected = {mid: single.score(mid, X[:8]) for mid in store.ids()}

    policy = RetryPolicy(max_attempts=12, base_delay=0.05, max_delay=1.0,
                         jitter=0.1, seed=0)
    print(f"retry schedule (seeded, reproducible): "
          f"{tuple(round(d, 4) for d in policy.schedule(4))}")

    # The plan rides on the RunContext: start_process serializes it into
    # every fleet worker, so one `with` block arms the whole tree.
    with RunContext(faults=PLAN, seed=0):
        with ScoringFleet(store, n_workers=3, retry_policy=policy,
                          **FAST) as fleet:
            start = time.monotonic()
            for mid in store.ids():
                got = fleet.score(mid, X[:8],
                                  deadline=Deadline.after(60.0))
                assert np.array_equal(got, expected[mid]), mid
            elapsed = time.monotonic() - start
            stats = fleet.stats()
            print(f"scored {len(store.ids())} models through chaos in "
                  f"{elapsed:.1f}s: {stats['total_restarts']} worker "
                  f"restarts, {stats['retries']} retries, "
                  f"{stats['timeouts']} timeouts — all scores exact")

            # Health settles back to full strength once restarts finish.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                health = fleet.health()
                if health["status"] == "ok":
                    break
                time.sleep(0.1)
            print(f"health: {health['status']} "
                  f"({health['healthy_workers']}/{health['n_workers']} "
                  f"workers)")

    print("done: chaos changed latency, never values")


if __name__ == "__main__":
    main()
