"""Export benchmark stand-ins to .npz / .csv for use with other tools.

Run:  python examples/export_datasets.py [outdir]
"""

import sys
from pathlib import Path

from repro.data import load_dataset
from repro.data.io import dataset_to_csv, save_dataset

DATASETS = ("glass", "cardio", "thyroid")


def main():
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("exported")
    outdir.mkdir(parents=True, exist_ok=True)
    for name in DATASETS:
        ds = load_dataset(name, max_samples=600, max_features=32)
        npz = save_dataset(ds, outdir / name)
        csv = dataset_to_csv(ds, outdir / name)
        print(f"{name:10s} n={ds.n_samples:4d} d={ds.n_features:2d} "
              f"anomalies={ds.n_anomalies:3d} -> {npz.name}, {csv.name}")


if __name__ == "__main__":
    main()
