"""Quickstart: boost an Isolation Forest with UADB in ~20 lines.

Run:  python examples/quickstart.py
"""

from repro.core import UADBooster
from repro.data import make_anomaly_dataset
from repro.data.preprocessing import StandardScaler
from repro.detectors import IForest
from repro.metrics import auc_roc, average_precision


def main():
    # 1. A dataset with "local" anomalies (same region as inliers, wrong
    #    local density) — ground truth is used only for evaluation.
    data = make_anomaly_dataset("local", n_inliers=900, n_anomalies=100,
                                n_features=6, random_state=0)
    X = StandardScaler().fit_transform(data.X)

    # 2. Fit any unsupervised detector.  UADB never looks inside it; it
    #    only needs the anomaly scores.
    source = IForest(random_state=0).fit(X)
    source_scores = source.fit_scores()

    # 3. Boost it: iterative pseudo-supervised distillation with
    #    variance-based error correction (paper defaults: T=10, 3-fold MLP
    #    ensemble with 128 hidden units).
    booster = UADBooster(random_state=0).fit(X, source)

    print("Isolation Forest (source model)")
    print(f"  AUCROC = {auc_roc(data.y, source_scores):.4f}")
    print(f"  AP     = {average_precision(data.y, source_scores):.4f}")
    print("UADB booster")
    print(f"  AUCROC = {auc_roc(data.y, booster.scores_):.4f}")
    print(f"  AP     = {average_precision(data.y, booster.scores_):.4f}")

    # 4. The booster scores new data too.
    new_scores = booster.score_samples(X[:5])
    print("scores of the first five samples:",
          [f"{s:.3f}" for s in new_scores])


if __name__ == "__main__":
    main()
