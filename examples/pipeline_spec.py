"""Specs and pipelines — build, sweep, persist, and serve from one JSON.

Shows the spec-driven API end to end: a ``StandardScaler -> IForest ->
UADBooster`` pipeline described as a JSON document is built with
``build_spec``, fitted, round-tripped through ``to_spec`` (bit-identical
scores), swept against a plain detector in the experiment grid, persisted
as one artifact whose manifest records the producing spec, and scored
back through the serving layer — the same workflow as::

    repro boost cardio --spec pipeline.json --save model/
    repro serve model/

Run:  python examples/pipeline_spec.py [artifact_dir]
"""

import json
import sys
from pathlib import Path

import numpy as np

from repro.api import Pipeline, build_spec, canonical_spec, to_spec
from repro.data import load_dataset
from repro.experiments import run_grid
from repro.serving import ScoringService, read_manifest, save_model

PIPELINE_SPEC = {
    "type": "Pipeline",
    "params": {"steps": [
        ["scaler", {"type": "StandardScaler", "params": {}}],
        ["detector", {"type": "IForest", "params": {}}],
        ["booster", {"type": "UADBooster",
                     "params": {"n_iterations": 3, "hidden": 32}}],
    ]},
}


def main():
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("model")
    data = load_dataset("cardio", max_samples=400, max_features=16)

    # 1. one JSON document -> a full scale+detect+boost pipeline
    pipe = build_spec(PIPELINE_SPEC, random_state=0)
    assert isinstance(pipe, Pipeline)
    pipe.fit(data.X)
    print(f"built from spec: {pipe}")

    # 2. spec round-trip reproduces the fit bit-identically
    twin = build_spec(to_spec(pipe)).fit(data.X)
    assert np.array_equal(pipe.score_samples(data.X),
                          twin.score_samples(data.X))
    print(f"round-trip OK; canonical spec is "
          f"{len(canonical_spec(to_spec(pipe)))} bytes of JSON")

    # 3. specs drop straight into the experiment grid next to names
    results = run_grid(
        detectors=("IForest", {"type": "HBOS", "params": {"n_bins": 20}}),
        datasets=(data,), seeds=(0,), n_iterations=2,
        booster_kwargs={"hidden": 32})
    for r in results:
        print(f"grid cell {r.detector:>14s}: "
              f"AUC {r.source_auc:.3f} -> {r.booster_auc:.3f}")

    # 4. the whole pipeline is one artifact; the manifest remembers
    #    the spec that produced it
    path = save_model(pipe, outdir, data=data.X)
    manifest = read_manifest(path)
    print(f"saved {manifest['kind']} to {path}/ "
          f"(producing spec: {json.dumps(manifest['spec'])[:60]}...)")

    # 5. and serves like any other model
    with ScoringService(path) as service:
        scores = service.score(path.name, data.X[:5])
    assert np.array_equal(scores, pipe.score_samples(data.X[:5]))
    print(f"served scores match in-process exactly: {np.round(scores, 4)}")


if __name__ == "__main__":
    main()
