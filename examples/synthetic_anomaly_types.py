"""The paper's Fig 5 scenario: four anomaly types, matched detectors.

For each canonical anomaly type (clustered / global / local / dependency)
we fit the two UAD models the paper pairs with it, boost each with UADB,
and report error counts and the correction rate.

Run:  python examples/synthetic_anomaly_types.py
"""

from repro.experiments.figures import fig5_synthetic_types
from repro.experiments.reporting import format_fig5


def main():
    records = fig5_synthetic_types(n_iterations=10, seed=0,
                                   n_inliers=450, n_anomalies=50)
    print(format_fig5(records))

    print()
    print("Reading the table: the teacher column counts misclassified")
    print("instances at the contamination threshold; the booster column is")
    print("the same count for the UADB booster.  The correction rate is")
    print("the share of the teacher's errors the booster fixed.")


if __name__ == "__main__":
    main()
