"""Production serving walkthrough: the sharded multi-worker fleet.

Builds a store of several fitted detectors, boots a 3-worker
:class:`~repro.serving.ScoringFleet` over it, and demonstrates each
production property in order:

1. exact score parity with the single-process ScoringService;
2. consistent-hash sharding and per-worker warm-start (via ``stats()``);
3. crash recovery — SIGKILL a worker, watch the supervisor restart it,
   and verify the follow-up scores are byte-identical;
4. the HTTP surface (``/healthz``, ``/stats``, ``/score``) with
   structured errors and 503 + ``Retry-After`` backpressure semantics.

The same tier from the command line::

    repro serve models/ --port 8000 --workers 3
    curl http://127.0.0.1:8000/stats

Run:  python examples/serve_fleet.py [store_dir]
"""

import json
import os
import signal
import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.data import load_dataset
from repro.data.preprocessing import StandardScaler
from repro.detectors.registry import make_detector
from repro.serving import (
    ModelStore,
    ScoringFleet,
    ScoringService,
    build_server,
    save_model,
)

FAST = dict(heartbeat_interval=0.1, monitor_interval=0.1)


def main():
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("models")

    data = load_dataset("cardio", max_samples=400, max_features=16)
    X = StandardScaler().fit_transform(data.X)
    for name in ("HBOS", "IForest", "ECOD", "PCA", "LODA", "COPOD"):
        save_model(make_detector(name, random_state=0).fit(X),
                   outdir / name.lower(), data=X)
    store = ModelStore(outdir)
    print(f"saved {len(store.ids())} artifacts to {outdir}/")

    # Reference answers from the single in-process service.
    with ScoringService(store) as single:
        expected = {mid: single.score(mid, X[:8]) for mid in store.ids()}

    with ScoringFleet(store, n_workers=3, **FAST) as fleet:
        # 1. exact parity, model by model
        for mid in store.ids():
            assert np.array_equal(fleet.score(mid, X[:8]), expected[mid])
        print("fleet scores == single-service scores (np.array_equal)")

        # 2. sharding + warm start
        stats = fleet.stats()
        for worker_id, worker in stats["workers"].items():
            print(f"  {worker_id}: pid {worker['pid']}, "
                  f"shard {worker['shard']}")
        assignments = stats["sharding"]["assignments"]

        # 3. crash recovery: SIGKILL the owner of 'hbos'
        victim = assignments["hbos"]
        pid = stats["workers"][victim]["pid"]
        print(f"SIGKILL {victim} (pid {pid}, owns 'hbos')...")
        os.kill(pid, signal.SIGKILL)
        while True:
            stats = fleet.stats()
            if (stats["workers"][victim]["restarts"] >= 1
                    and stats["healthy_workers"] == 3):
                break
            time.sleep(0.1)
        print(f"supervisor restarted {victim} "
              f"(new pid {stats['workers'][victim]['pid']})")
        scores = None
        while scores is None:
            try:
                scores = fleet.score("hbos", X[:8])
            except RuntimeError:      # retryable crash-window rejects
                time.sleep(0.1)
        assert np.array_equal(scores, expected["hbos"])
        print("post-restart scores identical")

    # 4. the same tier over HTTP
    server = build_server(store, port=0, workers=3, **FAST)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        health = json.load(urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=10))
        print(f"GET /healthz -> {health['fleet']}")
        stats = json.load(urllib.request.urlopen(
            f"http://127.0.0.1:{port}/stats", timeout=10))
        print(f"GET /stats   -> {stats['healthy_workers']} healthy, "
              f"{stats['requests']} requests routed")
        body = json.dumps({"model_id": "iforest",
                           "X": X[:2].tolist()}).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/score", data=body,
            headers={"Content-Type": "application/json"})
        payload = json.load(urllib.request.urlopen(request, timeout=10))
        assert np.array_equal(np.array(payload["scores"]),
                              expected["iforest"][:2])
        print(f"POST /score  -> {payload['n']} exact scores over HTTP")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)
    print("done")


if __name__ == "__main__":
    main()
