"""Persist a fitted booster and serve it — artifact, service, HTTP API.

Fits UADB on a benchmark stand-in, saves the booster as a versioned
artifact directory, reloads it (scores are bit-identical), scores through
the micro-batched ScoringService, and finally answers a real HTTP request
against an ephemeral-port server — the same pipeline as::

    repro boost IForest cardio --save model/
    repro serve model/

Run:  python examples/persist_and_serve.py [artifact_dir]
"""

import json
import sys
import threading
import urllib.request
from pathlib import Path

import numpy as np

from repro.core import UADBooster
from repro.data import load_dataset
from repro.data.preprocessing import StandardScaler
from repro.detectors import IForest
from repro.serving import ScoringService, build_server, load_model, \
    read_manifest, save_model


def main():
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("model")

    data = load_dataset("cardio", max_samples=400, max_features=16)
    X = StandardScaler().fit_transform(data.X)
    source = IForest(random_state=0).fit(X)
    booster = UADBooster(n_iterations=3, random_state=0).fit(X, source)

    # 1. persist: manifest.json + payload.npz
    path = save_model(booster, outdir, data=X,
                      extra={"dataset": data.name})
    manifest = read_manifest(path)
    print(f"saved {manifest['kind']} (repro {manifest['repro_version']}, "
          f"format v{manifest['format_version']}) to {path}/")

    # 2. reload: scoring is bit-identical
    loaded = load_model(path)
    assert np.array_equal(loaded.score_samples(X), booster.score_samples(X))
    print("reloaded scores match the in-memory booster exactly")

    # 3. in-process scoring service (LRU cache + micro-batching)
    with ScoringService(path) as service:
        scores = service.score(path.name, X[:5])
        print(f"service scores for 5 rows: {np.round(scores, 4)}")
        print(f"service stats: {service.stats()}")

    # 4. the HTTP API on an ephemeral port
    server = build_server(path, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        body = json.dumps({"X": X[:2].tolist()}).encode("utf-8")
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/score", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.load(response)
        print(f"HTTP /score on port {port} -> {payload}")
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
