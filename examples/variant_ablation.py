"""Compare UADB against the paper's four alternative booster frameworks.

A scaled-down Table VI: for each source model the Origin (teacher), the
Naive / Discrepancy / Self / Discrepancy* boosters, and UADB are evaluated
on several datasets.

Run:  python examples/variant_ablation.py
"""

from repro.experiments import format_table6, table6_variants

DETECTORS = ("IForest", "HBOS", "LOF", "KNN")
DATASETS = ("cardio", "glass", "satellite", "thyroid")


def main():
    print(f"models  : {', '.join(DETECTORS)}")
    print(f"datasets: {', '.join(DATASETS)}")
    print("running five boosters per cell (a few minutes)...")
    table = table6_variants(detectors=DETECTORS, datasets=DATASETS,
                            seeds=(0,), n_iterations=5,
                            max_samples=400, max_features=24)
    print()
    print(format_table6(table))
    print()
    print("Expected shape (paper, Table VI): UADB best on average;")
    print("discrepancy-based scoring clearly worst; Self booster the")
    print("strongest alternative.")


if __name__ == "__main__":
    main()
