"""Sweep all 14 UAD models and their UADB boosters over benchmark datasets.

A scaled-down version of the paper's Table IV protocol: every detector is
fitted on several registry stand-ins, boosted, and the per-model averages
are reported with the Wilcoxon signed-rank p-value.

Cells fan out over REPRO_SWEEP_JOBS worker processes (default: the CPU
count) and finished cells are cached under .uadb-sweep-cache/, so an
interrupted sweep resumes where it stopped.

Run:  python examples/model_sweep.py [dataset ...]
"""

import os
import sys

from repro.detectors import DETECTOR_NAMES
from repro.experiments import format_table4, run_grid, table4_summary

DEFAULT_DATASETS = ("cardio", "fault", "glass", "mammography", "satellite",
                    "thyroid")


def main():
    datasets = tuple(sys.argv[1:]) or DEFAULT_DATASETS
    n_jobs = int(os.environ.get("REPRO_SWEEP_JOBS", os.cpu_count() or 1))
    print(f"datasets: {', '.join(datasets)}")
    print(f"models  : {', '.join(DETECTOR_NAMES)}")
    print(f"running the grid (jobs={n_jobs})...")

    results = run_grid(
        detectors=DETECTOR_NAMES,
        datasets=datasets,
        seeds=(0,),
        n_iterations=10,
        max_samples=400,
        max_features=24,
        progress=lambda msg: print("  " + msg),
        n_jobs=n_jobs,
        cache_dir=".uadb-sweep-cache",
    )
    print()
    print(format_table4(table4_summary(results)))


if __name__ == "__main__":
    main()
