"""Sweep all 14 UAD models and their UADB boosters over benchmark datasets.

A scaled-down version of the paper's Table IV protocol: every detector is
fitted on several registry stand-ins, boosted, and the per-model averages
are reported with the Wilcoxon signed-rank p-value.

Run:  python examples/model_sweep.py [dataset ...]
"""

import sys

from repro.detectors import DETECTOR_NAMES
from repro.experiments import format_table4, run_grid, table4_summary

DEFAULT_DATASETS = ("cardio", "fault", "glass", "mammography", "satellite",
                    "thyroid")


def main():
    datasets = tuple(sys.argv[1:]) or DEFAULT_DATASETS
    print(f"datasets: {', '.join(datasets)}")
    print(f"models  : {', '.join(DETECTOR_NAMES)}")
    print("running the grid (a few minutes)...")

    results = run_grid(
        detectors=DETECTOR_NAMES,
        datasets=datasets,
        seeds=(0,),
        n_iterations=10,
        max_samples=400,
        max_features=24,
        progress=lambda msg: print("  " + msg),
    )
    print()
    print(format_table4(table4_summary(results)))


if __name__ == "__main__":
    main()
