"""Sweep all 14 UAD models and their UADB boosters over benchmark datasets.

A scaled-down version of the paper's Table IV protocol: every detector is
fitted on several registry stand-ins, boosted, and the per-model averages
are reported with the Wilcoxon signed-rank p-value.

Cells fan out under a scoped repro.runtime.RunContext: the CPU count
becomes the job budget (REPRO_BENCH_JOBS overrides it) and the executor
splits the thread budget across workers automatically.  Finished cells
are cached under .uadb-sweep-cache/, so an interrupted sweep resumes
where it stopped.

Run:  python examples/model_sweep.py [dataset ...]
"""

import os
import sys

from repro.detectors import DETECTOR_NAMES
from repro.experiments import format_table4, run_grid, table4_summary
from repro.runtime import RunContext

DEFAULT_DATASETS = ("cardio", "fault", "glass", "mammography", "satellite",
                    "thyroid")


def main():
    datasets = tuple(sys.argv[1:]) or DEFAULT_DATASETS
    # REPRO_SWEEP_JOBS (this example's historical knob) wins, then the
    # runtime's REPRO_BENCH_JOBS, then the CPU count.
    jobs = (int(os.environ.get("REPRO_SWEEP_JOBS", "0") or "0")
            or RunContext.from_env().n_jobs or (os.cpu_count() or 1))
    ctx = RunContext(n_jobs=jobs, cache_dir=".uadb-sweep-cache")
    print(f"datasets: {', '.join(datasets)}")
    print(f"models  : {', '.join(DETECTOR_NAMES)}")
    print(f"running the grid (jobs={ctx.n_jobs})...")

    with ctx:
        results = run_grid(
            detectors=DETECTOR_NAMES,
            datasets=datasets,
            seeds=(0,),
            n_iterations=10,
            max_samples=400,
            max_features=24,
            progress=lambda msg: print("  " + msg),
        )
    print()
    print(format_table4(table4_summary(results)))


if __name__ == "__main__":
    main()
