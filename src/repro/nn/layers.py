"""Trainable layers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["Dense"]


class Dense:
    """Fully-connected layer ``y = x @ W + b``.

    Weights use Kaiming-uniform initialisation (fan-in scaling), matching
    PyTorch's ``nn.Linear`` default, so the booster behaves like the paper's
    PyTorch MLP at initialisation.

    Parameters
    ----------
    in_features, out_features : int
        Input and output dimensionality.
    bias : bool
        Whether to learn an additive bias term.
    random_state : None, int, or numpy.random.Generator
        Source of randomness for initialisation.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 random_state=None):
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = check_random_state(random_state)
        bound = 1.0 / np.sqrt(in_features)
        self.W = rng.uniform(-bound, bound, size=(in_features, out_features))
        self.b = rng.uniform(-bound, bound, size=out_features) if bias else None
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b) if bias else None
        self._x = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (n, {self.in_features}), "
                f"got {x.shape}"
            )
        self._x = x
        out = x @ self.W
        if self.b is not None:
            out = out + self.b
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dW[...] = self._x.T @ grad_out
        if self.b is not None:
            self.db[...] = grad_out.sum(axis=0)
        grad_in = grad_out @ self.W.T
        # Drop the cached input: it is only needed for this backward pass,
        # and holding it pins a full batch per layer between steps.
        self._x = None
        return grad_in

    def astype(self, dtype) -> "Dense":
        """Cast parameters and gradient buffers to ``dtype``.

        A real cast must reallocate the buffers, which orphans any
        optimizer already holding references to them — call this before
        constructing optimizers.  Casting to the current dtype is a no-op.
        """
        if self.W.dtype == np.dtype(dtype):
            return self
        self.W = self.W.astype(dtype)
        self.dW = np.zeros_like(self.W)
        if self.b is not None:
            self.b = self.b.astype(dtype)
            self.db = np.zeros_like(self.b)
        return self

    @property
    def params(self) -> list:
        return [self.W] if self.b is None else [self.W, self.b]

    @property
    def grads(self) -> list:
        return [self.dW] if self.b is None else [self.dW, self.db]

    def get_state(self) -> dict:
        """Persistable layer state (weights, not gradients or caches)."""
        return {
            "in_features": self.in_features,
            "out_features": self.out_features,
            "W": self.W,
            "b": self.b,
        }

    def set_state(self, state: dict) -> "Dense":
        """Restore a layer from :meth:`get_state` output.

        Gradient buffers are reallocated to match the restored weights, so
        call this before constructing optimizers over :attr:`grads`.
        """
        self.in_features = int(state["in_features"])
        self.out_features = int(state["out_features"])
        self.W = np.asarray(state["W"])
        if self.W.shape != (self.in_features, self.out_features):
            raise ValueError(
                f"W shape {self.W.shape} does not match "
                f"({self.in_features}, {self.out_features})"
            )
        b = state["b"]
        self.b = None if b is None else np.asarray(b)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b) if self.b is not None else None
        self._x = None
        return self

    def __repr__(self) -> str:
        return (
            f"Dense({self.in_features}, {self.out_features}, "
            f"bias={self.b is not None})"
        )
