"""A small feed-forward neural-network library on numpy.

This substrate replaces the paper's PyTorch dependency.  It provides exactly
what UADB and DeepSVDD need: dense layers, common activations, regression
losses, SGD/Adam optimizers, and a mini-batch training loop — all with
explicit, testable forward/backward passes.
"""

from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.batched import (
    BatchedAdam,
    BatchedBCELoss,
    BatchedLinear,
    BatchedMSELoss,
    link_networks,
    scatter_networks,
    stack_networks,
)
from repro.nn.layers import Dense
from repro.nn.losses import BCELoss, MSELoss
from repro.nn.network import Sequential, build_mlp
from repro.nn.optimizers import SGD, Adam
from repro.nn.training import TrainingHistory, iterate_minibatches, train

__all__ = [
    "Identity",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "BatchedAdam",
    "BatchedBCELoss",
    "BatchedLinear",
    "BatchedMSELoss",
    "link_networks",
    "scatter_networks",
    "stack_networks",
    "Dense",
    "BCELoss",
    "MSELoss",
    "Sequential",
    "build_mlp",
    "SGD",
    "Adam",
    "TrainingHistory",
    "iterate_minibatches",
    "train",
]
