"""Regression losses for pseudo-supervised booster training."""

from __future__ import annotations

import numpy as np

__all__ = ["MSELoss", "BCELoss"]


class MSELoss:
    """Mean squared error ``mean((pred - target)^2)``."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        if pred.shape != target.shape:
            raise ValueError(
                f"shape mismatch: pred {pred.shape} vs target {target.shape}"
            )
        self._diff = pred - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        """Gradient of the loss w.r.t. the prediction."""
        if getattr(self, "_diff", None) is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


class BCELoss:
    """Binary cross-entropy on probabilities in (0, 1).

    Inputs are clipped to ``[eps, 1-eps]`` for numerical stability, which is
    the standard behaviour of framework implementations.
    """

    def __init__(self, eps: float = 1e-7):
        if not 0 < eps < 0.5:
            raise ValueError(f"eps must be in (0, 0.5), got {eps}")
        self.eps = eps
        self._pred = None
        self._target = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        if pred.shape != target.shape:
            raise ValueError(
                f"shape mismatch: pred {pred.shape} vs target {target.shape}"
            )
        p = np.clip(pred, self.eps, 1.0 - self.eps)
        self._pred = p
        self._target = target
        loss = -(target * np.log(p) + (1.0 - target) * np.log(1.0 - p))
        return float(np.mean(loss))

    def backward(self) -> np.ndarray:
        if self._pred is None:
            raise RuntimeError("backward called before forward")
        p, t = self._pred, self._target
        return (p - t) / (p * (1.0 - p)) / p.size
