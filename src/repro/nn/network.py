"""Sequential network container and the booster MLP factory."""

from __future__ import annotations

import numpy as np

from repro.nn.activations import Identity, ReLU, Sigmoid
from repro.nn.layers import Dense
from repro.utils.rng import check_random_state, spawn_rng

__all__ = ["Sequential", "build_mlp"]


class Sequential:
    """A stack of layers applied in order, with reverse-order backprop."""

    def __init__(self, layers: list):
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    @property
    def params(self) -> list:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list:
        return [g for layer in self.layers for g in layer.grads]

    def astype(self, dtype) -> "Sequential":
        """Cast every layer's parameters to ``dtype``.

        The booster trains in float32 (the reference implementation's
        PyTorch default); detectors that reuse this container keep float64.
        A real cast reallocates the parameter/gradient buffers, so call
        this before constructing optimizers over :attr:`params`/
        :attr:`grads` (casting to the current dtype is a no-op).
        """
        for layer in self.layers:
            cast = getattr(layer, "astype", None)
            if cast is not None:
                cast(dtype)
        return self

    def release_caches(self) -> "Sequential":
        """Drop the per-layer forward caches kept for ``backward``.

        Inference-only passes (scoring) never call ``backward``, which is
        what normally frees these batch-sized buffers — call this after
        such a pass so a long-lived network doesn't pin its last batch.
        """
        for layer in self.layers:
            for attr in ("_x", "_mask", "_out"):
                if hasattr(layer, attr):
                    setattr(layer, attr, None)
        return self

    def get_state(self) -> dict:
        """Persistable network state: the layer list itself.

        Layers are encoded recursively by the :mod:`repro.serving.state`
        codec (Dense via its own ``get_state``, activations by type), so
        the architecture round-trips along with the weights.
        """
        return {"layers": list(self.layers)}

    def set_state(self, state: dict) -> "Sequential":
        """Restore a network from :meth:`get_state` output."""
        layers = list(state["layers"])
        if not layers:
            raise ValueError("Sequential state must contain layers")
        self.layers = layers
        return self

    def get_weights(self) -> list:
        """Copies of all parameters (for checkpointing)."""
        return [p.copy() for p in self.params]

    def set_weights(self, weights: list) -> None:
        """Load parameters previously returned by :meth:`get_weights`."""
        params = self.params
        if len(weights) != len(params):
            raise ValueError(
                f"expected {len(params)} arrays, got {len(weights)}"
            )
        for p, w in zip(params, weights):
            if p.shape != w.shape:
                raise ValueError(f"shape mismatch: {p.shape} vs {w.shape}")
            p[...] = w

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"


def build_mlp(in_features: int, hidden: int = 128, n_layers: int = 3,
              out_features: int = 1, output: str = "sigmoid",
              random_state=None) -> Sequential:
    """Build the paper's booster architecture.

    A fully-connected MLP with ``n_layers`` Dense layers (so ``n_layers - 1``
    hidden layers of width ``hidden`` with ReLU) and a sigmoid output so the
    predicted anomaly score lies in [0, 1].  The paper's default is a 3-layer
    MLP with 128 hidden units.

    Parameters
    ----------
    output : {'sigmoid', 'linear'}
        Output activation; DeepSVDD uses a linear embedding head.
    """
    if n_layers < 1:
        raise ValueError(f"n_layers must be >= 1, got {n_layers}")
    if output not in ("sigmoid", "linear"):
        raise ValueError(f"unknown output activation: {output!r}")
    rng = check_random_state(random_state)
    rngs = spawn_rng(rng, n_layers)

    layers = []
    prev = in_features
    for i in range(n_layers - 1):
        layers.append(Dense(prev, hidden, random_state=rngs[i]))
        layers.append(ReLU())
        prev = hidden
    layers.append(Dense(prev, out_features, random_state=rngs[-1]))
    layers.append(Sigmoid() if output == "sigmoid" else Identity())
    return Sequential(layers)
