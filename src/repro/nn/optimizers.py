"""First-order optimizers operating on parameter/gradient lists in place."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list, grads: list, lr: float = 0.01,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if len(params) != len(grads):
            raise ValueError("params and grads must have equal length")
        self.params = params
        self.grads = grads
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        for p, g, v in zip(self.params, self.grads, self._velocity):
            if self.momentum > 0:
                v *= self.momentum
                v += g
                p -= self.lr * v
            else:
                p -= self.lr * g


class Adam:
    """Adam optimizer (Kingma & Ba, 2015) with bias correction.

    Defaults match the paper's booster setup: ``lr=1e-3``, ``betas=(0.9,
    0.999)``, ``eps=1e-8`` — the PyTorch defaults.
    """

    def __init__(self, params: list, grads: list, lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if len(params) != len(grads):
            raise ValueError("params and grads must have equal length")
        self.params = params
        self.grads = grads
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def get_state(self) -> dict:
        """Hyper-parameters plus moment state (not the param bindings)."""
        return {
            "lr": self.lr,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "t": self._t,
            "m": self._m,
            "v": self._v,
        }

    def set_state(self, state: dict) -> "Adam":
        """Restore moment state into an optimizer already bound to params.

        The optimizer must have been constructed over the same parameter
        list (same order and shapes) that produced the state; moments are
        copied into the existing buffers so any aliasing is preserved.
        """
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self._t = int(state["t"])
        if len(state["m"]) != len(self._m):
            raise ValueError(
                f"state has {len(state['m'])} moment arrays, optimizer "
                f"has {len(self._m)} parameters"
            )
        for m, v, ms, vs in zip(self._m, self._v, state["m"], state["v"]):
            m[...] = ms
            v[...] = vs
        return self

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, g, m, v in zip(self.params, self.grads, self._m, self._v):
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g**2
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
