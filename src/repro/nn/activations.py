"""Element-wise activation layers with explicit backward passes."""

from __future__ import annotations

import numpy as np

__all__ = ["Identity", "ReLU", "LeakyReLU", "Sigmoid", "Tanh"]


class _Activation:
    """Base class: stateless layer with cached forward input/output."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> list:
        return []

    @property
    def grads(self) -> list:
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(_Activation):
    """Pass-through activation (linear output layer)."""

    def forward(self, x):
        return x

    def backward(self, grad_out):
        return grad_out


class ReLU(_Activation):
    """Rectified linear unit: ``max(0, x)``."""

    def __init__(self):
        self._mask = None

    def forward(self, x):
        self._mask = x > 0
        # np.maximum is a single ufunc pass; np.where costs ~10x more on
        # the booster's hidden activations and dominated its training time.
        return np.maximum(x, 0.0)

    def backward(self, grad_out):
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out * self._mask
        self._mask = None  # release the batch-sized cache between steps
        return grad_in


class LeakyReLU(_Activation):
    """Leaky ReLU: ``x`` for positive input, ``alpha * x`` otherwise."""

    def __init__(self, alpha: float = 0.01):
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self._mask = None

    def forward(self, x):
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad_out):
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out * np.where(self._mask, 1.0, self.alpha)
        self._mask = None  # release the batch-sized cache between steps
        return grad_in

    def __repr__(self):
        return f"LeakyReLU(alpha={self.alpha})"


class Sigmoid(_Activation):
    """Logistic sigmoid, numerically stable for large |x|."""

    def __init__(self):
        self._out = None

    def forward(self, x):
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad_out):
        if self._out is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out * self._out * (1.0 - self._out)
        self._out = None  # release the batch-sized cache between steps
        return grad_in


class Tanh(_Activation):
    """Hyperbolic tangent."""

    def __init__(self):
        self._out = None

    def forward(self, x):
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out):
        if self._out is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out * (1.0 - self._out**2)
        self._out = None  # release the batch-sized cache between steps
        return grad_in
