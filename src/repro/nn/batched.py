"""Batched fold-parallel network engine.

The UADB booster trains ``K`` identical MLPs (one per fold) for many small
Adam steps.  Running those networks one after another wastes most of the
wall-clock on Python/numpy call overhead: each step touches tiny matrices.
This module stacks the ``K`` networks' parameters into leading-axis tensors
(``(K, d_in, d_out)`` weights, ``(K, 1, d_out)`` biases) so a single
broadcast ``matmul`` per layer advances *all* folds at once.

Numerical contract
------------------
The batched primitives are **bit-for-bit identical** to the per-fold path
when driven with the same data and the same random stream:

* ``np.matmul`` on a stacked ``(K, n, d)`` operand performs the same GEMM
  per slice as the 2-d ``x @ W`` call, as long as the per-slice shapes
  match the 2-d shapes exactly.  (BLAS selects kernels by shape, so *any*
  padding of ragged batches breaks bitwise equality — the training engine
  therefore only takes the stacked path for steps whose per-fold batches
  all have the same size, and runs ragged tail steps through the per-fold
  2-d layers instead; see ``FoldEnsemble._train_round_batched``.)
* elementwise activations, losses, and Adam updates are shape-agnostic and
  bit-identical on stacked arrays;
* Adam bias corrections use Python scalar ``beta ** t`` per model — the
  scalar and :func:`np.power` results differ in the last ulp for some
  exponents, and the sequential optimizer uses the scalar form.

:func:`link_networks` rebinds the per-fold networks' parameters to views
of the stacked tensors, so both representations share storage and stay in
sync whichever path trained last.  ``tests/core/test_engine_parity.py``
asserts the resulting booster scores are exactly equal across engines.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import LeakyReLU
from repro.nn.layers import Dense
from repro.nn.network import Sequential

__all__ = [
    "BatchedLinear",
    "BatchedMLP",
    "BatchedAdam",
    "BatchedBCELoss",
    "BatchedMSELoss",
    "stack_networks",
    "scatter_networks",
    "link_networks",
]


class BatchedMLP(Sequential):
    """A :class:`Sequential` of stacked layers with fused parameter storage.

    ``flat_params`` and ``flat_grads`` are single contiguous buffers; every
    :class:`BatchedLinear` weight/bias (and its gradient) is a reshaped
    view into them.  Optimizers can then update the whole ensemble with a
    handful of ufunc calls on one array instead of dozens on small
    per-layer tensors — elementwise arithmetic is identical either way.
    """

    def __init__(self, layers: list, flat_params: np.ndarray,
                 flat_grads: np.ndarray):
        super().__init__(layers)
        self.flat_params = flat_params
        self.flat_grads = flat_grads


class BatchedLinear:
    """``K`` stacked :class:`~repro.nn.layers.Dense` layers.

    Applies ``out[k] = x[k] @ W[k] + b[k]`` for every model ``k`` in one
    broadcast ``matmul``.  The input may have a leading axis of ``1`` (a
    shared design matrix broadcast to all models) or ``n_models``.
    """

    def __init__(self, W: np.ndarray, b: np.ndarray | None):
        if W.ndim != 3:
            raise ValueError(f"W must be (K, d_in, d_out), got {W.shape}")
        if b is not None and b.shape != (W.shape[0], 1, W.shape[2]):
            raise ValueError(
                f"b must be {(W.shape[0], 1, W.shape[2])}, got {b.shape}"
            )
        self.W = W
        self.b = b
        self.dW = np.zeros_like(W)
        self.db = np.zeros_like(b) if b is not None else None
        self._x = None

    @property
    def n_models(self) -> int:
        return self.W.shape[0]

    @property
    def in_features(self) -> int:
        return self.W.shape[1]

    @property
    def out_features(self) -> int:
        return self.W.shape[2]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if (x.ndim != 3 or x.shape[2] != self.in_features
                or x.shape[0] not in (1, self.n_models)):
            raise ValueError(
                f"expected input of shape (1 | {self.n_models}, n, "
                f"{self.in_features}), got {x.shape}"
            )
        self._x = x
        out = np.matmul(x, self.W)
        if self.b is not None:
            out = out + self.b
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dW[...] = np.matmul(np.swapaxes(self._x, 1, 2), grad_out)
        if self.b is not None:
            self.db[...] = grad_out.sum(axis=1, keepdims=True)
        grad_in = np.matmul(grad_out, np.swapaxes(self.W, 1, 2))
        # Drop the cached input: it is only needed for this backward pass,
        # and holding it pins a full stacked batch per layer between steps.
        self._x = None
        return grad_in

    @property
    def params(self) -> list:
        return [self.W] if self.b is None else [self.W, self.b]

    @property
    def grads(self) -> list:
        return [self.dW] if self.b is None else [self.dW, self.db]

    def __repr__(self) -> str:
        return (
            f"BatchedLinear(K={self.n_models}, {self.in_features}, "
            f"{self.out_features}, bias={self.b is not None})"
        )


def stack_networks(networks: list) -> BatchedMLP:
    """Stack ``K`` architecturally-identical :class:`Sequential` MLPs.

    Dense layers become :class:`BatchedLinear` layers whose parameters are
    views into the returned :class:`BatchedMLP`'s fused buffers, holding
    copies of the per-network values; activation layers are shape-agnostic
    and are re-instantiated as-is.  The source networks are left
    untouched — use :func:`link_networks` to make them share the stacked
    storage, or :func:`scatter_networks` to copy trained parameters back.
    """
    if not networks:
        raise ValueError("need at least one network to stack")
    first = networks[0]
    for net in networks[1:]:
        if len(net.layers) != len(first.layers):
            raise ValueError("networks must share the same architecture")
    K = len(networks)
    dense_layers = [ly for ly in first.layers if isinstance(ly, Dense)]
    total = sum(
        K * ly.in_features * ly.out_features
        + (K * ly.out_features if ly.b is not None else 0)
        for ly in dense_layers
    )
    dtype = dense_layers[0].W.dtype if dense_layers else np.float64
    flat_params = np.empty(total, dtype=dtype)
    flat_grads = np.zeros(total, dtype=dtype)

    offset = 0

    def carve(shape):
        nonlocal offset
        size = int(np.prod(shape))
        param = flat_params[offset:offset + size].reshape(shape)
        grad = flat_grads[offset:offset + size].reshape(shape)
        offset += size
        return param, grad

    layers = []
    for i, layer in enumerate(first.layers):
        if isinstance(layer, Dense):
            W, dW = carve((K, layer.in_features, layer.out_features))
            W[...] = np.stack([net.layers[i].W for net in networks])
            b = db = None
            if layer.b is not None:
                b, db = carve((K, 1, layer.out_features))
                b[...] = np.stack(
                    [net.layers[i].b for net in networks])[:, None, :]
            linear = BatchedLinear.__new__(BatchedLinear)
            linear.W, linear.b = W, b
            linear.dW, linear.db = dW, db
            linear._x = None
            layers.append(linear)
        elif isinstance(layer, LeakyReLU):
            layers.append(LeakyReLU(alpha=layer.alpha))
        else:
            layers.append(type(layer)())
    return BatchedMLP(layers, flat_params, flat_grads)


def link_networks(batched: Sequential, networks: list) -> None:
    """Rebind each per-fold network's parameters to stacked-tensor views.

    After linking, ``networks[k]``'s Dense weights alias ``W[k]`` / ``b[k]``
    of the corresponding :class:`BatchedLinear`, so updates through either
    representation are immediately visible in the other.  Gradient buffers
    stay per-network (the stacked optimizer owns the stacked ones).
    """
    for i, layer in enumerate(batched.layers):
        if not isinstance(layer, BatchedLinear):
            continue
        for k, net in enumerate(networks):
            net.layers[i].W = layer.W[k]
            if layer.b is not None:
                net.layers[i].b = layer.b[k, 0]


def scatter_networks(batched: Sequential, networks: list) -> None:
    """Copy a stacked network's parameters back into the per-fold MLPs."""
    for i, layer in enumerate(batched.layers):
        if not isinstance(layer, BatchedLinear):
            continue
        for k, net in enumerate(networks):
            net.layers[i].W[...] = layer.W[k]
            if net.layers[i].b is not None:
                net.layers[i].b[...] = layer.b[k, 0]


class BatchedAdam:
    """Adam over stacked parameters with per-model step counters.

    Folds may run different numbers of steps per round (their train splits
    can differ in size, changing the epoch count), so each model keeps its
    own timestep for bias correction and an ``active`` mask selects which
    models a step updates.  When every model is active at the same
    timestep — the overwhelmingly common case — the update is one
    whole-array operation per parameter.

    Gradients for a step may come from the stacked backward pass or be
    written into the stacked ``grads`` buffers per model (the ragged-step
    path); the update arithmetic is identical either way.
    """

    def __init__(self, params: list, grads: list, n_models: int,
                 lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8, flat_params: np.ndarray | None = None,
                 flat_grads: np.ndarray | None = None):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if len(params) != len(grads):
            raise ValueError("params and grads must have equal length")
        for p in params:
            if p.shape[0] != n_models:
                raise ValueError(
                    f"every parameter must have leading axis {n_models}, "
                    f"got {p.shape}"
                )
        self.params = params
        self.grads = grads
        self.n_models = n_models
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        # With fused storage (``BatchedMLP.flat_params``/``flat_grads``,
        # of which ``params``/``grads`` must be ordered views), the
        # all-models step runs on the single flat buffer; moment state is
        # allocated flat with matching per-parameter views for the
        # subset path.  Elementwise arithmetic is identical either way.
        self.flat_params = flat_params
        self.flat_grads = flat_grads
        if flat_params is not None:
            total = sum(p.size for p in params)
            if flat_params.size != total or flat_grads is None \
                    or flat_grads.size != total:
                raise ValueError(
                    "flat_params/flat_grads must cover exactly the given "
                    "params/grads"
                )
            self._m_flat = np.zeros_like(flat_params)
            self._v_flat = np.zeros_like(flat_params)
            self._m, self._v = [], []
            offset = 0
            for p in params:
                self._m.append(
                    self._m_flat[offset:offset + p.size].reshape(p.shape))
                self._v.append(
                    self._v_flat[offset:offset + p.size].reshape(p.shape))
                offset += p.size
        else:
            self._m_flat = self._v_flat = None
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        # Python ints: bias corrections must use scalar ``beta ** t`` to
        # match the sequential optimizer bit-for-bit.
        self._t = [0] * n_models

    def get_state(self) -> dict:
        """Hyper-parameters, per-model timesteps, and moment buffers."""
        return {
            "lr": self.lr,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "t": list(self._t),
            "m": self._m,
            "v": self._v,
        }

    def set_state(self, state: dict) -> "BatchedAdam":
        """Restore moment state into an optimizer bound to fresh params.

        Moments are copied *into* the existing buffers (which for fused
        storage are views of ``_m_flat``/``_v_flat``), so the flat-path
        and per-parameter views stay consistent.
        """
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        t = [int(x) for x in state["t"]]
        if len(t) != self.n_models:
            raise ValueError(
                f"state has {len(t)} timesteps for {self.n_models} models"
            )
        self._t = t
        if len(state["m"]) != len(self._m):
            raise ValueError(
                f"state has {len(state['m'])} moment arrays, optimizer "
                f"has {len(self._m)} parameters"
            )
        for m, v, ms, vs in zip(self._m, self._v, state["m"], state["v"]):
            m[...] = ms
            v[...] = vs
        return self

    def step(self, active=None) -> None:
        if active is None:
            live = list(range(self.n_models))
        else:
            live = [k for k in range(self.n_models) if active[k]]
        if not live:
            return
        for k in live:
            self._t[k] += 1
        # Group models by timestep: models drop out within a round only
        # after their last step, but timesteps can diverge across rounds.
        groups = {}
        for k in live:
            groups.setdefault(self._t[k], []).append(k)
        for t, ks in groups.items():
            bias1 = 1.0 - self.beta1 ** t
            bias2 = 1.0 - self.beta2 ** t
            if len(ks) == self.n_models:
                self._step_all(bias1, bias2)
            else:
                self._step_subset(np.array(ks), bias1, bias2)

    def _step_all(self, bias1: float, bias2: float) -> None:
        b1, b2 = self.beta1, self.beta2
        if self.flat_params is not None:
            quads = [(self.flat_params, self.flat_grads,
                      self._m_flat, self._v_flat)]
        else:
            quads = zip(self.params, self.grads, self._m, self._v)
        for p, g, m, v in quads:
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g**2
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _step_subset(self, sel: np.ndarray, bias1: float,
                     bias2: float) -> None:
        b1, b2 = self.beta1, self.beta2
        for p, g, m, v in zip(self.params, self.grads, self._m, self._v):
            ms, vs, gs = m[sel], v[sel], g[sel]
            ms *= b1
            ms += (1.0 - b1) * gs
            vs *= b2
            vs += (1.0 - b2) * gs**2
            m[sel] = ms
            v[sel] = vs
            m_hat = ms / bias1
            v_hat = vs / bias2
            p[sel] = p[sel] - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class _BatchedLoss:
    """Base for per-model losses on ``(K, B, 1)`` stacks of equal batches.

    ``forward`` returns one mean-loss float per model, each computed over
    that model's ``B`` rows exactly as the per-fold loss would.
    """

    def __init__(self):
        self._grad = None

    @staticmethod
    def _per_model_means(elems: np.ndarray) -> list:
        # One reduction call; bit-identical to per-slice np.mean.
        return [float(val) for val in elems.mean(axis=(1, 2))]

    def backward(self) -> np.ndarray:
        if self._grad is None:
            raise RuntimeError("backward called before forward")
        return self._grad


class BatchedMSELoss(_BatchedLoss):
    """Per-model MSE, bit-identical to :class:`~repro.nn.losses.MSELoss`."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> list:
        diff = pred - target
        per_model_size = pred.shape[1] * pred.shape[2]
        self._grad = 2.0 * diff / per_model_size
        return self._per_model_means(diff**2)


class BatchedBCELoss(_BatchedLoss):
    """Per-model BCE, bit-identical to :class:`~repro.nn.losses.BCELoss`."""

    def __init__(self, eps: float = 1e-7):
        super().__init__()
        if not 0 < eps < 0.5:
            raise ValueError(f"eps must be in (0, 0.5), got {eps}")
        self.eps = eps

    def forward(self, pred: np.ndarray, target: np.ndarray) -> list:
        p = np.clip(pred, self.eps, 1.0 - self.eps)
        per_model_size = pred.shape[1] * pred.shape[2]
        self._grad = (p - target) / (p * (1.0 - p)) / per_model_size
        return self._per_model_means(
            -(target * np.log(p) + (1.0 - target) * np.log(1.0 - p)))
