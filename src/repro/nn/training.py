"""Mini-batch training loop shared by the booster and DeepSVDD."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import MSELoss
from repro.nn.optimizers import Adam
from repro.utils.rng import check_random_state

__all__ = ["TrainingHistory", "iterate_minibatches", "train"]


@dataclass
class TrainingHistory:
    """Per-epoch mean losses recorded by :func:`train`."""

    epoch_losses: list = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise RuntimeError("no epochs recorded")
        return self.epoch_losses[-1]


def iterate_minibatches(n_samples: int, batch_size: int,
                        rng: np.random.Generator, shuffle: bool = True):
    """Yield index arrays covering ``range(n_samples)`` in batches."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    indices = np.arange(n_samples)
    if shuffle:
        rng.shuffle(indices)
    for start in range(0, n_samples, batch_size):
        yield indices[start:start + batch_size]


def train(network, X: np.ndarray, y: np.ndarray, epochs: int = 10,
          batch_size: int = 256, lr: float = 1e-3, loss=None, optimizer=None,
          random_state=None) -> TrainingHistory:
    """Train ``network`` to regress ``y`` from ``X``.

    Defaults mirror the paper's booster setup: Adam with ``lr=1e-3``,
    ``batch_size=256``, 10 epochs per call.  The optimizer may be supplied by
    the caller so its moment state persists across repeated calls (as in the
    iterative UADB loop).  A ``random_state`` of ``None`` resolves through
    the active :class:`repro.runtime.RunContext`'s ``seed`` field before
    falling back to fresh entropy, so a context-pinned run shuffles
    reproducibly without threading seeds by hand.
    """
    from repro.runtime import resolve_seed

    if epochs < 0:
        raise ValueError(f"epochs must be non-negative, got {epochs}")
    X = np.asarray(X)
    if X.dtype not in (np.float32, np.float64):
        X = X.astype(np.float64)
    # Targets follow the design matrix's precision (float32 booster
    # training feeds float32 features; everything else stays float64).
    target = np.asarray(y, dtype=X.dtype).reshape(X.shape[0], -1)
    rng = check_random_state(resolve_seed(random_state))
    loss = loss if loss is not None else MSELoss()
    if optimizer is None:
        optimizer = Adam(network.params, network.grads, lr=lr)

    history = TrainingHistory()
    for _ in range(epochs):
        batch_losses = []
        for batch in iterate_minibatches(X.shape[0], batch_size, rng):
            pred = network.forward(X[batch])
            batch_loss = loss.forward(pred, target[batch])
            network.backward(loss.backward())
            optimizer.step()
            batch_losses.append(batch_loss)
        history.epoch_losses.append(float(np.mean(batch_losses)))
    return history
