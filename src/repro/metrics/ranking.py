"""Threshold-free ranking metrics for anomaly detection.

The paper evaluates with AUCROC (area under the ROC curve) and AP (average
precision); both treat the anomaly score as a ranking and are insensitive to
monotone rescaling — which is what makes them appropriate for unsupervised
detectors whose raw score scales differ wildly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_consistent_length, check_scores

__all__ = ["auc_roc", "average_precision", "precision_at_n"]


def _validate(y_true, scores):
    y = np.asarray(y_true).ravel().astype(np.float64)
    s = check_scores(scores)
    check_consistent_length(y, s)
    if not np.all(np.isin(y, (0.0, 1.0))):
        raise ValueError("y_true must contain only 0 (inlier) and 1 (anomaly)")
    n_pos = int(y.sum())
    if n_pos == 0 or n_pos == y.size:
        raise ValueError(
            "y_true must contain both classes to compute a ranking metric"
        )
    return y, s


def _tie_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties assigned the midrank, as in Mann-Whitney."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        # midrank for the tied block [i, j]
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def auc_roc(y_true, scores) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Equivalent to the probability that a uniformly random anomaly receives a
    higher score than a uniformly random inlier (ties count one half).
    """
    y, s = _validate(y_true, scores)
    ranks = _tie_ranks(s)
    n_pos = y.sum()
    n_neg = y.size - n_pos
    rank_sum_pos = ranks[y == 1.0].sum()
    u_stat = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_stat / (n_pos * n_neg))


def average_precision(y_true, scores) -> float:
    """Average precision (area under the precision-recall curve).

    Uses the standard step-wise interpolation: AP = sum over ranked positives
    of precision-at-that-rank divided by the number of positives.  Ties are
    broken pessimistically by ordering inliers before anomalies within a tied
    score block, which makes the metric deterministic.
    """
    y, s = _validate(y_true, scores)
    # Sort by decreasing score; within ties put inliers first (pessimistic).
    order = np.lexsort((y, -s))
    y_sorted = y[order]
    cum_tp = np.cumsum(y_sorted)
    ranks = np.arange(1, y.size + 1)
    precision = cum_tp / ranks
    return float(precision[y_sorted == 1.0].sum() / y.sum())


def precision_at_n(y_true, scores, n: int | None = None) -> float:
    """Precision among the top-``n`` scored samples.

    ``n`` defaults to the number of true anomalies (the common P@n protocol).
    """
    y, s = _validate(y_true, scores)
    if n is None:
        n = int(y.sum())
    if not 1 <= n <= y.size:
        raise ValueError(f"n must be in [1, {y.size}], got {n}")
    order = np.lexsort((y, -s))
    return float(y[order][:n].mean())
