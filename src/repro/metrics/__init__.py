"""Evaluation metrics: ranking metrics, confusion statistics, paired tests."""

from repro.metrics.classification import (
    confusion_counts,
    error_count,
    error_correction_rate,
    instance_cases,
    rank_of,
)
from repro.metrics.ranking import auc_roc, average_precision, precision_at_n
from repro.metrics.stats import wilcoxon_signed_rank

__all__ = [
    "auc_roc",
    "average_precision",
    "precision_at_n",
    "confusion_counts",
    "error_count",
    "error_correction_rate",
    "instance_cases",
    "rank_of",
    "wilcoxon_signed_rank",
]
