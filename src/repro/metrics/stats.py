"""Paired statistical tests.

The paper reports Wilcoxon signed-rank p-values for booster-vs-source
comparisons over the 84 datasets (Table IV).  We provide a self-contained
implementation (normal approximation with tie and zero corrections, the same
``wilcox``/``pratt`` conventions scipy uses) and verify it against
``scipy.stats.wilcoxon`` in the test suite.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["wilcoxon_signed_rank"]


def _midranks(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def wilcoxon_signed_rank(x, y, alternative: str = "greater") -> dict:
    """Wilcoxon signed-rank test on paired samples ``x`` and ``y``.

    Tests whether the paired differences ``x - y`` are symmetric around zero.
    With ``alternative='greater'`` the alternative hypothesis is that ``x``
    tends to exceed ``y`` — the direction used in the paper, where ``x`` is
    the booster metric and ``y`` the source model metric.

    Returns a dict with ``statistic`` (W+, the sum of positive ranks),
    ``p_value``, and ``n_effective`` (pairs remaining after dropping zeros).
    Uses the normal approximation with tie correction, which matches
    ``scipy.stats.wilcoxon(..., correction=False, mode='approx')``.
    """
    if alternative not in ("greater", "less", "two-sided"):
        raise ValueError(f"unknown alternative: {alternative!r}")
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    diff = x - y
    diff = diff[diff != 0.0]
    n = diff.size
    if n == 0:
        return {"statistic": 0.0, "p_value": 1.0, "n_effective": 0}

    abs_ranks = _midranks(np.abs(diff))
    w_plus = float(abs_ranks[diff > 0].sum())

    mean = n * (n + 1) / 4.0
    var = n * (n + 1) * (2 * n + 1) / 24.0
    # Tie correction: subtract sum(t^3 - t)/48 over tied groups.
    _, counts = np.unique(np.abs(diff), return_counts=True)
    var -= (counts**3 - counts).sum() / 48.0
    if var <= 0:
        # All differences tied at the same magnitude and sign pattern is
        # degenerate; report the conservative p-value.
        return {"statistic": w_plus, "p_value": 1.0, "n_effective": n}

    z = (w_plus - mean) / math.sqrt(var)
    # Standard normal survival function via erfc.
    sf = 0.5 * math.erfc(z / math.sqrt(2.0))
    cdf = 1.0 - sf
    if alternative == "greater":
        p = sf
    elif alternative == "less":
        p = cdf
    else:
        p = 2.0 * min(sf, cdf)
    return {"statistic": w_plus, "p_value": min(1.0, p), "n_effective": n}
