"""Thresholded confusion statistics and ranking helpers.

The paper's case studies (Fig 4, Fig 5, Fig 9) reason about the four types of
instances — TP / FN / FP / TN — at a detection threshold, and about the rank
position of each instance in the score vector.  These helpers implement that
bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_consistent_length, check_scores

__all__ = [
    "confusion_counts",
    "error_count",
    "error_correction_rate",
    "instance_cases",
    "rank_of",
    "threshold_by_contamination",
]


def _validate(y_true, scores):
    y = np.asarray(y_true).ravel().astype(np.int64)
    s = check_scores(scores)
    check_consistent_length(y, s)
    if not np.all(np.isin(y, (0, 1))):
        raise ValueError("y_true must contain only 0 and 1")
    return y, s


def threshold_by_contamination(scores, contamination: float) -> float:
    """Score threshold that flags the top ``contamination`` fraction.

    Mirrors PyOD's convention: a detector flags the ``contamination`` share
    of highest-scoring samples as anomalies.
    """
    s = check_scores(scores)
    if not 0.0 < contamination < 1.0:
        raise ValueError(f"contamination must be in (0, 1), got {contamination}")
    return float(np.quantile(s, 1.0 - contamination))


def confusion_counts(y_true, scores, threshold: float = 0.5) -> dict:
    """Counts of TP, FN, FP, TN at ``threshold`` (score > threshold => flag)."""
    y, s = _validate(y_true, scores)
    pred = (s > threshold).astype(np.int64)
    return {
        "tp": int(np.sum((y == 1) & (pred == 1))),
        "fn": int(np.sum((y == 1) & (pred == 0))),
        "fp": int(np.sum((y == 0) & (pred == 1))),
        "tn": int(np.sum((y == 0) & (pred == 0))),
    }


def error_count(y_true, scores, threshold: float = 0.5) -> int:
    """Number of misclassified instances (FP + FN) at ``threshold``."""
    counts = confusion_counts(y_true, scores, threshold)
    return counts["fp"] + counts["fn"]


def error_correction_rate(y_true, teacher_scores, booster_scores,
                          threshold: float = 0.5) -> float:
    """Fraction of the teacher's errors that the booster corrects (Fig 5).

    Defined over the instances the teacher misclassifies: the share of those
    that the booster classifies correctly.  Returns 0.0 when the teacher made
    no errors (nothing to correct).
    """
    y, s_t = _validate(y_true, teacher_scores)
    s_b = check_scores(booster_scores)
    check_consistent_length(y, s_b)
    teacher_pred = (s_t > threshold).astype(np.int64)
    booster_pred = (s_b > threshold).astype(np.int64)
    teacher_wrong = teacher_pred != y
    n_errors = int(teacher_wrong.sum())
    if n_errors == 0:
        return 0.0
    corrected = int(np.sum(teacher_wrong & (booster_pred == y)))
    return corrected / n_errors


def instance_cases(y_true, scores, threshold: float = 0.5) -> np.ndarray:
    """Label every instance as one of ``'TP'``, ``'FN'``, ``'FP'``, ``'TN'``."""
    y, s = _validate(y_true, scores)
    pred = (s > threshold).astype(np.int64)
    cases = np.empty(y.size, dtype="<U2")
    cases[(y == 1) & (pred == 1)] = "TP"
    cases[(y == 1) & (pred == 0)] = "FN"
    cases[(y == 0) & (pred == 1)] = "FP"
    cases[(y == 0) & (pred == 0)] = "TN"
    return cases


def rank_of(scores) -> np.ndarray:
    """Rank of every instance by score (1 = lowest score, n = highest).

    The paper's Fig 9 tracks average ranks of TP/TN/FP/FN groups; a higher
    rank means the model is more confident the instance is an anomaly.
    Ties receive the midrank.
    """
    s = check_scores(scores)
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty(s.size, dtype=np.float64)
    sorted_vals = s[order]
    i = 0
    while i < s.size:
        j = i
        while j + 1 < s.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks
