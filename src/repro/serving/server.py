"""Stdlib-only JSON HTTP API over a :class:`ScoringService`.

Endpoints
---------
``GET /healthz``
    Liveness: ``{"status": "ok", "models": [...]}``.
``GET /models``
    Manifest summaries of every model in the store.
``POST /score``
    Body ``{"model_id": "...", "X": [[...], ...]}`` -> ``{"model_id",
    "n", "scores"}``.  ``model_id`` may be omitted when the store serves a
    single model.

The server is ``http.server.ThreadingHTTPServer`` — one thread per
connection — so concurrent ``/score`` requests land in the service's
micro-batching queue together and are coalesced into stacked predict
calls.  No third-party web framework is required, keeping the serving
stack importable anywhere the library is.

Started from the CLI as ``repro serve <store> --port 8000``; in code, use
:func:`build_server` (returns the unstarted server for tests / embedding)
or :func:`serve` (blocks).
"""

from __future__ import annotations

import json
import weakref
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

import repro
from repro.serving.artifacts import ArtifactError
from repro.serving.service import ScoringService

__all__ = ["build_server", "serve", "shutdown_all"]

_MAX_BODY_BYTES = 64 * 1024 * 1024

# Live servers, so tests and signal handlers can stop a blocking serve().
_RUNNING: "weakref.WeakSet" = weakref.WeakSet()


class _ServingHandler(BaseHTTPRequestHandler):
    server_version = f"repro-serving/{repro.__version__}"
    protocol_version = "HTTP/1.1"

    # Route stderr chatter through the server's quiet flag.
    def log_message(self, fmt, *args):
        if not getattr(self.server, "quiet", True):
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    @property
    def service(self) -> ScoringService:
        return self.server.service

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "version": repro.__version__,
                "models": self.service.models(),
            })
        elif self.path == "/models":
            models = []
            for model_id in self.service.models():
                try:
                    manifest = self.service.store.manifest(model_id)
                except ArtifactError as exc:
                    models.append({"id": model_id, "error": str(exc)})
                    continue
                models.append({
                    "id": model_id,
                    "kind": manifest.get("kind"),
                    "repro_version": manifest.get("repro_version"),
                    "format_version": manifest.get("format_version"),
                    "config": manifest.get("config", {}),
                    "data_fingerprint": manifest.get("data_fingerprint"),
                })
            self._send_json(200, {"models": models})
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    def do_POST(self):  # noqa: N802 - http.server API
        if self.path != "/score":
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length <= 0 or length > _MAX_BODY_BYTES:
            # The body stays unread on this path; under HTTP/1.1
            # keep-alive those bytes would be parsed as the next request
            # line, so the connection must not be reused.
            self.close_connection = True
            self._send_error_json(400, "missing or oversized request body")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return
        if not isinstance(payload, dict) or "X" not in payload:
            self._send_error_json(400, 'body must be {"model_id"?, "X"}')
            return
        model_id = payload.get("model_id")
        if model_id is None:
            ids = self.service.models()
            if len(ids) != 1:
                self._send_error_json(
                    400, f"model_id is required; available: {ids}"
                )
                return
            model_id = ids[0]
        try:
            X = np.asarray(payload["X"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            self._send_error_json(400, f"X is not numeric: {exc}")
            return
        try:
            scores = self.service.score(model_id, X)
        except KeyError as exc:
            self._send_error_json(404, str(exc.args[0] if exc.args else exc))
            return
        except (ValueError, TypeError, RuntimeError, ArtifactError) as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(200, {
            "model_id": model_id,
            "n": int(scores.shape[0]),
            "scores": [float(s) for s in scores],
        })


def build_server(store, host: str = "127.0.0.1", port: int = 8000,
                 *, quiet: bool = True,
                 **service_kwargs) -> ThreadingHTTPServer:
    """A ready-to-start server over ``store`` (path or ``ModelStore``).

    ``port=0`` binds an ephemeral port — read the real one from
    ``server.server_address[1]``.  The attached service is available as
    ``server.service`` and is closed by ``server.server_close()``.
    """
    # Bind the socket before starting the service: a bind failure
    # (port in use, bad host) must not leak a running scorer thread.
    server = ThreadingHTTPServer((host, port), _ServingHandler)
    try:
        service = ScoringService(store, **service_kwargs)
    except BaseException:
        server.server_close()
        raise
    server.daemon_threads = True
    server.service = service
    server.quiet = quiet

    original_close = server.server_close

    def close_all():
        try:
            original_close()
        finally:
            service.close()

    server.server_close = close_all
    return server


def serve(store, host: str = "127.0.0.1", port: int = 8000, *,
          ready=None, quiet: bool = True, **service_kwargs) -> None:
    """Serve ``store`` until interrupted (or :func:`shutdown_all`).

    ``ready(server)`` is invoked after the socket is bound and before the
    request loop starts — the hook the CLI uses to print the bound
    address, and tests use to capture the server handle.
    """
    server = build_server(store, host, port, quiet=quiet, **service_kwargs)
    _RUNNING.add(server)
    try:
        if ready is not None:
            ready(server)
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        _RUNNING.discard(server)
        server.server_close()


def shutdown_all() -> int:
    """Stop every server currently blocked in :func:`serve`.

    Returns the number of servers signalled.  Primarily an operational /
    test hook: ``serve`` blocks its calling thread, so another thread
    needs a handle-free way to end it.
    """
    servers = list(_RUNNING)
    for server in servers:
        server.shutdown()
    return len(servers)
