"""Stdlib-only JSON HTTP API over a scoring service or fleet.

Endpoints
---------
``GET /healthz``
    Liveness: ``{"status": "ok", "models": [...]}`` (+ worker health in
    fleet mode).
``GET /models``
    Manifest summaries of every model in the store.
``GET /stats``
    Service/fleet observability counters (micro-batch coalescing, cache
    hit rates; in fleet mode per-worker queue depth, latency
    percentiles, restarts).
``POST /score``
    Body ``{"model_id": "...", "X": [[...], ...]}`` -> ``{"model_id",
    "n", "scores"}``.  ``model_id`` may be omitted when the store serves a
    single model.

Every error — client mistakes *and* unexpected server faults — is a
structured JSON body ``{"error": ...}`` with the right status code (400
malformed request, 404 unknown model/path, 503 + ``Retry-After`` for
fleet backpressure / crash windows / open breakers, 504 for a request
that timed out against a live worker or exhausted its deadline, 500 for
anything unexpected); an HTML traceback page never leaks to a client.
``GET /healthz`` reports the fleet's three-state verdict: ``ok`` and
``degraded`` answer 200 (degraded = still serving, through ring
successors), ``failing`` answers 503 (no healthy worker).

The server is ``http.server.ThreadingHTTPServer`` — one thread per
connection — so concurrent ``/score`` requests land in the service's
micro-batching queue together and are coalesced into stacked predict
calls.  With ``workers=N`` the attached service is a
:class:`~repro.serving.fleet.ScoringFleet` instead of the in-process
:class:`ScoringService`; the handler code is identical because the two
share one surface.  No third-party web framework is required, keeping
the serving stack importable anywhere the library is.

Started from the CLI as ``repro serve <store> --port 8000 [--workers N]``;
in code, use :func:`build_server` (returns the unstarted server for
tests / embedding) or :func:`serve` (blocks).
"""

from __future__ import annotations

import json
import weakref
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

import repro
from repro.resilience import (
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFault,
    RequestTimeoutError,
)
from repro.serving.artifacts import ArtifactError
from repro.serving.fleet.frontend import FleetOverloadedError, ScoringFleet
from repro.serving.fleet.supervisor import WorkerCrashedError, \
    WorkerFailedError
from repro.serving.service import ScoringService

__all__ = ["build_server", "serve", "shutdown_all"]

_MAX_BODY_BYTES = 64 * 1024 * 1024

# Live servers, so tests and signal handlers can stop a blocking serve().
_RUNNING: "weakref.WeakSet" = weakref.WeakSet()


class _ServingHandler(BaseHTTPRequestHandler):
    server_version = f"repro-serving/{repro.__version__}"
    protocol_version = "HTTP/1.1"
    # Even stdlib-generated errors (malformed request line, unsupported
    # method) must be structured JSON, never the default HTML page.
    error_content_type = "application/json"
    error_message_format = '{"error": "%(code)d %(message)s"}'

    # Route stderr chatter through the server's quiet flag.
    def log_message(self, fmt, *args):
        if not getattr(self.server, "quiet", True):
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    @property
    def service(self) -> ScoringService:
        return self.server.service

    def _send_json(self, code: int, payload: dict,
                   headers: dict | None = None) -> None:
        # default=str: stats payloads may carry numpy scalars or Paths —
        # an observability endpoint must not 500 over a repr-able value.
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str,
                         headers: dict | None = None) -> None:
        self._send_json(code, {"error": message}, headers=headers)

    def _guarded(self, handler) -> None:
        """Run a request handler; unexpected faults become JSON 500s.

        A bug anywhere below the HTTP layer must surface to the client
        as ``{"error": ...}`` with status 500 — never as a connection
        drop or an HTML traceback page.  If the response was already
        partially written the connection is beyond repair and is simply
        closed.
        """
        try:
            handler()
        except Exception as exc:  # noqa: BLE001 - the last line of defence
            try:
                self.close_connection = True
                self._send_error_json(
                    500, f"internal error: {type(exc).__name__}: {exc}")
            except Exception:
                pass

    def do_GET(self):  # noqa: N802 - http.server API
        self._guarded(self._handle_get)

    def do_POST(self):  # noqa: N802 - http.server API
        self._guarded(self._handle_post)

    def _handle_get(self):
        if self.path == "/healthz":
            payload = {
                "status": "ok",
                "version": repro.__version__,
                "models": self.service.models(),
            }
            code = 200
            health = getattr(self.service, "health", None)
            if callable(health):  # fleet mode: worker liveness summary
                fleet = health()
                payload["fleet"] = fleet
                payload["status"] = fleet.get("status", "ok")
                if payload["status"] == "failing":
                    # "degraded" still serves (ring successors cover);
                    # "failing" means requests are being rejected — a
                    # load balancer must take this instance out.
                    code = 503
            self._send_json(code, payload)
        elif self.path == "/stats":
            self._send_json(200, self.service.stats())
        elif self.path == "/models":
            models = []
            for model_id in self.service.models():
                try:
                    manifest = self.service.store.manifest(model_id)
                except ArtifactError as exc:
                    models.append({"id": model_id, "error": str(exc)})
                    continue
                models.append({
                    "id": model_id,
                    "kind": manifest.get("kind"),
                    "repro_version": manifest.get("repro_version"),
                    "format_version": manifest.get("format_version"),
                    "config": manifest.get("config", {}),
                    "data_fingerprint": manifest.get("data_fingerprint"),
                })
            self._send_json(200, {"models": models})
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    def _handle_post(self):
        if self.path != "/score":
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length <= 0 or length > _MAX_BODY_BYTES:
            # The body stays unread on this path; under HTTP/1.1
            # keep-alive those bytes would be parsed as the next request
            # line, so the connection must not be reused.
            self.close_connection = True
            self._send_error_json(400, "missing or oversized request body")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return
        if not isinstance(payload, dict) or "X" not in payload:
            self._send_error_json(400, 'body must be {"model_id"?, "X"}')
            return
        model_id = payload.get("model_id")
        if model_id is None:
            ids = self.service.models()
            if len(ids) != 1:
                self._send_error_json(
                    400, f"model_id is required; available: {ids}"
                )
                return
            model_id = ids[0]
        try:
            X = np.asarray(payload["X"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            self._send_error_json(400, f"X is not numeric: {exc}")
            return
        try:
            scores = self.service.score(model_id, X)
        except KeyError as exc:
            self._send_error_json(404, str(exc.args[0] if exc.args else exc))
            return
        except (FleetOverloadedError, WorkerCrashedError, CircuitOpenError,
                InjectedFault) as exc:
            # Backpressure / recovery: explicit retryable reject.  The
            # Retry-After hint tells well-behaved clients when the queue
            # (or the restarted worker, or the open breaker) is expected
            # to have room again.
            retry_after = getattr(exc, "retry_after", 0.5)
            self._send_error_json(
                503, str(exc), headers={"Retry-After": f"{retry_after:g}"})
            return
        except (RequestTimeoutError, DeadlineExceededError) as exc:
            # The worker is alive but the answer did not arrive in time
            # (slow, lost reply, or the caller's deadline ran out):
            # gateway-timeout semantics, distinct from the 503 crash
            # window so clients and breakers can tell slow from dead.
            headers = None
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                headers = {"Retry-After": f"{retry_after:g}"}
            self._send_error_json(504, str(exc), headers=headers)
            return
        except WorkerFailedError as exc:
            # Permanent: the shard's worker exhausted its restart budget
            # and nothing can cover for it.  Not retryable — 500.
            self._send_error_json(500, str(exc))
            return
        except (ValueError, TypeError, RuntimeError, ArtifactError) as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(200, {
            "model_id": model_id,
            "n": int(scores.shape[0]),
            "scores": [float(s) for s in scores],
        })


def build_server(store, host: str = "127.0.0.1", port: int = 8000,
                 *, quiet: bool = True, workers: int | None = None,
                 **service_kwargs) -> ThreadingHTTPServer:
    """A ready-to-start server over ``store`` (path or ``ModelStore``).

    ``port=0`` binds an ephemeral port — read the real one from
    ``server.server_address[1]``.  The attached service is available as
    ``server.service`` and is closed by ``server.server_close()``.

    ``workers=N`` (N >= 1) serves through a sharded
    :class:`~repro.serving.fleet.ScoringFleet` of N worker processes
    instead of the in-process :class:`ScoringService`; scores are
    identical, capacity and failure isolation are not.
    """
    # Bind the socket before starting the service: a bind failure
    # (port in use, bad host) must not leak a running scorer thread
    # (or, in fleet mode, a pack of worker processes).
    server = ThreadingHTTPServer((host, port), _ServingHandler)
    try:
        if workers is not None and int(workers) >= 1:
            service = ScoringFleet(store, n_workers=int(workers),
                                   **service_kwargs)
        else:
            service = ScoringService(store, **service_kwargs)
    except BaseException:
        server.server_close()
        raise
    server.daemon_threads = True
    server.service = service
    server.quiet = quiet

    original_close = server.server_close

    def close_all():
        try:
            original_close()
        finally:
            service.close()

    server.server_close = close_all
    return server


def serve(store, host: str = "127.0.0.1", port: int = 8000, *,
          ready=None, quiet: bool = True, **service_kwargs) -> None:
    """Serve ``store`` until interrupted (or :func:`shutdown_all`).

    ``ready(server)`` is invoked after the socket is bound and before the
    request loop starts — the hook the CLI uses to print the bound
    address, and tests use to capture the server handle.
    """
    server = build_server(store, host, port, quiet=quiet, **service_kwargs)
    _RUNNING.add(server)
    try:
        if ready is not None:
            ready(server)
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        _RUNNING.discard(server)
        server.server_close()


def shutdown_all() -> int:
    """Stop every server currently blocked in :func:`serve`.

    Returns the number of servers signalled.  Primarily an operational /
    test hook: ``serve`` blocks its calling thread, so another thread
    needs a handle-free way to end it.
    """
    servers = list(_RUNNING)
    for server in servers:
        server.shutdown()
    return len(servers)
