"""Versioned on-disk model artifacts.

An artifact is a directory holding exactly two files::

    <model>/
      manifest.json    format + repro version, model kind/config, data
                       fingerprint, and the JSON-encoded state tree
      payload.npz      every numpy array of the state, losslessly

The split keeps the structural metadata human-readable (``cat
manifest.json``) while weights stay binary and compact.  ``manifest.json``
carries ``format_version`` so future layouts can evolve: readers refuse
artifacts written by a *newer* format instead of mis-parsing them.

:func:`save_model` / :func:`load_model` round-trip any class registered
with :mod:`repro.serving.state` — ``UADBooster``, ``FoldEnsemble`` (both
engines), and every detector in :mod:`repro.detectors.registry` — such
that ``decision_scores``/``predict`` outputs are bit-identical before and
after the trip.  :class:`ModelStore` maps model ids onto a directory of
artifacts for the scoring service.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import time
import zipfile
import zlib
from pathlib import Path

import numpy as np

import repro
from repro.api.spec import SpecError, to_spec
from repro.runtime import snapshot as _runtime_snapshot
from repro.serving.state import STATEFUL_CLASSES, decode, encode
from repro.utils.fingerprint import content_sha256

__all__ = [
    "ArtifactError",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ModelStore",
    "data_fingerprint",
    "is_artifact_dir",
    "load_model",
    "read_manifest",
    "save_model",
]

FORMAT_NAME = "repro-model"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.npz"


class ArtifactError(RuntimeError):
    """A model artifact is missing, corrupt, or incompatible."""


def data_fingerprint(X) -> dict:
    """Shape/dtype/sha256 fingerprint of the training data.

    Stored in the manifest so a serving deployment can verify that the
    data a model is asked to score matches what it was fitted on (same
    feature count, or byte-identical matrix for exact reproduction).
    """
    arr = np.ascontiguousarray(X)
    return {
        "shape": list(arr.shape),
        "dtype": arr.dtype.str,
        "sha256": content_sha256(arr),
    }


def _config_summary(model) -> dict:
    """Constructor arguments still readable off the instance, for humans.

    Best-effort: parameters whose same-named attribute holds a JSON
    primitive are recorded verbatim, everything else as ``repr``.  The
    authoritative state lives in the encoded tree — this block only makes
    ``manifest.json`` self-describing.
    """
    summary = {}
    try:
        params = inspect.signature(type(model).__init__).parameters
    except (TypeError, ValueError):
        return summary
    for name in params:
        if name == "self" or not hasattr(model, name):
            continue
        value = getattr(model, name)
        if value is None or isinstance(value, (bool, int, float, str)):
            summary[name] = value
        else:
            summary[name] = repr(value)
    return summary


def is_artifact_dir(path) -> bool:
    """True if ``path`` is a directory containing a model manifest."""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def save_model(model, path, *, data=None, extra=None) -> Path:
    """Write ``model`` as a versioned artifact directory at ``path``.

    Parameters
    ----------
    model : registered stateful instance
        A fitted (or unfitted) ``UADBooster``, ``FoldEnsemble``, or any
        registry detector.
    path : str or Path
        Artifact directory; created (parents included) if missing.
    data : array-like, optional
        The training matrix; when given, its fingerprint is recorded in
        the manifest.
    extra : dict, optional
        Free-form JSON-able metadata (e.g. dataset name, metrics) stored
        under the manifest's ``extra`` key.
    """
    kind = type(model).__name__
    if STATEFUL_CLASSES.get(kind) is not type(model):
        raise ArtifactError(
            f"cannot save unregistered model type {kind!r}; register it "
            f"with repro.serving.state.register_stateful"
        )
    arrays: dict = {}
    try:
        tree = encode(model, arrays)
    except TypeError as exc:
        raise ArtifactError(f"model state is not serialisable: {exc}") from exc
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    # Write-to-temp + rename keeps each file atomic, and the payload
    # checksum recorded in the manifest ties the two files together: a
    # save interrupted between the renames leaves a manifest whose
    # checksum no longer matches the payload, which load_model rejects
    # instead of silently mixing old state with new weights.
    payload_tmp = path / (PAYLOAD_NAME + ".tmp")
    with open(payload_tmp, "wb") as handle:  # keep numpy off suffix games
        np.savez_compressed(handle, **arrays)
    payload_sha256 = hashlib.sha256(payload_tmp.read_bytes()).hexdigest()
    # The producing spec makes the artifact self-reproducing: feed it back
    # through repro.api.build_spec (or `repro boost --spec`) to rebuild an
    # unfitted twin of the saved model.  Best-effort: models configured
    # with non-JSON-able values (e.g. a live Generator) record null.
    try:
        spec = to_spec(model)
    except SpecError:
        spec = None
    manifest = {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "repro_version": repro.__version__,
        "kind": kind,
        "created_unix": time.time(),
        "config": _config_summary(model),
        "spec": spec,
        # The execution configuration the model was produced under
        # (explicit RunContext fields plus their resolution): budgets
        # and caches never change scores, but a serving deployment can
        # now state exactly how an artifact was made.
        "runtime": _runtime_snapshot(),
        "data_fingerprint": None if data is None else data_fingerprint(data),
        "n_arrays": len(arrays),
        "payload_sha256": payload_sha256,
        "state": tree,
    }
    if extra is not None:
        manifest["extra"] = extra
    payload_tmp.replace(path / PAYLOAD_NAME)
    manifest_tmp = path / (MANIFEST_NAME + ".tmp")
    with open(manifest_tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1)
        handle.write("\n")
    manifest_tmp.replace(path / MANIFEST_NAME)
    return path


def read_manifest(path) -> dict:
    """Parse and validate an artifact's ``manifest.json``."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactError(f"no model artifact at {path} "
                            f"(missing {MANIFEST_NAME})")
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactError(f"corrupt manifest at {manifest_path}: "
                            f"{exc}") from exc
    if not isinstance(manifest, dict) \
            or manifest.get("format") != FORMAT_NAME:
        raise ArtifactError(
            f"{manifest_path} is not a {FORMAT_NAME} manifest"
        )
    version = manifest.get("format_version")
    if not isinstance(version, int):
        raise ArtifactError(f"{manifest_path} has no usable format_version")
    if version > FORMAT_VERSION:
        raise ArtifactError(
            f"artifact format v{version} is newer than this repro "
            f"({repro.__version__}) understands (v{FORMAT_VERSION}); "
            f"upgrade repro to load it"
        )
    for key in ("kind", "state"):
        if key not in manifest:
            raise ArtifactError(f"{manifest_path} is missing {key!r}")
    return manifest


def load_model(path, *, expected_kind: str | None = None):
    """Load a model previously written by :func:`save_model`.

    Raises :class:`ArtifactError` on missing/corrupt files, a
    forward-incompatible ``format_version``, an unregistered ``kind``, or
    (when ``expected_kind`` is given) a kind mismatch.
    """
    path = Path(path)
    manifest = read_manifest(path)
    kind = manifest["kind"]
    if expected_kind is not None and kind != expected_kind:
        raise ArtifactError(
            f"artifact at {path} holds a {kind}, expected {expected_kind}"
        )
    if kind not in STATEFUL_CLASSES:
        raise ArtifactError(
            f"artifact kind {kind!r} is not a registered model class"
        )
    payload_path = path / PAYLOAD_NAME
    if not payload_path.is_file():
        raise ArtifactError(f"artifact at {path} is missing {PAYLOAD_NAME}")
    recorded_sha = manifest.get("payload_sha256")
    if recorded_sha is not None:
        actual_sha = hashlib.sha256(payload_path.read_bytes()).hexdigest()
        if actual_sha != recorded_sha:
            raise ArtifactError(
                f"payload checksum mismatch at {payload_path}: the "
                f"artifact is corrupt or a save was interrupted"
            )
    try:
        with np.load(payload_path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile,
            zlib.error) as exc:
        raise ArtifactError(f"corrupt payload at {payload_path}: "
                            f"{exc}") from exc
    try:
        model = decode(manifest["state"], arrays)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"artifact at {path} failed to decode: {exc}"
        ) from exc
    if type(model).__name__ != kind:
        raise ArtifactError(
            f"artifact at {path} decoded to {type(model).__name__}, "
            f"manifest claims {kind}"
        )
    return model


class ModelStore:
    """Model ids mapped onto a directory of artifacts.

    ``root`` may be either a *single* artifact directory (served under its
    own directory name — the ``repro boost --save model/`` +
    ``repro serve model/`` path) or a directory whose immediate
    subdirectories are artifacts (a multi-model registry).
    """

    def __init__(self, root):
        self.root = Path(root)
        if not self.root.is_dir():
            raise ArtifactError(f"model store root {self.root} "
                                f"is not a directory")

    @property
    def is_single_model(self) -> bool:
        return is_artifact_dir(self.root)

    def ids(self) -> list:
        """Sorted model ids available in the store."""
        if self.is_single_model:
            return [self.root.resolve().name or "model"]
        return sorted(
            entry.name for entry in self.root.iterdir()
            if is_artifact_dir(entry)
        )

    def path_for(self, model_id: str) -> Path:
        """Artifact directory for ``model_id`` (no path traversal)."""
        if self.is_single_model:
            if model_id != self.ids()[0]:
                raise KeyError(f"unknown model {model_id!r}; this store "
                               f"serves {self.ids()}")
            return self.root
        if not model_id or "/" in model_id or "\\" in model_id \
                or model_id in (".", ".."):
            raise KeyError(f"invalid model id {model_id!r}")
        path = self.root / model_id
        if not is_artifact_dir(path):
            raise KeyError(f"unknown model {model_id!r}; "
                           f"available: {self.ids()}")
        return path

    def manifest(self, model_id: str) -> dict:
        return read_manifest(self.path_for(model_id))

    def load(self, model_id: str):
        # Chaos hook: an "error" plan entry raises a retryable
        # InjectedFault here (a transient storage read failure); no-op
        # unless a fault plan is active.
        from repro.resilience.faults import inject
        inject("store.load", model=model_id)
        return load_model(self.path_for(model_id))

    def save(self, model, model_id: str, **kwargs) -> Path:
        """Save ``model`` into the store under ``model_id``."""
        if self.is_single_model:
            raise ArtifactError(
                "cannot add models to a single-artifact store"
            )
        if not model_id or "/" in model_id or "\\" in model_id \
                or model_id in (".", ".."):
            raise ArtifactError(f"invalid model id {model_id!r}")
        return save_model(model, self.root / model_id, **kwargs)

    def __repr__(self) -> str:
        return f"ModelStore({str(self.root)!r}, models={self.ids()})"
