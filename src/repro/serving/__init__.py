"""repro.serving — model persistence and an in-process scoring service.

A fitted :class:`~repro.core.booster.UADBooster` is the paper's actual
deliverable — a reusable improved detector — yet without persistence every
score costs a full re-fit.  This package makes fitted models first-class
on-disk objects and serves them:

* :mod:`repro.serving.state` — a typed codec that encodes the state of any
  registered model class (boosters, fold ensembles, all registry
  detectors, the nn substrate) into a JSON-able tree plus a flat dict of
  numpy arrays, and decodes it back bit-identically.
* :mod:`repro.serving.artifacts` — the versioned on-disk format: one
  directory per model holding ``manifest.json`` (format version,
  ``repro.__version__``, model config, data fingerprint) and
  ``payload.npz`` (the weight/state arrays), with
  :func:`~repro.serving.artifacts.save_model` /
  :func:`~repro.serving.artifacts.load_model` and a directory-of-models
  :class:`~repro.serving.artifacts.ModelStore`.
* :mod:`repro.serving.service` — :class:`~repro.serving.service.ScoringService`,
  an LRU cache of loaded models plus a micro-batching queue that coalesces
  concurrent ``score(model_id, X)`` calls into one batched predict.
* :mod:`repro.serving.server` — a stdlib-only threaded JSON HTTP API
  (``/models``, ``/score``, ``/healthz``, ``/stats``) over a model store,
  wired to the ``repro serve`` CLI command.
* :mod:`repro.serving.fleet` — the production scoring tier:
  :class:`~repro.serving.fleet.ScoringFleet` runs N shard-owning worker
  processes (consistent hashing on model id) behind a routing frontend
  with bounded admission/backpressure, crash-restart supervision, and
  aggregated fleet stats — scores exactly equal to the single service.

End-to-end::

    repro boost IForest cardio --save model/      # persist the booster
    repro serve model/ --port 8000 --workers 4    # serve it (fleet mode)
    curl -d '{"X": [[0.1, 0.2, ...]]}' http://127.0.0.1:8000/score
"""

from repro.serving.artifacts import (
    ArtifactError,
    ModelStore,
    load_model,
    read_manifest,
    save_model,
)
from repro.serving.fleet import (
    FleetOverloadedError,
    HashRing,
    ScoringFleet,
    WorkerCrashedError,
    WorkerFailedError,
)
from repro.serving.server import build_server, serve
from repro.serving.service import ScoringService

__all__ = [
    "ArtifactError",
    "FleetOverloadedError",
    "HashRing",
    "ModelStore",
    "ScoringFleet",
    "ScoringService",
    "WorkerCrashedError",
    "WorkerFailedError",
    "build_server",
    "load_model",
    "read_manifest",
    "save_model",
    "serve",
]
