"""Typed state codec behind the model artifact format.

:func:`encode` turns the state of a registered model object into a pure
JSON tree plus a flat ``{name: ndarray}`` payload dict (arrays are hoisted
out of the tree and referenced by name, so they can be stored losslessly
in one ``.npz`` archive).  :func:`decode` inverts it exactly.

The codec understands JSON primitives, lists, tuples, sets, string-keyed
dicts, numpy arrays / scalars / dtypes, ``numpy.random.Generator`` streams
(via bit-generator state, so a restored model *continues training* on the
same stream), and instances of classes in :data:`STATEFUL_CLASSES`.

Object encoding is hook-based: a registered class may define
``get_state() -> dict`` / ``set_state(dict)`` (the uniform persistence
hooks on :class:`~repro.detectors.base.BaseDetector`,
:class:`~repro.core.ensemble.FoldEnsemble`,
:class:`~repro.nn.network.Sequential`, ...); classes without hooks fall
back to an ``__dict__``/``__slots__`` snapshot with transient per-batch
caches (``_x``/``_mask``/``_out``/``_grad``) nulled out.

Only registered classes round-trip — encoding anything else raises
``TypeError`` instead of silently pickling arbitrary objects, which keeps
the artifact format auditable and safe to load (``allow_pickle`` stays
off).
"""

from __future__ import annotations

import numpy as np

__all__ = ["STATEFUL_CLASSES", "register_stateful", "encode", "decode"]

# Attributes that cache per-batch tensors between forward/backward calls;
# they are meaningless outside a training step and are persisted as None.
_TRANSIENT_ATTRS = frozenset({"_x", "_mask", "_out", "_grad"})

# name -> class for every type the codec may instantiate on decode.
STATEFUL_CLASSES: dict = {}
_CLASS_NAMES: dict = {}


def register_stateful(cls, name: str | None = None):
    """Register ``cls`` so the codec can encode/decode its instances."""
    key = name or cls.__name__
    existing = STATEFUL_CLASSES.get(key)
    if existing is not None and existing is not cls:
        raise ValueError(f"stateful name {key!r} already registered")
    STATEFUL_CLASSES[key] = cls
    _CLASS_NAMES[cls] = key
    return cls


def _all_slots(cls) -> list:
    slots = []
    for klass in type.mro(cls):
        slots.extend(getattr(klass, "__slots__", ()))
    return slots


def _default_state(obj) -> dict:
    """Snapshot of ``__dict__``/``__slots__`` with caches nulled out."""
    if hasattr(obj, "__dict__"):
        items = vars(obj).items()
    else:
        items = ((s, getattr(obj, s)) for s in _all_slots(type(obj)))
    return {k: (None if k in _TRANSIENT_ATTRS else v) for k, v in items}


def _default_restore(obj, state: dict) -> None:
    for key, value in state.items():
        setattr(obj, key, value)


def encode(value, arrays: dict):
    """Encode ``value`` into a JSON tree, hoisting arrays into ``arrays``."""
    if value is None or isinstance(value, (bool, str)):
        return value
    # numpy scalars before int/float: np.float64 subclasses float, and the
    # dtype must survive the round trip.
    if isinstance(value, np.generic):
        return {"__npscalar__": [value.dtype.str, value.item()]}
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        ref = f"a{len(arrays)}"
        arrays[ref] = value
        return {"__ndarray__": ref}
    if isinstance(value, np.dtype):
        return {"__dtype__": value.str}
    if isinstance(value, list):
        return [encode(item, arrays) for item in value]
    if isinstance(value, tuple):
        return {"__tuple__": [encode(item, arrays) for item in value]}
    if isinstance(value, (set, frozenset)):
        try:
            items = sorted(value)
        except TypeError:
            items = list(value)
        return {"__set__": [encode(item, arrays) for item in items]}
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"cannot encode dict with non-string key {key!r}"
                )
        return {"__map__": {k: encode(v, arrays)
                            for k, v in value.items()}}
    if isinstance(value, np.random.Generator):
        bit_gen = value.bit_generator
        return {"__rng__": {"name": type(bit_gen).__name__,
                            "state": encode(bit_gen.state, arrays)}}
    name = _CLASS_NAMES.get(type(value))
    if name is not None:
        get_state = getattr(value, "get_state", None)
        state = get_state() if callable(get_state) else _default_state(value)
        return {"__object__": name, "state": encode(state, arrays)}
    raise TypeError(
        f"cannot encode object of type {type(value).__name__}; register it "
        f"with repro.serving.state.register_stateful"
    )


def decode(tree, arrays: dict):
    """Invert :func:`encode` given the payload ``arrays``."""
    if tree is None or isinstance(tree, (bool, int, float, str)):
        return tree
    if isinstance(tree, list):
        return [decode(item, arrays) for item in tree]
    if not isinstance(tree, dict):
        raise TypeError(f"malformed state tree node: {tree!r}")
    if "__ndarray__" in tree:
        ref = tree["__ndarray__"]
        if ref not in arrays:
            raise KeyError(f"payload is missing array {ref!r}")
        return arrays[ref]
    if "__npscalar__" in tree:
        dtype_str, item = tree["__npscalar__"]
        return np.dtype(dtype_str).type(item)
    if "__dtype__" in tree:
        return np.dtype(tree["__dtype__"])
    if "__tuple__" in tree:
        return tuple(decode(item, arrays) for item in tree["__tuple__"])
    if "__set__" in tree:
        return set(decode(item, arrays) for item in tree["__set__"])
    if "__map__" in tree:
        return {k: decode(v, arrays) for k, v in tree["__map__"].items()}
    if "__rng__" in tree:
        info = tree["__rng__"]
        bit_gen_cls = getattr(np.random, info["name"], None)
        if bit_gen_cls is None:
            raise ValueError(f"unknown bit generator {info['name']!r}")
        bit_gen = bit_gen_cls()
        bit_gen.state = decode(info["state"], arrays)
        return np.random.Generator(bit_gen)
    if "__object__" in tree:
        name = tree["__object__"]
        cls = STATEFUL_CLASSES.get(name)
        if cls is None:
            raise ValueError(
                f"state references unregistered class {name!r}; the "
                f"artifact may come from a newer repro version"
            )
        obj = cls.__new__(cls)
        state = decode(tree["state"], arrays)
        set_state = getattr(obj, "set_state", None)
        if callable(set_state):
            set_state(state)
        else:
            _default_restore(obj, state)
        return obj
    raise TypeError(f"malformed state tree node with keys {list(tree)}")


def _register_builtin_classes() -> None:
    """Register every stateful class shipped with repro.

    Detector classes come from the registry (so new detectors only need a
    registry entry); the rest are the helper objects that appear inside
    detector / ensemble state.
    """
    from repro.api.pipeline import Pipeline
    from repro.core.booster import BoosterHistory, UADBooster
    from repro.core.ensemble import FoldEnsemble
    from repro.core.variants import VARIANT_CLASSES
    from repro.data.preprocessing import MinMaxScaler, StandardScaler
    from repro.detectors.gmm import GaussianMixture
    from repro.detectors.histograms import Histogram1D
    from repro.detectors.iforest import _IsolationTree
    from repro.detectors.kmeans import KMeans
    from repro.detectors.registry import DETECTOR_CLASSES
    from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh
    from repro.nn.layers import Dense
    from repro.nn.network import Sequential
    from repro.nn.training import TrainingHistory

    for cls in DETECTOR_CLASSES.values():
        register_stateful(cls)
    for cls in set(VARIANT_CLASSES.values()) | {Pipeline}:
        register_stateful(cls)
    for cls in (UADBooster, BoosterHistory, FoldEnsemble, StandardScaler,
                MinMaxScaler, GaussianMixture, Histogram1D, _IsolationTree,
                KMeans, Sequential, Dense, Identity, ReLU, LeakyReLU,
                Sigmoid, Tanh, TrainingHistory):
        register_stateful(cls)


_register_builtin_classes()
