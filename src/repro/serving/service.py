"""In-process scoring service with model LRU caching and micro-batching.

:class:`ScoringService` answers ``score(model_id, X)`` calls from many
threads over a :class:`~repro.serving.artifacts.ModelStore`:

* **LRU model cache** — loaded models are kept hot (deserialising a
  booster costs milliseconds; a request must not pay it twice), bounded by
  ``cache_size`` with least-recently-used eviction.
* **Micro-batching** — concurrent requests for the same model are
  coalesced by a single scorer thread into one stacked ``predict`` call
  and the scores are split back per request.  Model inference here is a
  handful of small matrix products, so per-call overhead (validation,
  standardisation, layer dispatch) dominates single-row latency; batching
  amortises it across every queued request.  The scorer drains whatever is
  queued — under load batches grow naturally, while an idle service still
  answers a lone request immediately (no artificial delay).

Row-order invariance makes this exact: every model scores rows
independently, so scoring a concatenation and slicing equals scoring each
request at the same batch shape.  A single scorer thread also means model
objects (which keep per-call caches) are never raced.

``micro_batch=False`` turns the service into the naive one-predict-per-
request baseline used by ``benchmarks/test_perf_serving.py`` to prove the
micro-batched path sustains >= 2x its throughput.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from pathlib import Path

import numpy as np

from repro.resilience.faults import inject as _inject
from repro.runtime import snapshot as _runtime_snapshot
from repro.runtime import start_worker
from repro.serving.artifacts import ModelStore

__all__ = ["ScoringService", "as_score_matrix"]


def as_score_matrix(X) -> np.ndarray:
    """Validate and canonicalise one request's input into a (n, d) float64
    matrix.

    The single admission gate shared by :class:`ScoringService` and the
    fleet frontend: a 1-d vector becomes one row, anything that is not a
    finite (n >= 1, d) matrix is rejected here — per request, *before*
    coalescing, so one bad request can never poison the stacked predict
    for the innocent callers batched with it.
    """
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[0] < 1:
        raise ValueError(
            f"X must be a (n, d) matrix with n >= 1, got {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError("X contains NaN or infinite values")
    return arr


def _score_fn(model):
    """The scoring entry point of a loaded model.

    Detectors and boosters expose ``score_samples`` (scores in [0, 1]);
    a bare ``FoldEnsemble`` exposes ``predict``.
    """
    fn = getattr(model, "score_samples", None)
    if callable(fn):
        return fn
    fn = getattr(model, "predict", None)
    if callable(fn):
        return fn
    raise TypeError(
        f"{type(model).__name__} has neither score_samples nor predict"
    )


class _Request:
    """One pending ``score``/``submit`` call travelling through the batch
    queue."""

    __slots__ = ("model_id", "X", "done", "scores", "error", "callback")

    def __init__(self, model_id: str, X: np.ndarray, callback=None):
        self.model_id = model_id
        self.X = X
        self.done = threading.Event()
        self.scores = None
        self.error = None
        self.callback = callback

    def finish(self) -> None:
        """Mark done and deliver through the callback (if any).

        Callback exceptions are swallowed: a broken consumer must not
        kill the scorer loop for every other queued request.
        """
        self.done.set()
        if self.callback is not None:
            try:
                self.callback(self.scores, self.error)
            except Exception:
                pass


class ScoringService:
    """Thread-safe scoring frontend over a model store.

    Parameters
    ----------
    store : ModelStore, str, or Path
        The artifact store (a path is wrapped in a :class:`ModelStore`).
    cache_size : int
        Maximum number of models kept loaded (LRU eviction beyond it).
    max_batch_rows : int
        Row cap per coalesced predict call; queued requests beyond it wait
        for the next batch.
    micro_batch : bool
        Coalesce concurrent same-model requests (default).  ``False``
        scores each request with its own predict call — the naive
        baseline.
    """

    def __init__(self, store, *, cache_size: int = 4,
                 max_batch_rows: int = 8192, micro_batch: bool = True):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        if isinstance(store, (str, Path)):
            store = ModelStore(store)
        self.store = store
        self.cache_size = cache_size
        self.max_batch_rows = max_batch_rows
        self.micro_batch = micro_batch
        self._models: OrderedDict = OrderedDict()
        self._cache_lock = threading.Lock()
        self._score_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats = {"requests": 0, "batches": 0, "rows": 0,
                       "max_batch_requests": 0, "cache_hits": 0,
                       "cache_misses": 0}
        self._queue: deque = deque()
        self._queue_cond = threading.Condition()
        self._closed = False
        # Captured at construction: the execution configuration this
        # service scores under (the scorer worker carries the same
        # creating-thread context for its whole lifetime), not whatever
        # context a later stats() caller happens to be in.
        self._runtime = _runtime_snapshot()
        self._scorer = None
        if micro_batch:
            # The scorer is a runtime worker: it carries the creating
            # thread's RunContext, so kernel work inside coalesced
            # predicts honours the service owner's thread budget and
            # cache flags (raw threads would silently drop them).
            self._scorer = start_worker(self._scorer_loop,
                                        name="repro-scorer")

    # -- model cache ------------------------------------------------------
    def models(self) -> list:
        """Model ids available in the backing store."""
        return self.store.ids()

    def get_model(self, model_id: str):
        """The loaded model for ``model_id`` (LRU-cached)."""
        with self._cache_lock:
            model = self._models.get(model_id)
            if model is not None:
                self._models.move_to_end(model_id)
                with self._stats_lock:
                    self._stats["cache_hits"] += 1
                return model
        # Load outside the cache lock: deserialisation is the slow part.
        model = self.store.load(model_id)
        with self._cache_lock:
            self._models[model_id] = model
            self._models.move_to_end(model_id)
            while len(self._models) > self.cache_size:
                self._models.popitem(last=False)
        with self._stats_lock:
            self._stats["cache_misses"] += 1
        return model

    # -- scoring ----------------------------------------------------------
    def score(self, model_id: str, X) -> np.ndarray:
        """Anomaly scores of ``X`` under ``model_id``; blocks until done.

        Safe to call from any number of threads.  Raises ``KeyError`` for
        unknown models and propagates the model's own validation errors.
        """
        request = self._submit_request(model_id, X)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.scores

    def submit(self, model_id: str, X, callback) -> None:
        """Non-blocking admission into the micro-batch queue.

        ``callback(scores, error)`` fires exactly once — from the scorer
        thread once the coalesced batch holding this request has been
        scored (exactly one of the two arguments is ``None``).  Input
        validation still happens here, synchronously, so malformed
        requests raise in the caller instead of occupying queue space.
        This is the fleet worker's entry point: its receive loop stays
        free to keep pulling requests off the wire while the scorer
        drains, which is what lets batches form under load.

        In ``micro_batch=False`` mode the request is scored inline and
        the callback fires before ``submit`` returns.
        """
        self._submit_request(model_id, X, callback=callback)

    def _submit_request(self, model_id: str, X, callback=None) -> _Request:
        """Shared validate-and-enqueue path behind score() and submit()."""
        if self._closed:
            raise RuntimeError("ScoringService is closed")
        arr = as_score_matrix(X)
        request = _Request(model_id, arr, callback=callback)
        if not self.micro_batch:
            try:
                model = self.get_model(model_id)
                with self._score_lock:
                    request.scores = _score_fn(model)(arr)
                self._record_batch(1, arr.shape[0])
            except Exception as exc:
                request.error = exc
            request.finish()
            return request
        with self._queue_cond:
            if self._closed:
                raise RuntimeError("ScoringService is closed")
            self._queue.append(request)
            self._queue_cond.notify()
        return request

    def _record_batch(self, n_requests: int, n_rows: int) -> None:
        with self._stats_lock:
            self._stats["requests"] += n_requests
            self._stats["batches"] += 1
            self._stats["rows"] += n_rows
            if n_requests > self._stats["max_batch_requests"]:
                self._stats["max_batch_requests"] = n_requests

    def stats(self) -> dict:
        """Counters proving (or disproving) coalescing: requests/batches.

        ``kernel_cache`` nests the process-wide neighbor-kernel cache
        counters (:func:`repro.kernels.cache_stats`): neighbor-based
        models served here share that cache with everything else in the
        process, so hot-path regressions show up in one place.
        ``runtime`` nests the :class:`repro.runtime.RunContext` snapshot
        captured when the service was constructed — the configuration
        its scorer answers requests under.
        """
        from repro.kernels import cache_stats

        with self._stats_lock:
            stats = dict(self._stats)
        stats["queue_depth"] = len(self._queue)
        stats["mean_batch_requests"] = (
            stats["requests"] / stats["batches"] if stats["batches"] else 0.0
        )
        stats["kernel_cache"] = cache_stats()
        stats["runtime"] = self._runtime
        stats["closed"] = self._closed
        stats["draining"] = bool(
            self._closed and self._scorer is not None
            and self._scorer.is_alive())
        return stats

    # -- scorer thread ----------------------------------------------------
    def _take_batch(self) -> list:
        """Pop the next request plus every queued same-model request.

        Coalescing keys on (model_id, n_features): a request with a
        mismatched feature count must fail on its own, not poison the
        concatenation for everyone batched with it.
        """
        first = self._queue.popleft()
        batch = [first]
        rows = first.X.shape[0]
        rest = deque()
        while self._queue:
            request = self._queue.popleft()
            if request.model_id == first.model_id \
                    and request.X.shape[1] == first.X.shape[1] \
                    and rows + request.X.shape[0] <= self.max_batch_rows:
                batch.append(request)
                rows += request.X.shape[0]
            else:
                rest.append(request)
        self._queue.extend(rest)
        return batch

    def _scorer_loop(self) -> None:
        while True:
            with self._queue_cond:
                while not self._queue and not self._closed:
                    self._queue_cond.wait()
                if not self._queue and self._closed:
                    return
                batch = self._take_batch()
            try:
                _inject("service.score", model=batch[0].model_id)
                model = self.get_model(batch[0].model_id)
                score = _score_fn(model)
                with self._score_lock:
                    if len(batch) == 1:
                        batch[0].scores = score(batch[0].X)
                    else:
                        stacked = np.concatenate([r.X for r in batch])
                        scores = score(stacked)
                        offset = 0
                        for request in batch:
                            n = request.X.shape[0]
                            request.scores = scores[offset:offset + n]
                            offset += n
                self._record_batch(len(batch),
                                   sum(r.X.shape[0] for r in batch))
            except Exception as exc:  # propagate to every waiting caller
                for request in batch:
                    request.error = exc
            finally:
                for request in batch:
                    request.finish()

    # -- lifecycle --------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown: drain the queue, then join the scorer.

        Every request admitted before (or racing) ``close`` is still
        answered — the scorer keeps taking batches until the queue is
        empty and only then exits — while new submissions raise
        ``RuntimeError``.  The scorer thread is *joined*, not abandoned:
        after a clean ``close`` no scoring work is in flight, so tests
        and fleet workers can tear a service down without dropping
        requests or leaking a daemon thread into the next test.
        Idempotent; ``timeout`` bounds the join (a scorer stuck inside a
        model's predict cannot be cancelled — it is a daemon thread, so
        interpreter exit never hangs on it).

        Returns ``True`` only when the drain actually completed — the
        scorer exited and the queue is empty within ``timeout``.  A
        ``False`` return means requests may still be in flight (a wedged
        predict, a too-small timeout); while draining, ``stats()``
        reports ``draining: True``.
        """
        with self._queue_cond:
            self._closed = True
            scorer = self._scorer
            self._queue_cond.notify_all()
        if scorer is not None:
            scorer.join(timeout=timeout)
            if scorer.is_alive():
                return False
        return not self._queue

    def __enter__(self) -> "ScoringService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
