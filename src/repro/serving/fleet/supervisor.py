"""Worker lifecycle: spawn, ready-handshake, heartbeats, crash restart.

The supervisor owns one :class:`WorkerHandle` per fleet worker.  A handle
bundles everything tied to one worker *incarnation*: the process (spawned
through :func:`repro.runtime.start_process`, so the child activates the
fleet owner's serialized RunContext), its request/response queue pair, a
dispatcher thread that routes responses back to waiting frontend callers,
and the latest heartbeat.  Queues are **per-incarnation**: a SIGKILLed
worker can die holding a queue's internal lock, so a restart always gets
fresh pipes instead of inheriting possibly-wedged ones.

The monitor thread polls process liveness every ``monitor_interval``.
When a worker dies, its in-flight requests fail fast with
:class:`WorkerCrashedError` (a retryable condition — the HTTP layer maps
it to 503 + ``Retry-After``), the handle respawns with the same identity
and shard, and the frontend routes the shard to ring successors until the
replacement announces ``ready``.  A worker that keeps dying is given up
on after ``max_restarts`` restarts (state ``"failed"``) so a poisoned
shard cannot hold the fleet in a restart storm forever.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from queue import Empty

from repro.resilience.faults import inject as _inject
from repro.runtime import start_process, start_worker
from repro.serving.fleet.worker import worker_main

__all__ = ["Supervisor", "WorkerCrashedError", "WorkerFailedError",
           "WorkerHandle"]

#: Handle states, in lifecycle order.
STATES = ("starting", "healthy", "failed", "closed")


class WorkerCrashedError(RuntimeError):
    """The worker owning this request died before answering.

    Retryable: the supervisor is already restarting the worker and the
    frontend re-routes its shard meanwhile, so an immediate retry lands
    on a live successor.  ``worker_id`` (when known) lets a retry policy
    exclude the dead worker from its next routing attempt.
    """

    retryable = True

    def __init__(self, message: str, retry_after: float = 0.5,
                 worker_id=None):
        super().__init__(message)
        self.retry_after = retry_after
        self.worker_id = worker_id


class WorkerFailedError(RuntimeError):
    """The worker was given up on after exhausting ``max_restarts``.

    **Not** retryable against the same worker: the supervisor will never
    respawn it, so callers must fail fast (the frontend permanently
    routes the failed worker's shard to ring successors instead).
    """

    retryable = False

    def __init__(self, message: str, worker_id=None):
        super().__init__(message)
        self.worker_id = worker_id


class _PendingReply:
    """One frontend caller blocked on a worker response."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error = None

    def complete(self, value, error) -> None:
        self.value = value
        self.error = error
        self.event.set()


class WorkerHandle:
    """One worker slot: identity + shard + the current incarnation."""

    def __init__(self, worker_id: str, store_root: str, shard,
                 config: dict):
        self.worker_id = worker_id
        self.store_root = store_root
        self.shard = list(shard)
        self.config = dict(config)
        self.state = "starting"
        self.restarts = 0
        self.pid = None
        self.warm_models: list = []
        self.last_heartbeat = None  # time.monotonic at reception
        self.last_stats: dict = {}
        self.process = None
        self.request_q = None
        self.response_q = None
        self._pending: dict = {}
        self._lock = threading.Lock()
        self._dispatcher_stop = None
        self._ready = threading.Event()

    # -- incarnation management -------------------------------------------
    def spawn(self) -> None:
        """Start a fresh incarnation: new queues, process, dispatcher."""
        self._stop_dispatcher()
        # Requests that slipped into the previous incarnation's queue
        # between crash detection and respawn are unrecoverable: fail
        # them retryably rather than leaving their callers parked until
        # the request timeout.
        self.fail_pending(WorkerCrashedError(
            f"worker {self.worker_id} restarted; retry",
            worker_id=self.worker_id))
        # Heartbeat stats describe the previous (dead) incarnation — a
        # stale pid or latency profile must not survive into the new one.
        self.last_stats = {}
        self.pid = None
        self.warm_models = []
        self._ready = threading.Event()
        self.request_q = multiprocessing.Queue()
        self.response_q = multiprocessing.Queue()
        self.state = "starting"
        self.process = start_process(
            worker_main, self.worker_id, self.store_root, list(self.shard),
            self.request_q, self.response_q, self.config,
            name=f"repro-fleet-{self.worker_id}")
        stop = threading.Event()
        self._dispatcher_stop = stop
        start_worker(
            lambda: self._dispatch_loop(self.response_q, stop),
            name=f"repro-fleet-{self.worker_id}-dispatch")

    def _dispatch_loop(self, response_q, stop: threading.Event) -> None:
        while not stop.is_set():
            try:
                message = response_q.get(timeout=0.1)
            except (Empty, OSError, EOFError):
                continue
            kind = message[0]
            if kind == "result":
                _, request_id, value, error = message
                with self._lock:
                    reply = self._pending.pop(request_id, None)
                if reply is not None:
                    reply.complete(value, error)
            elif kind == "heartbeat":
                self.last_heartbeat = time.monotonic()
                self.last_stats = message[2]
            elif kind == "ready":
                self.pid = message[2]
                self.warm_models = list(message[3])
                self.last_heartbeat = time.monotonic()
                if self.state == "starting":
                    self.state = "healthy"
                self._ready.set()
            # "bye" needs no action: close() joins on the process itself.

    def _stop_dispatcher(self) -> None:
        if self._dispatcher_stop is not None:
            self._dispatcher_stop.set()
            self._dispatcher_stop = None

    # -- request plumbing --------------------------------------------------
    def submit(self, kind: str, request_id: int, *payload) -> _PendingReply:
        """Enqueue a request and return the reply slot to wait on."""
        # Chaos hook: a "delay" plan entry sleeps here, deterministically
        # stalling the submit (a slow/contended queue); no-op otherwise.
        _inject("queue.submit", worker=self.worker_id,
                model=(payload[0] if payload else None))
        reply = _PendingReply()
        with self._lock:
            self._pending[request_id] = reply
        try:
            self.request_q.put((kind, request_id, *payload))
        except Exception as exc:
            with self._lock:
                self._pending.pop(request_id, None)
            raise WorkerCrashedError(
                f"worker {self.worker_id} is unreachable: {exc}",
                worker_id=self.worker_id) from exc
        return reply

    def forget(self, request_id: int) -> None:
        """Drop one pending slot (caller gave up waiting on it).

        Without this, a request that times out frontend-side would leak
        its ``_PendingReply`` until the worker's (possibly never-coming)
        answer arrives or the incarnation dies.
        """
        with self._lock:
            self._pending.pop(request_id, None)

    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def fail_pending(self, exc: Exception) -> None:
        """Complete every in-flight request with ``exc`` (crash path)."""
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for reply in pending:
            reply.complete(None, exc)

    # -- lifecycle ---------------------------------------------------------
    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def mark_crashed(self) -> None:
        self.fail_pending(WorkerCrashedError(
            f"worker {self.worker_id} (pid {self.pid}) died; "
            f"its shard is being restarted", worker_id=self.worker_id))
        self._stop_dispatcher()
        self._drop_queues()

    def mark_failed(self) -> None:
        """Give up on this worker permanently (``max_restarts`` spent).

        In-flight requests fail *fast* with the non-retryable
        :class:`WorkerFailedError` — retrying against a worker that will
        never come back would only burn the caller's deadline.
        """
        self.state = "failed"
        self.fail_pending(WorkerFailedError(
            f"worker {self.worker_id} failed permanently after "
            f"{self.restarts} restarts", worker_id=self.worker_id))
        self._stop_dispatcher()
        self._drop_queues()

    def close(self, timeout: float = 5.0) -> None:
        """Graceful stop: drain sentinel, join, escalate if ignored."""
        self.state = "closed"
        try:
            self.request_q.put(("stop",))
        except Exception:
            pass
        if self.process is not None:
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)
        self._stop_dispatcher()
        self.fail_pending(RuntimeError("scoring fleet is closed"))
        self._drop_queues()

    def _drop_queues(self) -> None:
        for q in (self.request_q, self.response_q):
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass

    def info(self) -> dict:
        """Health/observability snapshot for ``fleet.stats()``."""
        age = None if self.last_heartbeat is None else \
            round(time.monotonic() - self.last_heartbeat, 3)
        return {
            "state": self.state,
            "pid": self.pid,
            "shard": list(self.shard),
            "warm_models": list(self.warm_models),
            "restarts": self.restarts,
            "in_flight": self.in_flight(),
            "heartbeat_age_s": age,
        }


class Supervisor:
    """Spawns the worker set, restarts crashed members, reports health."""

    def __init__(self, store_root: str, shards: dict, config: dict, *,
                 monitor_interval: float = 0.25, start_timeout: float = 60.0,
                 max_restarts: int = 20):
        self.handles = {
            worker_id: WorkerHandle(worker_id, store_root, shard, config)
            for worker_id, shard in sorted(shards.items())
        }
        self.monitor_interval = float(monitor_interval)
        self.start_timeout = float(start_timeout)
        self.max_restarts = int(max_restarts)
        self.total_restarts = 0
        self._stop = threading.Event()
        self._closed = False

    def start(self) -> None:
        """Spawn every worker and wait for all ready handshakes."""
        for handle in self.handles.values():
            handle.spawn()
        deadline = time.monotonic() + self.start_timeout
        for handle in self.handles.values():
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle._ready.wait(timeout=remaining):
                self.close()
                raise RuntimeError(
                    f"fleet worker {handle.worker_id} failed to become "
                    f"ready within {self.start_timeout:.1f}s")
        start_worker(self._monitor_loop, name="repro-fleet-monitor")

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.monitor_interval):
            for handle in self.handles.values():
                if handle.state in ("closed", "failed"):
                    continue
                if handle.is_alive():
                    continue
                handle.restarts += 1
                self.total_restarts += 1
                if handle.restarts > self.max_restarts:
                    # Give up *before* failing the pending requests so
                    # they see the terminal (non-retryable) error, not a
                    # "being restarted" promise that will never be kept.
                    handle.mark_failed()
                    continue
                handle.mark_crashed()
                handle.spawn()

    def healthy_ids(self) -> list:
        return [worker_id for worker_id, handle in self.handles.items()
                if handle.state == "healthy" and handle.is_alive()]

    def failed_ids(self) -> list:
        return [worker_id for worker_id, handle in self.handles.items()
                if handle.state == "failed"]

    def restarting_ids(self) -> list:
        """Workers between a crash and their replacement's ready
        handshake (plus initial boot)."""
        return [worker_id for worker_id, handle in self.handles.items()
                if handle.state == "starting"]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        for handle in self.handles.values():
            handle.close()
