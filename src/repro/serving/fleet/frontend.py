"""ScoringFleet: the multi-worker sharded scoring frontend.

The fleet-mode replacement for a single in-process
:class:`~repro.serving.service.ScoringService`: N scorer worker
*processes*, each owning the model shard that deterministic consistent
hashing assigns it, behind one frontend that

* **routes** every request to its model's shard owner (live-membership
  consistent hashing: a crashed worker's models are served by ring
  successors until the supervisor's replacement is ready — placement
  never changes scores, so re-routing is invisible in the results);
* **admits** requests through explicit bounds instead of unbounded
  buffering: a per-worker in-flight cap (queue depth) and a per-model
  in-flight cap (QoS — one hot model cannot monopolise every worker
  slot).  Over-cap requests are rejected *immediately* with
  :class:`FleetOverloadedError` carrying a ``retry_after`` hint, which
  the HTTP layer turns into ``503`` + ``Retry-After``;
* **observes**: :meth:`stats` aggregates per-worker heartbeat stats
  (queue depth, batch sizes, cache hit rates, p50/p99 latency, restarts)
  with frontend counters (rejections, re-routes) — served over HTTP as
  ``GET /stats``.

Determinism bar: for any worker count, a request scored through the
fleet returns exactly (``np.array_equal``) the scores the single-process
service returns — workers *are* ScoringServices over the same artifacts,
and placement/queueing affect only latency.  ``tests/serving/``
asserts this for 1/2/4 workers.

The API is duck-compatible with :class:`ScoringService` (``score`` /
``models`` / ``stats`` / ``close`` / ``store``), so the HTTP server and
CLI swap one for the other behind a ``--workers N`` flag.
"""

from __future__ import annotations

import itertools
import threading
from pathlib import Path

from repro.runtime import snapshot as _runtime_snapshot
from repro.serving.artifacts import ArtifactError, ModelStore
from repro.serving.fleet.sharding import HashRing
from repro.serving.fleet.supervisor import Supervisor, WorkerCrashedError
from repro.serving.service import as_score_matrix

__all__ = ["FleetOverloadedError", "ScoringFleet"]

#: Worker-reported error type name -> local exception type.  Everything
#: else is rebuilt as RuntimeError with the type name prefixed.
_ERROR_TYPES = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "RuntimeError": RuntimeError,
    "ArtifactError": ArtifactError,
    "LookupError": LookupError,
}


class FleetOverloadedError(RuntimeError):
    """Request rejected at admission: an in-flight cap is full.

    Backpressure by explicit reject — the caller is told *when* to come
    back (``retry_after`` seconds, an estimate from the current queue
    depth and recent per-request latency) instead of the fleet buffering
    unboundedly and timing everyone out.
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


def _rebuild_error(error: tuple) -> Exception:
    type_name, message = error
    exc_type = _ERROR_TYPES.get(type_name)
    if exc_type is not None:
        return exc_type(message)
    return RuntimeError(f"{type_name}: {message}")


class ScoringFleet:
    """Multi-process sharded scoring tier over a :class:`ModelStore`.

    Parameters
    ----------
    store : ModelStore, str, or Path
        The artifact store every worker loads from.
    n_workers : int
        Scorer worker processes.  Each owns the model shard consistent
        hashing assigns it and warm-starts that shard at boot.
    cache_size, max_batch_rows, micro_batch
        Forwarded to each worker's :class:`ScoringService` — a fleet
        worker *is* the single-process service, shard-scoped.
    max_inflight_per_worker : int
        Bounded admission queue per worker; requests beyond it are
        rejected with :class:`FleetOverloadedError` (backpressure).
    max_inflight_per_model : int
        Per-model QoS cap: one model's burst cannot occupy more than
        this many slots fleet-wide.
    replicas : int
        Consistent-hash virtual nodes per worker.
    heartbeat_interval, monitor_interval : float
        Worker stats push period / supervisor liveness poll period.
    start_timeout : float
        Boot deadline for all ready handshakes.
    request_timeout : float
        Upper bound a caller waits on one in-flight request before it is
        failed as crashed (covers the unobservable lost-message window
        around a worker death).
    """

    def __init__(self, store, n_workers: int = 2, *, cache_size: int = 4,
                 max_batch_rows: int = 8192, micro_batch: bool = True,
                 max_inflight_per_worker: int = 64,
                 max_inflight_per_model: int = 32,
                 replicas: int = 64, heartbeat_interval: float = 0.25,
                 monitor_interval: float = 0.25,
                 start_timeout: float = 60.0,
                 request_timeout: float = 120.0):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_inflight_per_worker < 1 or max_inflight_per_model < 1:
            raise ValueError("in-flight caps must be >= 1")
        if isinstance(store, (str, Path)):
            store = ModelStore(store)
        self.store = store
        self.n_workers = int(n_workers)
        self.max_inflight_per_worker = int(max_inflight_per_worker)
        self.max_inflight_per_model = int(max_inflight_per_model)
        self.request_timeout = float(request_timeout)
        worker_ids = tuple(f"w{index}" for index in range(self.n_workers))
        self.ring = HashRing(worker_ids, replicas=replicas)
        shards = self.ring.shard_map(self.store.ids())
        self._supervisor = Supervisor(
            str(self.store.root), shards,
            {"cache_size": cache_size, "max_batch_rows": max_batch_rows,
             "micro_batch": micro_batch,
             "heartbeat_interval": heartbeat_interval},
            monitor_interval=monitor_interval, start_timeout=start_timeout)
        self._request_ids = itertools.count()
        self._admission_lock = threading.Lock()
        self._model_inflight: dict = {}
        self._counters = {"requests": 0, "rejected": 0, "errors": 0,
                          "rerouted": 0, "crashed": 0}
        self._runtime = _runtime_snapshot()
        self._closed = False
        self._supervisor.start()

    # -- ScoringService-compatible surface --------------------------------
    def models(self) -> list:
        """Model ids available in the backing store."""
        return self.store.ids()

    def score(self, model_id: str, X):
        """Anomaly scores of ``X`` under ``model_id`` through the fleet.

        Exactly the single-service answer, for any worker count.  Raises
        ``KeyError`` (unknown model), ``ValueError`` (malformed input),
        :class:`FleetOverloadedError` (admission reject, retryable) or
        :class:`WorkerCrashedError` (in-flight loss, retryable).
        """
        if self._closed:
            raise RuntimeError("ScoringFleet is closed")
        arr = as_score_matrix(X)
        handle, rerouted = self._route(str(model_id))
        reply, request_id = None, next(self._request_ids)
        self._admit(str(model_id), handle, rerouted)
        try:
            reply = handle.submit("score", request_id, str(model_id), arr)
            if not reply.event.wait(timeout=self.request_timeout):
                raise WorkerCrashedError(
                    f"request to worker {handle.worker_id} timed out "
                    f"after {self.request_timeout:.0f}s")
        finally:
            self._release(str(model_id))
        if reply.error is not None:
            self._count("errors")
            if isinstance(reply.error, Exception):
                if isinstance(reply.error, WorkerCrashedError):
                    self._count("crashed")
                raise reply.error
            raise _rebuild_error(reply.error)
        return reply.value

    def stats(self) -> dict:
        """Fleet-wide observability: frontend counters + per-worker stats.

        Worker entries merge the supervisor's lifecycle view (state, pid,
        restarts, in-flight, heartbeat age) with the worker's own latest
        heartbeat payload (micro-batch counters, cache hit rates, queue
        depth, p50/p99 latency).  ``runtime`` is the RunContext snapshot
        the fleet was constructed under — the context every worker
        process activated at boot.
        """
        workers = {}
        for worker_id, handle in self._supervisor.handles.items():
            info = handle.info()
            info.update(handle.last_stats)
            workers[worker_id] = info
        with self._admission_lock:
            counters = dict(self._counters)
        healthy = self._supervisor.healthy_ids()
        return {
            **counters,
            "n_workers": self.n_workers,
            "healthy_workers": len(healthy),
            "total_restarts": self._supervisor.total_restarts,
            "sharding": {"replicas": self.ring.replicas,
                         "assignments": {
                             model_id: self.ring.assign(model_id)
                             for model_id in self.store.ids()}},
            "limits": {
                "max_inflight_per_worker": self.max_inflight_per_worker,
                "max_inflight_per_model": self.max_inflight_per_model},
            "workers": workers,
            "runtime": self._runtime,
        }

    def health(self) -> dict:
        """Compact liveness summary for ``/healthz``."""
        return {
            "n_workers": self.n_workers,
            "healthy_workers": len(self._supervisor.healthy_ids()),
            "total_restarts": self._supervisor.total_restarts,
        }

    # -- routing and admission --------------------------------------------
    def _route(self, model_id: str):
        """The live shard owner for ``model_id`` (+ whether re-routed)."""
        healthy = set(self._supervisor.healthy_ids())
        if not healthy:
            raise FleetOverloadedError(
                "no healthy fleet workers (restarts in progress)",
                retry_after=1.0)
        dead = set(self._supervisor.handles) - healthy
        owner = self.ring.assign(model_id)
        target = owner if owner in healthy \
            else self.ring.assign(model_id, exclude=dead)
        return self._supervisor.handles[target], target != owner

    def _admit(self, model_id: str, handle, rerouted: bool) -> None:
        """Bounded admission; raises FleetOverloadedError when full."""
        depth = handle.in_flight()
        latency = self._latency_estimate(handle)
        with self._admission_lock:
            model_inflight = self._model_inflight.get(model_id, 0)
            if depth >= self.max_inflight_per_worker:
                self._counters["rejected"] += 1
                raise FleetOverloadedError(
                    f"worker {handle.worker_id} queue is full "
                    f"({depth} in flight)",
                    retry_after=round(max(0.05, depth * latency), 3))
            if model_inflight >= self.max_inflight_per_model:
                self._counters["rejected"] += 1
                raise FleetOverloadedError(
                    f"model {model_id!r} is at its in-flight cap "
                    f"({model_inflight})",
                    retry_after=round(max(0.05,
                                          model_inflight * latency), 3))
            self._model_inflight[model_id] = model_inflight + 1
            self._counters["requests"] += 1
            if rerouted:
                self._counters["rerouted"] += 1

    def _release(self, model_id: str) -> None:
        with self._admission_lock:
            remaining = self._model_inflight.get(model_id, 1) - 1
            if remaining <= 0:
                self._model_inflight.pop(model_id, None)
            else:
                self._model_inflight[model_id] = remaining

    def _count(self, key: str) -> None:
        with self._admission_lock:
            self._counters[key] += 1

    @staticmethod
    def _latency_estimate(handle) -> float:
        """Recent mean per-request latency (seconds) for Retry-After."""
        latency = handle.last_stats.get("latency") or {}
        mean_ms = latency.get("mean_ms")
        return (mean_ms / 1e3) if mean_ms else 0.01

    # -- lifecycle --------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop every worker (graceful drain, then escalation)."""
        if self._closed:
            return
        self._closed = True
        self._supervisor.close()

    def __enter__(self) -> "ScoringFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
