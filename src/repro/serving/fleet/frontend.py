"""ScoringFleet: the multi-worker sharded scoring frontend.

The fleet-mode replacement for a single in-process
:class:`~repro.serving.service.ScoringService`: N scorer worker
*processes*, each owning the model shard that deterministic consistent
hashing assigns it, behind one frontend that

* **routes** every request to its model's shard owner (live-membership
  consistent hashing: a crashed worker's models are served by ring
  successors until the supervisor's replacement is ready, a *failed*
  worker's permanently — placement never changes scores, so re-routing
  is invisible in the results);
* **admits** requests through explicit bounds instead of unbounded
  buffering: a per-worker in-flight cap (queue depth) and a per-model
  in-flight cap (QoS — one hot model cannot monopolise every worker
  slot).  Over-cap requests are rejected *immediately* with
  :class:`FleetOverloadedError` carrying a ``retry_after`` hint, which
  the HTTP layer turns into ``503`` + ``Retry-After``;
* **recovers** (opt-in): with a :class:`~repro.resilience.RetryPolicy`
  installed, retryable failures — crash windows, lost replies,
  backpressure rejects, injected faults — are retried under one
  propagated :class:`~repro.resilience.Deadline`, excluding the worker
  that just failed so the retry lands on a ring successor; per-worker
  and per-model :class:`~repro.resilience.CircuitBreaker` clones stop
  traffic to peers that keep failing and probe them half-open;
* **observes**: :meth:`stats` aggregates per-worker heartbeat stats
  (queue depth, batch sizes, cache hit rates, p50/p99 latency, restarts)
  with frontend counters (rejections, re-routes, retries, timeouts) —
  served over HTTP as ``GET /stats``; :meth:`health` distinguishes
  ``ok`` / ``degraded`` (open breakers, restarting or failed workers) /
  ``failing`` (no healthy worker at all).

Determinism bar: for any worker count, a request scored through the
fleet returns exactly (``np.array_equal``) the scores the single-process
service returns — workers *are* ScoringServices over the same artifacts,
and placement/queueing/retries affect only latency.  ``tests/serving/``
asserts this for 1/2/4 workers; ``tests/resilience/`` re-asserts it
under seeded crash/delay/drop fault plans.

The API is duck-compatible with :class:`ScoringService` (``score`` /
``models`` / ``stats`` / ``close`` / ``store``), so the HTTP server and
CLI swap one for the other behind a ``--workers N`` flag.
"""

from __future__ import annotations

import itertools
import threading
import time
from pathlib import Path

from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    InjectedFault,
    RequestTimeoutError,
    RetryPolicy,
    is_retryable,
)
from repro.runtime import snapshot as _runtime_snapshot
from repro.serving.artifacts import ArtifactError, ModelStore
from repro.serving.fleet.sharding import HashRing
from repro.serving.fleet.supervisor import (
    Supervisor,
    WorkerCrashedError,
    WorkerFailedError,
)
from repro.serving.service import as_score_matrix

__all__ = ["FleetOverloadedError", "ScoringFleet"]

#: Worker-reported error type name -> local exception type.  Everything
#: else is rebuilt as RuntimeError with the type name prefixed.
_ERROR_TYPES = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "RuntimeError": RuntimeError,
    "ArtifactError": ArtifactError,
    "LookupError": LookupError,
    "InjectedFault": InjectedFault,
}

#: Errors that count against circuit breakers: the serving substrate
#: failed to answer.  Model-level errors (KeyError, ValueError, ...) are
#: proof the worker *is* answering and record as breaker successes.
_INFRA_ERRORS = (WorkerCrashedError, WorkerFailedError,
                 RequestTimeoutError, InjectedFault)


class FleetOverloadedError(RuntimeError):
    """Request rejected at admission: an in-flight cap is full.

    Backpressure by explicit reject — the caller is told *when* to come
    back (``retry_after`` seconds, an estimate from the current queue
    depth and recent per-request latency) instead of the fleet buffering
    unboundedly and timing everyone out.  Retryable by definition.
    """

    retryable = True

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


def _rebuild_error(error: tuple) -> Exception:
    type_name, message = error
    exc_type = _ERROR_TYPES.get(type_name)
    if exc_type is not None:
        return exc_type(message)
    return RuntimeError(f"{type_name}: {message}")


class ScoringFleet:
    """Multi-process sharded scoring tier over a :class:`ModelStore`.

    Parameters
    ----------
    store : ModelStore, str, or Path
        The artifact store every worker loads from.
    n_workers : int
        Scorer worker processes.  Each owns the model shard consistent
        hashing assigns it and warm-starts that shard at boot.
    cache_size, max_batch_rows, micro_batch
        Forwarded to each worker's :class:`ScoringService` — a fleet
        worker *is* the single-process service, shard-scoped.
    max_inflight_per_worker : int
        Bounded admission queue per worker; requests beyond it are
        rejected with :class:`FleetOverloadedError` (backpressure).
    max_inflight_per_model : int
        Per-model QoS cap: one model's burst cannot occupy more than
        this many slots fleet-wide.
    replicas : int
        Consistent-hash virtual nodes per worker.
    heartbeat_interval, monitor_interval : float
        Worker stats push period / supervisor liveness poll period.
    start_timeout : float
        Boot deadline for all ready handshakes.
    request_timeout : float
        Upper bound a caller waits on one in-flight request; past it the
        request fails as :class:`RequestTimeoutError` when the worker is
        demonstrably alive (slow or lost reply) or
        :class:`WorkerCrashedError` when it is not.
    retry_policy : RetryPolicy or None
        ``None`` (default) keeps the historical contract: every failure
        surfaces to the caller immediately.  With a policy installed,
        :meth:`score` retries retryable failures under the request
        deadline, excluding the worker that just failed so retries land
        on ring successors, honouring ``retry_after`` hints, with
        seeded (bit-reproducible) backoff.
    breaker : CircuitBreaker or None
        Prototype cloned per worker and (lazily) per model.  ``None``
        disables circuit breaking.
    deadline : float, Deadline, or None
        Default per-request time budget (seconds).  Each request gets a
        fresh countdown; a ``deadline=`` passed to :meth:`score`
        overrides and is consulted *as given*, so callers can share one
        deadline across calls to bound a whole operation tree.
    max_restarts : int
        Crash restarts per worker before the supervisor gives up on it
        (state ``failed``, shard permanently re-routed, pending requests
        failed with the non-retryable :class:`WorkerFailedError`).
    """

    def __init__(self, store, n_workers: int = 2, *, cache_size: int = 4,
                 max_batch_rows: int = 8192, micro_batch: bool = True,
                 max_inflight_per_worker: int = 64,
                 max_inflight_per_model: int = 32,
                 replicas: int = 64, heartbeat_interval: float = 0.25,
                 monitor_interval: float = 0.25,
                 start_timeout: float = 60.0,
                 request_timeout: float = 120.0,
                 retry_policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 deadline=None, max_restarts: int = 20):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_inflight_per_worker < 1 or max_inflight_per_model < 1:
            raise ValueError("in-flight caps must be >= 1")
        if isinstance(store, (str, Path)):
            store = ModelStore(store)
        self.store = store
        self.n_workers = int(n_workers)
        self.max_inflight_per_worker = int(max_inflight_per_worker)
        self.max_inflight_per_model = int(max_inflight_per_model)
        self.request_timeout = float(request_timeout)
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.deadline = deadline
        worker_ids = tuple(f"w{index}" for index in range(self.n_workers))
        self.ring = HashRing(worker_ids, replicas=replicas)
        shards = self.ring.shard_map(self.store.ids())
        self._supervisor = Supervisor(
            str(self.store.root), shards,
            {"cache_size": cache_size, "max_batch_rows": max_batch_rows,
             "micro_batch": micro_batch,
             "heartbeat_interval": heartbeat_interval},
            monitor_interval=monitor_interval, start_timeout=start_timeout,
            max_restarts=max_restarts)
        self._request_ids = itertools.count()
        self._admission_lock = threading.Lock()
        self._model_inflight: dict = {}
        self._counters = {"requests": 0, "rejected": 0, "errors": 0,
                          "rerouted": 0, "crashed": 0, "retries": 0,
                          "timeouts": 0, "breaker_open": 0}
        self._worker_breakers = {} if breaker is None else {
            worker_id: breaker.clone() for worker_id in worker_ids}
        self._model_breakers: dict = {}
        self._runtime = _runtime_snapshot()
        self._closed = False
        self._supervisor.start()

    # -- ScoringService-compatible surface --------------------------------
    def models(self) -> list:
        """Model ids available in the backing store."""
        return self.store.ids()

    def score(self, model_id: str, X, *, deadline=None):
        """Anomaly scores of ``X`` under ``model_id`` through the fleet.

        Exactly the single-service answer, for any worker count.  Raises
        ``KeyError`` (unknown model), ``ValueError`` (malformed input),
        :class:`FleetOverloadedError` (admission reject, retryable),
        :class:`RequestTimeoutError` (slow/lost reply while the worker
        is alive, retryable), :class:`WorkerCrashedError` (in-flight
        loss, retryable), :class:`WorkerFailedError` (worker given up
        on, *not* retryable), or
        :class:`~repro.resilience.DeadlineExceededError` (budget spent).

        With a ``retry_policy`` installed, retryable failures are
        retried here under the single request ``deadline``, each attempt
        excluding the workers that already failed this request so the
        retry lands on a ring successor.
        """
        if self._closed:
            raise RuntimeError("ScoringFleet is closed")
        arr = as_score_matrix(X)
        model_id = str(model_id)
        deadline = self._request_deadline(deadline)
        policy = self.retry_policy
        if policy is None:
            return self._score_once(model_id, arr, deadline, frozenset())
        exclude: set = set()
        attempt = 0
        while True:
            try:
                return self._score_once(model_id, arr, deadline, exclude)
            except Exception as exc:
                if attempt + 1 >= policy.max_attempts \
                        or not is_retryable(exc):
                    raise
                worker_id = getattr(exc, "worker_id", None)
                if worker_id is not None:
                    exclude.add(worker_id)
                pause = policy.delay(
                    attempt, retry_after=getattr(exc, "retry_after", None))
                if deadline is not None and pause >= deadline.remaining():
                    raise
                self._count("retries")
                time.sleep(pause)
                attempt += 1

    def _request_deadline(self, explicit) -> Deadline | None:
        """The deadline governing one ``score`` call."""
        if explicit is not None:
            return Deadline.coerce(explicit)
        if self.deadline is None:
            return None
        budget = self.deadline.budget \
            if isinstance(self.deadline, Deadline) else float(self.deadline)
        return Deadline.after(budget)

    def _score_once(self, model_id: str, arr, deadline, exclude):
        """One routed attempt: breakers -> admission -> submit -> wait."""
        if deadline is not None and deadline.expired:
            raise DeadlineExceededError(
                f"score({model_id!r}) exceeded its "
                f"{deadline.budget:g}s deadline")
        handle, rerouted = self._route(model_id, exclude)
        worker_breaker = self._worker_breakers.get(handle.worker_id)
        model_breaker = self._model_breaker(model_id)
        # Labels are built lazily: this check runs per request and must
        # not allocate on the (overwhelmingly common) allowed path.
        for breaker, kind in ((worker_breaker, "worker"),
                              (model_breaker, "model")):
            if breaker is not None and not breaker.allow():
                self._count("breaker_open")
                what = f"worker {handle.worker_id}" if kind == "worker" \
                    else f"model {model_id!r}"
                raise CircuitOpenError(
                    f"circuit breaker is open for {what}",
                    retry_after=round(breaker.reset_timeout / 4, 3))
        # Both breakers admitted this attempt (reserving probe slots when
        # half-open), so every path below must record an outcome on them.
        error = None
        try:
            request_id = next(self._request_ids)
            self._admit(model_id, handle, rerouted)
            try:
                reply = handle.submit("score", request_id, model_id, arr)
                timeout = self.request_timeout if deadline is None \
                    else deadline.clamp(self.request_timeout)
                if not reply.event.wait(timeout=timeout):
                    # Give up on this reply slot so it cannot leak (or
                    # complete into nowhere) after we stop waiting.
                    handle.forget(request_id)
                    if deadline is not None and deadline.expired:
                        raise DeadlineExceededError(
                            f"score({model_id!r}) exceeded its "
                            f"{deadline.budget:g}s deadline waiting on "
                            f"worker {handle.worker_id}")
                    if handle.is_alive():
                        self._count("timeouts")
                        raise RequestTimeoutError(
                            f"request to worker {handle.worker_id} timed "
                            f"out after {timeout:.1f}s (worker alive: "
                            f"slow or lost reply)",
                            retry_after=round(
                                self._latency_estimate(handle), 3),
                            worker_id=handle.worker_id)
                    raise WorkerCrashedError(
                        f"request to worker {handle.worker_id} timed out "
                        f"after {timeout:.1f}s and the worker is dead",
                        worker_id=handle.worker_id)
            finally:
                self._release(model_id)
            if reply.error is not None:
                self._count("errors")
                if isinstance(reply.error, Exception):
                    error = reply.error
                else:
                    error = _rebuild_error(reply.error)
                if isinstance(error, WorkerCrashedError):
                    self._count("crashed")
                    if error.worker_id is None:
                        error.worker_id = handle.worker_id
                raise error
            return reply.value
        except Exception as exc:
            error = exc
            raise
        finally:
            infra = isinstance(error, _INFRA_ERRORS)
            for breaker in (worker_breaker, model_breaker):
                if breaker is not None:
                    if infra:
                        breaker.record_failure()
                    else:
                        breaker.record_success()

    def stats(self) -> dict:
        """Fleet-wide observability: frontend counters + per-worker stats.

        Worker entries merge the supervisor's lifecycle view (state, pid,
        restarts, in-flight, heartbeat age) with the worker's own latest
        heartbeat payload (micro-batch counters, cache hit rates, queue
        depth, p50/p99 latency).  ``resilience`` reports the installed
        policies and live breaker states; ``runtime`` is the RunContext
        snapshot the fleet was constructed under — the context every
        worker process activated at boot.
        """
        workers = {}
        for worker_id, handle in self._supervisor.handles.items():
            info = handle.info()
            info.update(handle.last_stats)
            workers[worker_id] = info
        with self._admission_lock:
            counters = dict(self._counters)
            model_breakers = dict(self._model_breakers)
        healthy = self._supervisor.healthy_ids()
        return {
            **counters,
            "n_workers": self.n_workers,
            "healthy_workers": len(healthy),
            "total_restarts": self._supervisor.total_restarts,
            "sharding": {"replicas": self.ring.replicas,
                         "assignments": {
                             model_id: self.ring.assign(model_id)
                             for model_id in self.store.ids()}},
            "limits": {
                "max_inflight_per_worker": self.max_inflight_per_worker,
                "max_inflight_per_model": self.max_inflight_per_model},
            "resilience": {
                "retry_policy": None if self.retry_policy is None
                else self.retry_policy.get_params(),
                "deadline": None if self.deadline is None else (
                    self.deadline.budget
                    if isinstance(self.deadline, Deadline)
                    else float(self.deadline)),
                "breakers": {
                    "workers": {wid: b.stats() for wid, b
                                in self._worker_breakers.items()},
                    "models": {mid: b.stats() for mid, b
                               in model_breakers.items()},
                },
            },
            "workers": workers,
            "runtime": self._runtime,
        }

    def health(self) -> dict:
        """Liveness summary for ``/healthz`` with a three-state verdict.

        ``status`` is ``"ok"`` (full strength), ``"degraded"`` (serving,
        but with failed/restarting workers or open breakers — ring
        successors are covering), or ``"failing"`` (no healthy worker:
        requests are being rejected).
        """
        supervisor = self._supervisor
        healthy = supervisor.healthy_ids()
        failed = supervisor.failed_ids()
        restarting = supervisor.restarting_ids()
        with self._admission_lock:
            model_breakers = dict(self._model_breakers)
        open_breakers = sorted(
            [f"worker:{wid}" for wid, b in self._worker_breakers.items()
             if b.state != "closed"]
            + [f"model:{mid}" for mid, b in model_breakers.items()
               if b.state != "closed"])
        if not healthy:
            status = "failing"
        elif failed or restarting or open_breakers:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "n_workers": self.n_workers,
            "healthy_workers": len(healthy),
            "failed_workers": failed,
            "restarting_workers": restarting,
            "open_breakers": open_breakers,
            "total_restarts": supervisor.total_restarts,
        }

    # -- routing and admission --------------------------------------------
    def _route(self, model_id: str, exclude=frozenset()):
        """The live shard owner for ``model_id`` (+ whether re-routed).

        Routing avoids, in order of willingness to relax: dead/failed
        workers (always), the caller's per-request exclusions (workers
        that already failed this request), and workers whose breaker is
        open.  If avoiding everything suspect leaves no candidate, the
        softer exclusions are dropped tier by tier — a fleet down to its
        last live worker still routes to it.
        """
        handles = self._supervisor.handles
        healthy = set(self._supervisor.healthy_ids())
        if not healthy:
            if set(self._supervisor.failed_ids()) == set(handles):
                raise WorkerFailedError(
                    "every fleet worker has failed permanently")
            raise FleetOverloadedError(
                "no healthy fleet workers (restarts in progress)",
                retry_after=1.0)
        dead = set(handles) - healthy
        open_workers = {wid for wid, b in self._worker_breakers.items()
                        if b.state == "open"}
        owner = self.ring.assign(model_id)
        for avoid in (dead | set(exclude) | open_workers,
                      dead | set(exclude),
                      dead):
            if owner not in avoid:
                return handles[owner], False
            try:
                target = self.ring.assign(model_id, exclude=avoid)
            except LookupError:
                continue
            return handles[target], True
        raise FleetOverloadedError(  # unreachable: tier 3 always routes
            f"no routable worker for model {model_id!r}", retry_after=0.5)

    def _model_breaker(self, model_id: str):
        """The (lazily cloned) per-model breaker, or ``None``."""
        if self.breaker is None:
            return None
        with self._admission_lock:
            breaker = self._model_breakers.get(model_id)
            if breaker is None:
                breaker = self.breaker.clone()
                self._model_breakers[model_id] = breaker
            return breaker

    def _admit(self, model_id: str, handle, rerouted: bool) -> None:
        """Bounded admission; raises FleetOverloadedError when full."""
        depth = handle.in_flight()
        latency = self._latency_estimate(handle)
        with self._admission_lock:
            model_inflight = self._model_inflight.get(model_id, 0)
            if depth >= self.max_inflight_per_worker:
                self._counters["rejected"] += 1
                raise FleetOverloadedError(
                    f"worker {handle.worker_id} queue is full "
                    f"({depth} in flight)",
                    retry_after=round(max(0.05, depth * latency), 3))
            if model_inflight >= self.max_inflight_per_model:
                self._counters["rejected"] += 1
                raise FleetOverloadedError(
                    f"model {model_id!r} is at its in-flight cap "
                    f"({model_inflight})",
                    retry_after=round(max(0.05,
                                          model_inflight * latency), 3))
            self._model_inflight[model_id] = model_inflight + 1
            self._counters["requests"] += 1
            if rerouted:
                self._counters["rerouted"] += 1

    def _release(self, model_id: str) -> None:
        with self._admission_lock:
            remaining = self._model_inflight.get(model_id, 1) - 1
            if remaining <= 0:
                self._model_inflight.pop(model_id, None)
            else:
                self._model_inflight[model_id] = remaining

    def _count(self, key: str) -> None:
        with self._admission_lock:
            self._counters[key] += 1

    @staticmethod
    def _latency_estimate(handle) -> float:
        """Recent mean per-request latency (seconds) for Retry-After."""
        latency = handle.last_stats.get("latency") or {}
        mean_ms = latency.get("mean_ms")
        return (mean_ms / 1e3) if mean_ms else 0.01

    # -- lifecycle --------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop every worker (graceful drain, then escalation)."""
        if self._closed:
            return
        self._closed = True
        self._supervisor.close()

    def __enter__(self) -> "ScoringFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
