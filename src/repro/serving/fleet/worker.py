"""Fleet worker process: one shard-owning ScoringService behind queues.

A worker is a standalone process (spawned via
:func:`repro.runtime.start_process`, so it activates the fleet owner's
serialized :class:`~repro.runtime.RunContext` before doing anything
else) running :func:`worker_main`:

1. build a :class:`~repro.serving.service.ScoringService` over the
   artifact store — the worker reuses the exact micro-batching scorer the
   single-process service runs, which is what makes fleet scores
   identical to single-service scores;
2. **warm-start** its shard: pre-load the shard's model artifacts (up to
   the LRU capacity) so the first request after boot — or after a crash
   restart — never pays deserialisation latency;
3. announce ``ready`` and loop: pull messages off the request queue and
   feed ``score`` requests into the service's micro-batch queue via the
   non-blocking :meth:`~repro.serving.service.ScoringService.submit` —
   the receive loop never waits on a predict, so queued requests coalesce
   into batches exactly as in-process callers' would;
4. heartbeat: a side thread pushes per-worker stats (queue depth, batch
   sizes, cache hit rates, p50/p99 latency) to the supervisor every
   ``heartbeat_interval`` seconds.

Wire protocol (multiprocessing queues, one pair per worker)
-----------------------------------------------------------
frontend -> worker::

    ("score", request_id, model_id, X)     score a request
    ("stats", request_id)                  fresh stats snapshot
    ("stop",)                              drain + graceful exit

worker -> frontend::

    ("ready", worker_id, pid, warm_ids)    boot handshake
    ("result", request_id, scores, None)   success
    ("result", request_id, None, (etype, msg))   failure, by value
    ("heartbeat", worker_id, stats)        periodic observability push
    ("bye", worker_id, drained)            graceful-exit acknowledgement

Chaos hooks (:func:`repro.resilience.faults.inject`, no-ops unless a
fault plan is active): ``worker.request`` fires as each score request is
picked up (``crash`` plans hard-exit here), ``worker.reply`` fires just
before a result is sent back (``drop`` plans suppress the reply, so the
frontend observes a timeout against a live worker).

Errors cross the process boundary as ``(exception type name, message)``
pairs — never pickled exception objects, whose round-trip behaviour is
type-dependent — and are rebuilt into the matching built-in type on the
frontend side.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

from repro.resilience.faults import inject as _inject
from repro.serving.artifacts import ModelStore
from repro.serving.service import ScoringService

__all__ = ["latency_summary", "worker_main"]

#: Per-worker rolling window of request latencies (seconds).
LATENCY_WINDOW = 4096


def latency_summary(samples) -> dict:
    """p50/p99/mean over a latency window, in milliseconds."""
    samples = sorted(samples)
    if not samples:
        return {"count": 0, "p50_ms": None, "p99_ms": None, "mean_ms": None}
    n = len(samples)

    def pct(q: float) -> float:
        return round(samples[min(n - 1, int(q * n))] * 1e3, 3)

    return {
        "count": n,
        "p50_ms": pct(0.50),
        "p99_ms": pct(0.99),
        "mean_ms": round(sum(samples) / n * 1e3, 3),
    }


class _WorkerState:
    """Mutable counters shared between the loop, callbacks, heartbeat."""

    def __init__(self, worker_id: str, shard, service: ScoringService):
        self.worker_id = worker_id
        self.shard = list(shard)
        self.service = service
        self.lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.latencies = deque(maxlen=LATENCY_WINDOW)
        self.warm_ids: list = []

    def stats(self) -> dict:
        with self.lock:
            latency = latency_summary(self.latencies)
            requests, errors = self.requests, self.errors
        return {
            "pid": os.getpid(),
            "shard": list(self.shard),
            "warm_models": list(self.warm_ids),
            "requests": requests,
            "errors": errors,
            "latency": latency,
            "service": self.service.stats(),
        }


def _encode_error(exc: BaseException) -> tuple:
    message = str(exc.args[0]) if exc.args else str(exc)
    return (type(exc).__name__, message)


def worker_main(worker_id: str, store_root: str, shard, request_q,
                response_q, config: dict) -> None:
    """Run one fleet worker until a ``("stop",)`` sentinel arrives.

    ``config`` carries the per-worker service knobs (``cache_size``,
    ``max_batch_rows``, ``micro_batch``) plus ``heartbeat_interval``.
    Every failure mode is reported by value: a model that cannot load, a
    malformed request, a scoring error — the worker itself stays up.  A
    worker only *dies* on truly fatal events (killed, store unreadable at
    boot), which the supervisor handles by restarting it.
    """
    heartbeat_interval = float(config.get("heartbeat_interval", 0.25))
    service = ScoringService(
        ModelStore(store_root),
        cache_size=int(config.get("cache_size", 4)),
        max_batch_rows=int(config.get("max_batch_rows", 8192)),
        micro_batch=bool(config.get("micro_batch", True)),
    )
    state = _WorkerState(worker_id, shard, service)

    # Warm start: load the shard's models (hottest-first = shard order)
    # up to LRU capacity; beyond that a load would only evict another
    # warm model.  A model that fails to load is skipped — it will fail
    # per-request with a structured error instead of killing the boot.
    for model_id in state.shard[:service.cache_size]:
        try:
            service.get_model(model_id)
        except Exception:
            continue
        state.warm_ids.append(model_id)

    stop_heartbeat = threading.Event()

    def heartbeat_loop() -> None:
        while not stop_heartbeat.wait(heartbeat_interval):
            try:
                response_q.put(("heartbeat", worker_id, state.stats()))
            except Exception:
                return  # queue torn down: the fleet is closing

    heartbeat = threading.Thread(target=heartbeat_loop,
                                 name=f"repro-fleet-{worker_id}-heartbeat",
                                 daemon=True)
    heartbeat.start()
    response_q.put(("ready", worker_id, os.getpid(), list(state.warm_ids)))

    try:
        while True:
            message = request_q.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "stats":
                response_q.put(("result", message[1], state.stats(), None))
                continue
            if kind != "score":
                continue  # unknown message kinds are skipped, not fatal
            _, request_id, model_id, X = message
            started = time.perf_counter()

            def deliver(scores, error, request_id=request_id,
                        model_id=model_id, started=started):
                latency = time.perf_counter() - started
                with state.lock:
                    state.requests += 1
                    state.latencies.append(latency)
                    if error is not None:
                        state.errors += 1
                if _inject("worker.reply", worker=worker_id,
                           model=model_id) == "drop":
                    return  # chaos: the reply vanishes on the wire
                if error is not None:
                    response_q.put(("result", request_id, None,
                                    _encode_error(error)))
                else:
                    response_q.put(("result", request_id, scores, None))

            try:
                # Chaos hook: "crash" plans hard-exit the process here —
                # mid-request, before the reply, exactly like SIGKILL.
                _inject("worker.request", worker=worker_id, model=model_id)
                service.submit(model_id, X, deliver)
            except Exception as exc:
                # Validation failed before the queue: deliver by hand.
                deliver(None, exc)
    finally:
        # Graceful drain: close() answers everything already queued (the
        # submit callbacks flush those results out), then the worker
        # acknowledges — reporting whether the drain was clean — and
        # exits.
        drained = bool(service.close())
        stop_heartbeat.set()
        try:
            response_q.put(("bye", worker_id, drained))
        except Exception:
            pass
