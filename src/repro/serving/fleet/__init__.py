"""repro.serving.fleet — the multi-worker sharded scoring tier.

One in-process :class:`~repro.serving.service.ScoringService` is a
single GIL, a single model cache, and a single failure domain.  This
package scales it out while keeping its exact scores:

* :mod:`~repro.serving.fleet.sharding` — :class:`HashRing`, the
  deterministic consistent-hash assignment of model ids onto workers
  (stable across processes; membership changes move only the changed
  worker's models).
* :mod:`~repro.serving.fleet.worker` — the worker process: a shard-owning
  ScoringService that warm-starts its models at boot, coalesces incoming
  requests through the existing micro-batch queue, and heartbeats stats.
* :mod:`~repro.serving.fleet.supervisor` — lifecycle: spawn via
  :func:`repro.runtime.start_process` (serialized RunContext activated in
  the child), liveness monitoring, crash restarts with per-incarnation
  queues, fail-fast for in-flight requests of a dead worker.
* :mod:`~repro.serving.fleet.frontend` — :class:`ScoringFleet`: routing
  over live membership, bounded admission with explicit backpressure
  (:class:`FleetOverloadedError` -> HTTP 503 + ``Retry-After``),
  per-model QoS caps, and aggregated fleet observability
  (:meth:`~ScoringFleet.stats` / ``GET /stats``).

End-to-end::

    repro serve models/ --workers 4 --port 8000
    curl http://127.0.0.1:8000/stats

Determinism: fleet scores are exactly ``np.array_equal`` to
single-process ScoringService scores for any worker count.
"""

from repro.serving.fleet.frontend import FleetOverloadedError, ScoringFleet
from repro.serving.fleet.sharding import HashRing
from repro.serving.fleet.supervisor import (
    Supervisor,
    WorkerCrashedError,
    WorkerFailedError,
    WorkerHandle,
)
from repro.serving.fleet.worker import worker_main

__all__ = [
    "FleetOverloadedError",
    "HashRing",
    "ScoringFleet",
    "Supervisor",
    "WorkerCrashedError",
    "WorkerFailedError",
    "WorkerHandle",
    "worker_main",
]
