"""Deterministic consistent hashing: model ids onto scorer workers.

The fleet assigns every model id to exactly one worker so each worker's
LRU cache holds a disjoint shard of the store — aggregate cache capacity
then scales with the worker count instead of every worker thrashing over
the full model set.  The assignment must be:

* **deterministic across processes** — the frontend routes and the worker
  warm-starts from independently computed assignments, so the hash cannot
  be Python's seeded ``hash()``; ring points are SHA-256 digests.
* **stable under membership change** — when a worker dies, only *its*
  models may move (to their ring successors); when it comes back (or a
  new worker joins), only the models it owns may move.  That is the
  classic consistent-hashing contract: each worker id is hashed onto the
  ring at ``replicas`` points, a key belongs to the first worker point at
  or after the key's own hash (wrapping around), and membership changes
  perturb only the arcs adjacent to the changed worker's points.

Routing around failures uses the same ring: :meth:`HashRing.assign` with
``exclude`` walks past the dead worker's points to the next live owner,
so a recovering shard is served by its successors — with identical
scores, since placement never changes results — and snaps back the
moment the worker is healthy again.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def hash_point(token: str) -> int:
    """A stable 64-bit ring position for ``token`` (SHA-256 prefix)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over a fixed set of worker ids.

    Parameters
    ----------
    worker_ids : sequence of str
        The fleet's worker identities (order-insensitive: the ring is a
        pure function of the id *set*).
    replicas : int
        Virtual nodes per worker.  More replicas smooth the shard-size
        distribution (64 keeps the max/mean shard ratio low for
        single-digit fleets) at O(workers x replicas) ring size.
    """

    def __init__(self, worker_ids, replicas: int = 64):
        ids = tuple(str(wid) for wid in worker_ids)
        if not ids:
            raise ValueError("HashRing needs at least one worker id")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate worker ids: {sorted(ids)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.worker_ids = tuple(sorted(ids))
        self.replicas = int(replicas)
        points = []
        for wid in self.worker_ids:
            for replica in range(self.replicas):
                points.append((hash_point(f"{wid}#{replica}"), wid))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [wid for _, wid in points]

    def assign(self, key: str, exclude=()) -> str:
        """The worker owning ``key``: first ring point clockwise from the
        key's hash whose worker is not in ``exclude``.

        Walking past excluded workers is exactly the recovery re-route:
        only keys owned by an excluded worker change hands, and they land
        on their ring successors.  Raises ``LookupError`` when every
        worker is excluded.
        """
        exclude = frozenset(exclude)
        start = bisect.bisect_left(self._points, hash_point(str(key)))
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in exclude:
                return owner
        raise LookupError("no live worker to assign to: all excluded")

    def shard_map(self, keys, exclude=()) -> dict:
        """Every worker's sorted shard: ``{worker_id: [key, ...]}``.

        Non-excluded workers all appear, even with an empty shard — a
        worker with no models still boots, heartbeats, and picks up
        re-routed traffic.
        """
        shards = {wid: [] for wid in self.worker_ids
                  if wid not in frozenset(exclude)}
        for key in keys:
            shards[self.assign(key, exclude)].append(str(key))
        for shard in shards.values():
            shard.sort()
        return shards

    def __repr__(self) -> str:
        return (f"HashRing(workers={list(self.worker_ids)}, "
                f"replicas={self.replicas})")
