"""Experiment harness: fit a source model and its UADB booster, evaluate.

The unit of work is :func:`run_single` — one (detector, dataset, seed)
cell producing source/booster AUCROC and AP plus the per-iteration trace.
:class:`ExperimentRunner` executes a detectors x datasets x seeds grid of
such cells, optionally fanning them out over a ``concurrent.futures``
process pool (``n_jobs``) and caching each cell's :class:`RunResult` on
disk (``cache_dir``), keyed by a hash of the cell configuration and the
dataset contents.  :func:`run_grid` is the functional front-end used by
the CLI and benchmarks; it reproduces exactly the protocol behind the
paper's Table IV / Table V / Figs 7-10.

Cells are deterministic given their seed, so the parallel runner returns
results identical to a serial sweep, in the same grid order.

Neighbor-based detector cells (KNN / LOF / COF / SOD / ABOD) share one
k-NN graph per dataset through the process-wide
:mod:`repro.kernels` cache: every cell standardizes the same dataset to
the same bytes, so the first neighbor cell builds the graph and the rest
hit (observable via :func:`repro.kernels.cache_stats`).  ``num_threads``
forwards the kernel thread count into pool workers, which do not inherit
a parent's :func:`repro.kernels.set_num_threads` call.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.api.spec import as_spec, build_spec, canonical_spec, spec_key
from repro.core.booster import UADBooster
from repro.core.variants import make_variant
from repro.data.preprocessing import StandardScaler
from repro.data.registry import load_dataset
from repro.data.synthetic import Dataset
from repro.detectors.registry import DETECTOR_NAMES, make_detector
from repro.metrics.ranking import auc_roc, average_precision
from repro.utils.rng import check_random_state

__all__ = ["RunResult", "ExperimentRunner", "run_single", "run_variant",
           "run_grid", "spec_label", "DEFAULT_BENCH_DATASETS"]

# A deliberately heterogeneous 20-dataset core used by the default (fast)
# benchmark configuration: it mixes datasets where the classic detectors do
# well with datasets where at least one of them fails badly (the
# assumption-misalignment cells that drive the paper's largest gains).  The
# full 84-dataset sweep is available via the REPRO_FULL_BENCH environment
# switch in the benchmark suite.
DEFAULT_BENCH_DATASETS = (
    "abalone", "annthyroid", "breastw", "cardio", "fault", "glass",
    "Ionosphere", "letter", "mammography", "mnist", "musk", "Parkinson",
    "pendigits", "Pima", "satellite", "SpamBase", "thyroid", "vowels",
    "CIFAR10_2", "yelp",
)


@dataclass
class RunResult:
    """Metrics from one (detector, dataset, seed) cell.

    ``iteration_auc``/``iteration_ap`` hold the booster metric after each
    UADB iteration (length ``T``); the final entries equal ``booster_auc``/
    ``booster_ap`` up to the final ensemble refresh.
    """

    detector: str
    dataset: str
    seed: int
    source_auc: float
    source_ap: float
    booster_auc: float
    booster_ap: float
    iteration_auc: list = field(default_factory=list)
    iteration_ap: list = field(default_factory=list)

    @property
    def auc_improvement(self) -> float:
        return self.booster_auc - self.source_auc

    @property
    def ap_improvement(self) -> float:
        return self.booster_ap - self.source_ap


def _standardize(X: np.ndarray) -> np.ndarray:
    return StandardScaler().fit_transform(X)


def spec_label(spec: dict) -> str:
    """Short display label for a spec cell.

    A bare name spec (no parameter overrides) labels as the name itself,
    so classic name-driven grids read unchanged; parameterised specs get
    a stable ``type@hash`` suffix distinguishing configurations.
    """
    if not spec.get("params"):
        return spec["type"]
    return f"{spec['type']}@{spec_key(spec, 8)}"


def run_single(dataset: Dataset, detector_name, n_iterations: int = 10,
               seed: int = 0, booster_kwargs: dict | None = None,
               detector_kwargs: dict | None = None) -> RunResult:
    """Fit a source model and its UADB booster on ``dataset``.

    ``detector_name`` may be a registry name (``"IForest"``), a component
    spec dict (``{"type": ..., "params": {...}}`` — including a whole
    ``Pipeline`` spec, since pipelines follow the detector contract), or
    a live estimator.  Features are standardised before fitting
    (ADBench's preprocessing); labels are used only for evaluation.
    """
    rng = check_random_state(seed)
    X = _standardize(dataset.X)
    y = dataset.y

    spec = as_spec(detector_name)
    if detector_kwargs:
        spec = {"type": spec["type"],
                "params": {**spec.get("params", {}), **detector_kwargs}}
    detector = build_spec(spec, random_state=rng)
    detector.fit(X)
    source_scores = detector.fit_scores()

    kwargs = dict(booster_kwargs or {})
    kwargs.setdefault("n_iterations", n_iterations)
    booster = UADBooster(random_state=rng, **kwargs)
    booster.fit(X, source_scores)

    iteration_auc, iteration_ap = [], []
    if booster.history_ is not None:
        for scores in booster.history_.booster_scores:
            iteration_auc.append(auc_roc(y, scores))
            iteration_ap.append(average_precision(y, scores))

    return RunResult(
        detector=spec_label(spec),
        dataset=dataset.name,
        seed=seed,
        source_auc=auc_roc(y, source_scores),
        source_ap=average_precision(y, source_scores),
        booster_auc=auc_roc(y, booster.scores_),
        booster_ap=average_precision(y, booster.scores_),
        iteration_auc=iteration_auc,
        iteration_ap=iteration_ap,
    )


def run_variant(dataset: Dataset, detector_name: str, variant: str,
                n_iterations: int = 10, seed: int = 0,
                variant_kwargs: dict | None = None) -> dict:
    """Fit one of the Table VI alternative boosters; returns metric dict."""
    rng = check_random_state(seed)
    X = _standardize(dataset.X)
    y = dataset.y
    detector = make_detector(detector_name, random_state=rng)
    detector.fit(X)
    source_scores = detector.fit_scores()

    kwargs = dict(variant_kwargs or {})
    kwargs.setdefault("n_iterations", n_iterations)
    model = make_variant(variant, random_state=rng, **kwargs)
    model.fit(X, source_scores)
    return {
        "detector": detector_name,
        "dataset": dataset.name,
        "variant": variant,
        "auc": auc_roc(y, model.scores_),
        "ap": average_precision(y, model.scores_),
        "source_auc": auc_roc(y, source_scores),
        "source_ap": average_precision(y, source_scores),
    }


def _resolve_datasets(datasets, max_samples: int,
                      max_features: int) -> list:
    """Accept Dataset objects, names, or the 'default' marker."""
    resolved = []
    for item in datasets:
        if isinstance(item, Dataset):
            resolved.append(item)
        else:
            resolved.append(load_dataset(item, max_samples=max_samples,
                                         max_features=max_features))
    return resolved


def _default_worker_threads(n_jobs: int):
    """Kernel threads per pool worker when nothing is configured.

    Without this, every worker resolves the ambient default — the full
    CPU count — and a parallel grid oversubscribes ``n_jobs x cores``
    GEMM threads.  Splitting the cores keeps the pool the outer level
    of parallelism.  Explicit configuration (``num_threads``,
    :func:`repro.kernels.set_num_threads`, ``REPRO_NUM_THREADS``) wins.
    """
    from repro.kernels.threading import get_configured_num_threads

    if (get_configured_num_threads() is not None
            or os.environ.get("REPRO_NUM_THREADS", "").strip()):
        return None
    return max(1, (os.cpu_count() or 1) // n_jobs)


def _execute_cell(spec: dict) -> RunResult:
    """Run one grid cell from its picklable spec (process-pool worker)."""
    if spec.get("num_threads") is not None:
        from repro.kernels import set_num_threads

        set_num_threads(spec["num_threads"])
    return run_single(
        spec["dataset"], spec["detector"],
        n_iterations=spec["n_iterations"], seed=spec["seed"],
        booster_kwargs=spec["booster_kwargs"])


class ExperimentRunner:
    """Execute a grid of (detector, dataset, seed) cells, possibly in parallel.

    Parameters
    ----------
    n_jobs : int
        Worker processes for the sweep.  1 (default) runs cells inline;
        ``n_jobs > 1`` fans pending cells out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.  Cells are
        deterministic given their seed, so the returned list is identical
        to a serial run and always in grid order (datasets outermost,
        seeds innermost) regardless of completion order.
    cache_dir : str, Path, or None
        When set, each finished cell's :class:`RunResult` is written to
        ``cache_dir`` as JSON, keyed by a SHA-256 over the cell
        configuration *and the dataset contents*; later sweeps (any
        process) reuse matching entries instead of re-running the cell.
        Unreadable or incompatible cache files are treated as misses.
    progress : callable or None
        Called with a one-line status string after every cell, including
        a ``[done/total]`` counter; cached cells are flagged.
    num_threads : int or None
        Worker-thread count for the shared neighbor kernels
        (:func:`repro.kernels.set_num_threads`), applied for the
        duration of the grid in this process and in every pool worker;
        the caller's configuration is restored when the grid returns.
        ``None`` keeps the ambient setting (``REPRO_NUM_THREADS``, then
        the CPU count).  Never changes results.

    Examples
    --------
    >>> runner = ExperimentRunner(n_jobs=4, cache_dir="results/.cache")
    >>> results = runner.run_grid(detectors=("IForest", "HBOS"),
    ...                           datasets=("glass", "cardio"), seeds=(0, 1))
    """

    # 3: PR-4 exact-recompute neighbor kernels shift KNN/LOF/COF/SOD
    # scores at the ulp level, so pre-PR4 cached cells must not hit.
    _CACHE_VERSION = 3

    def __init__(self, n_jobs: int = 1, cache_dir=None, progress=None,
                 num_threads: int | None = None):
        if int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None and self.cache_dir.exists() \
                and not self.cache_dir.is_dir():
            raise ValueError(
                f"cache_dir is not a directory: {self.cache_dir}")
        self.progress = progress
        if num_threads is not None and int(num_threads) < 1:
            raise ValueError(
                f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = None if num_threads is None else int(num_threads)

    def run_grid(self, detectors=DETECTOR_NAMES,
                 datasets=DEFAULT_BENCH_DATASETS, seeds=(0,),
                 n_iterations: int = 10, max_samples: int = 600,
                 max_features: int = 32,
                 booster_kwargs: dict | None = None) -> list:
        """Run the full detector x dataset x seed grid; see :func:`run_grid`.

        ``detectors`` entries may be registry names, component spec dicts
        (arbitrary configurations, whole pipelines), or live estimators —
        everything normalises through :func:`repro.api.as_spec`.
        """
        worker_threads = self.num_threads
        if worker_threads is None and self.n_jobs > 1:
            worker_threads = _default_worker_threads(self.n_jobs)
        restore_threads = worker_threads is not None
        if restore_threads:
            from repro.kernels.threading import get_configured_num_threads

            prior_threads = get_configured_num_threads()
        resolved = _resolve_datasets(datasets, max_samples, max_features)
        det_specs = [as_spec(det) for det in detectors]
        specs = [
            {"dataset": dataset, "detector": det_spec, "seed": seed,
             "n_iterations": n_iterations, "booster_kwargs": booster_kwargs,
             "num_threads": worker_threads}
            for dataset in resolved
            for det_spec in det_specs
            for seed in seeds
        ]
        results = [None] * len(specs)
        done = 0
        pending = []
        for i, spec in enumerate(specs):
            cached = self._cache_load(spec)
            if cached is not None:
                results[i] = cached
                done += 1
                self._report(cached, done, len(specs), cached_hit=True)
            else:
                pending.append(i)

        try:
            if self.n_jobs == 1 or len(pending) <= 1:
                for i in pending:
                    results[i] = _execute_cell(specs[i])
                    self._cache_store(specs[i], results[i])
                    done += 1
                    self._report(results[i], done, len(specs))
            else:
                workers = min(self.n_jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {pool.submit(_execute_cell, specs[i]): i
                               for i in pending}
                    for future in as_completed(futures):
                        i = futures[future]
                        results[i] = future.result()
                        self._cache_store(specs[i], results[i])
                        done += 1
                        self._report(results[i], done, len(specs))
        finally:
            # Serial cells apply num_threads in this process (via
            # _execute_cell); the grid must not leak that setting into
            # the caller's process-global kernel configuration.
            if restore_threads:
                from repro.kernels import set_num_threads

                set_num_threads(prior_threads)
        return results

    # -- progress -----------------------------------------------------------

    def _report(self, result: RunResult, done: int, total: int,
                cached_hit: bool = False) -> None:
        if self.progress is None:
            return
        suffix = "  [cached]" if cached_hit else ""
        self.progress(
            f"[{done}/{total}] {result.detector:>9s} on "
            f"{result.dataset:<20s} seed={result.seed} "
            f"AUC {result.source_auc:.3f}->{result.booster_auc:.3f}{suffix}"
        )

    # -- on-disk result cache ----------------------------------------------

    def _cache_path(self, spec: dict) -> Path:
        dataset = spec["dataset"]
        fingerprint = hashlib.sha256()
        fingerprint.update(dataset.name.encode())
        fingerprint.update(np.ascontiguousarray(dataset.X).tobytes())
        fingerprint.update(np.ascontiguousarray(dataset.y).tobytes())
        # The detector enters the key as its canonical spec JSON, so a
        # registry name, its explicit spec (any key order, omitted or
        # empty params), and a default-constructed live estimator all
        # hash identically — and any parameter change is a guaranteed
        # miss.
        key = json.dumps(
            {"version": self._CACHE_VERSION,
             "detector": canonical_spec(spec["detector"]),
             "dataset": fingerprint.hexdigest(),
             "seed": spec["seed"],
             "n_iterations": spec["n_iterations"],
             "booster_kwargs": spec["booster_kwargs"]},
            sort_keys=True, default=repr,
        )
        digest = hashlib.sha256(key.encode()).hexdigest()[:16]
        label = spec_label(spec["detector"])
        safe = "".join(c if c.isalnum() else "-" for c in
                       f"{label}-{dataset.name}")
        return self.cache_dir / (f"{safe}-s{spec['seed']}-{digest}.json")

    def _cache_load(self, spec: dict):
        if self.cache_dir is None:
            return None
        try:
            with open(self._cache_path(spec)) as fh:
                return RunResult(**json.load(fh))
        except (OSError, ValueError, TypeError):
            return None

    def _cache_store(self, spec: dict, result: RunResult) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(spec)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump(asdict(result), fh)
        os.replace(tmp, path)


def run_grid(detectors=DETECTOR_NAMES, datasets=DEFAULT_BENCH_DATASETS,
             seeds=(0,), n_iterations: int = 10, max_samples: int = 600,
             max_features: int = 32, booster_kwargs: dict | None = None,
             progress=None, n_jobs: int = 1, cache_dir=None,
             num_threads: int | None = None) -> list:
    """Run the full detector x dataset x seed grid.

    Parameters
    ----------
    detectors : iterable of str, spec dict, or estimator
        Registry names, ``{"type": ..., "params": {...}}`` component
        specs (including whole ``Pipeline`` specs), or live estimators.
    datasets : iterable of str or Dataset
    seeds : iterable of int
        Independent repetitions (seed-averaged downstream).
    max_samples, max_features : int
        Size caps applied when loading named benchmark datasets.
    progress : callable or None
        Called with a status string after every cell (hook for the CLI
        and benchmarks).
    n_jobs : int
        Worker processes (see :class:`ExperimentRunner`); cells are
        deterministic, so any ``n_jobs`` produces identical results.
    cache_dir : str, Path, or None
        On-disk :class:`RunResult` cache (see :class:`ExperimentRunner`).
    num_threads : int or None
        Kernel worker threads (see :class:`ExperimentRunner`).

    Returns
    -------
    list of RunResult
        In grid order: datasets outermost, then detectors, then seeds.
    """
    runner = ExperimentRunner(n_jobs=n_jobs, cache_dir=cache_dir,
                              progress=progress, num_threads=num_threads)
    return runner.run_grid(
        detectors=detectors, datasets=datasets, seeds=seeds,
        n_iterations=n_iterations, max_samples=max_samples,
        max_features=max_features, booster_kwargs=booster_kwargs)
