"""Experiment harness: fit a source model and its UADB booster, evaluate.

The unit of work is :func:`run_single` — one (detector, dataset, seed)
cell producing source/booster AUCROC and AP plus the per-iteration trace.
:class:`ExperimentRunner` executes a detectors x datasets x seeds grid of
such cells, optionally fanning them out over a ``concurrent.futures``
process pool (``n_jobs``) and caching each cell's :class:`RunResult` on
disk (``cache_dir``), keyed by a hash of the cell configuration and the
dataset contents.  :func:`run_grid` is the functional front-end used by
the CLI and benchmarks; it reproduces exactly the protocol behind the
paper's Table IV / Table V / Figs 7-10.

Cells are deterministic given their seed, so the runner returns results
identical to a serial sweep, in the same grid order, for **every**
executor backend (``serial`` / ``thread`` / ``process``) and every
thread/job budget.

Execution routes through :mod:`repro.runtime`: ``n_jobs``, the kernel
thread count, and the cache directory resolve through the active
:class:`~repro.runtime.RunContext` (explicit arg > context >
``REPRO_BENCH_JOBS`` / ``REPRO_NUM_THREADS`` / ``REPRO_BENCH_CACHE`` >
default), cells fan out over a :class:`~repro.runtime.Executor` whose
cooperative budgeting splits the thread budget across workers, and each
cached cell records the runtime snapshot it was produced under.

Neighbor-based detector cells (KNN / LOF / COF / SOD / ABOD) share one
k-NN graph per dataset through the process-wide
:mod:`repro.kernels` cache: every cell standardizes the same dataset to
the same bytes, so the first neighbor cell builds the graph and the rest
hit (observable via :func:`repro.kernels.cache_stats`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro import runtime
from repro.api.spec import as_spec, build_spec, canonical_spec, spec_key
from repro.resilience import RetryPolicy, inject
from repro.core.booster import UADBooster
from repro.core.variants import make_variant
from repro.data.preprocessing import StandardScaler
from repro.data.registry import load_dataset
from repro.data.synthetic import Dataset
from repro.detectors.registry import DETECTOR_NAMES, make_detector
from repro.metrics.ranking import auc_roc, average_precision
from repro.utils.fingerprint import array_fingerprint
from repro.utils.rng import check_random_state

__all__ = ["RunResult", "ExperimentRunner", "run_single", "run_variant",
           "run_grid", "spec_label", "DEFAULT_BENCH_DATASETS"]

# A deliberately heterogeneous 20-dataset core used by the default (fast)
# benchmark configuration: it mixes datasets where the classic detectors do
# well with datasets where at least one of them fails badly (the
# assumption-misalignment cells that drive the paper's largest gains).  The
# full 84-dataset sweep is available via the REPRO_FULL_BENCH environment
# switch in the benchmark suite.
DEFAULT_BENCH_DATASETS = (
    "abalone", "annthyroid", "breastw", "cardio", "fault", "glass",
    "Ionosphere", "letter", "mammography", "mnist", "musk", "Parkinson",
    "pendigits", "Pima", "satellite", "SpamBase", "thyroid", "vowels",
    "CIFAR10_2", "yelp",
)


@dataclass
class RunResult:
    """Metrics from one (detector, dataset, seed) cell.

    ``iteration_auc``/``iteration_ap`` hold the booster metric after each
    UADB iteration (length ``T``); the final entries equal ``booster_auc``/
    ``booster_ap`` up to the final ensemble refresh.
    """

    detector: str
    dataset: str
    seed: int
    source_auc: float
    source_ap: float
    booster_auc: float
    booster_ap: float
    iteration_auc: list = field(default_factory=list)
    iteration_ap: list = field(default_factory=list)

    @property
    def auc_improvement(self) -> float:
        return self.booster_auc - self.source_auc

    @property
    def ap_improvement(self) -> float:
        return self.booster_ap - self.source_ap


def _standardize(X: np.ndarray) -> np.ndarray:
    return StandardScaler().fit_transform(X)


def spec_label(spec: dict) -> str:
    """Short display label for a spec cell.

    A bare name spec (no parameter overrides) labels as the name itself,
    so classic name-driven grids read unchanged; parameterised specs get
    a stable ``type@hash`` suffix distinguishing configurations.
    """
    if not spec.get("params"):
        return spec["type"]
    return f"{spec['type']}@{spec_key(spec, 8)}"


def run_single(dataset: Dataset, detector_name, n_iterations: int = 10,
               seed: int = 0, booster_kwargs: dict | None = None,
               detector_kwargs: dict | None = None) -> RunResult:
    """Fit a source model and its UADB booster on ``dataset``.

    ``detector_name`` may be a registry name (``"IForest"``), a component
    spec dict (``{"type": ..., "params": {...}}`` — including a whole
    ``Pipeline`` spec, since pipelines follow the detector contract), or
    a live estimator.  Features are standardised before fitting
    (ADBench's preprocessing); labels are used only for evaluation.
    """
    rng = check_random_state(seed)
    X = _standardize(dataset.X)
    y = dataset.y

    spec = as_spec(detector_name)
    if detector_kwargs:
        spec = {"type": spec["type"],
                "params": {**spec.get("params", {}), **detector_kwargs}}
    detector = build_spec(spec, random_state=rng)
    detector.fit(X)
    source_scores = detector.fit_scores()

    kwargs = dict(booster_kwargs or {})
    kwargs.setdefault("n_iterations", n_iterations)
    booster = UADBooster(random_state=rng, **kwargs)
    booster.fit(X, source_scores)

    iteration_auc, iteration_ap = [], []
    if booster.history_ is not None:
        for scores in booster.history_.booster_scores:
            iteration_auc.append(auc_roc(y, scores))
            iteration_ap.append(average_precision(y, scores))

    return RunResult(
        detector=spec_label(spec),
        dataset=dataset.name,
        seed=seed,
        source_auc=auc_roc(y, source_scores),
        source_ap=average_precision(y, source_scores),
        booster_auc=auc_roc(y, booster.scores_),
        booster_ap=average_precision(y, booster.scores_),
        iteration_auc=iteration_auc,
        iteration_ap=iteration_ap,
    )


def run_variant(dataset: Dataset, detector_name: str, variant: str,
                n_iterations: int = 10, seed: int = 0,
                variant_kwargs: dict | None = None) -> dict:
    """Fit one of the Table VI alternative boosters; returns metric dict."""
    rng = check_random_state(seed)
    X = _standardize(dataset.X)
    y = dataset.y
    detector = make_detector(detector_name, random_state=rng)
    detector.fit(X)
    source_scores = detector.fit_scores()

    kwargs = dict(variant_kwargs or {})
    kwargs.setdefault("n_iterations", n_iterations)
    model = make_variant(variant, random_state=rng, **kwargs)
    model.fit(X, source_scores)
    return {
        "detector": detector_name,
        "dataset": dataset.name,
        "variant": variant,
        "auc": auc_roc(y, model.scores_),
        "ap": average_precision(y, model.scores_),
        "source_auc": auc_roc(y, source_scores),
        "source_ap": average_precision(y, source_scores),
    }


def _resolve_datasets(datasets, max_samples: int,
                      max_features: int) -> list:
    """Accept Dataset objects, names, or the 'default' marker."""
    resolved = []
    for item in datasets:
        if isinstance(item, Dataset):
            resolved.append(item)
        else:
            resolved.append(load_dataset(item, max_samples=max_samples,
                                         max_features=max_features))
    return resolved


def _execute_cell(spec: dict) -> RunResult:
    """Run one grid cell from its picklable spec (executor task).

    Thread budgets, seeds, and cache flags arrive through the
    :class:`~repro.runtime.RunContext` the executor activates around the
    task — the cell body is pure work.  When the runner installed a
    ``retry`` policy (carried in the spec as plain params, so the spec
    stays picklable for the process backend), transient failures —
    injected faults, flaky storage — are retried *inside the worker*
    with seeded backoff before the cell is given up on.
    """
    def cell() -> RunResult:
        # Chaos hook: an "error" plan entry targeted at harness.cell
        # raises a retryable InjectedFault here (a transient cell
        # failure); no-op unless a fault plan is active.
        inject("harness.cell", detector=spec["detector"].get("type"),
               dataset=spec["dataset"].name, seed=spec["seed"])
        return run_single(
            spec["dataset"], spec["detector"],
            n_iterations=spec["n_iterations"], seed=spec["seed"],
            booster_kwargs=spec["booster_kwargs"])

    retry = spec.get("retry")
    if not retry:
        return cell()
    return RetryPolicy(**retry).call(cell)


class ExperimentRunner:
    """Execute a grid of (detector, dataset, seed) cells, possibly in parallel.

    Parameters
    ----------
    n_jobs : int or None
        Worker budget for the sweep.  ``None`` (default) resolves
        through the active :class:`~repro.runtime.RunContext`
        (``REPRO_BENCH_JOBS`` is the environment equivalent; 1 when
        nothing is configured).  1 runs cells inline; larger budgets fan
        pending cells out over a :class:`~repro.runtime.Executor`.
        Cells are deterministic given their seed, so the returned list
        is identical to a serial run and always in grid order (datasets
        outermost, seeds innermost) regardless of completion order.
    cache_dir : str, Path, or None
        When set, each finished cell's :class:`RunResult` is written to
        ``cache_dir`` as JSON — alongside the runtime snapshot it was
        produced under — keyed by a SHA-256 over the cell configuration
        *and the dataset contents*; later sweeps (any process) reuse
        matching entries instead of re-running the cell.  Unreadable or
        incompatible cache files are treated as misses.  ``None``
        resolves through the context (``REPRO_BENCH_CACHE``).
    progress : callable or None
        Called with a one-line status string after every cell, including
        a ``[done/total]`` counter; cached cells are flagged.
    num_threads : int or None
        Explicit per-worker kernel-thread budget.  ``None`` (default)
        lets the executor split the context's thread budget across
        workers cooperatively (an ``n_jobs=4`` grid on 8 cores gives
        each worker 2 kernel threads).  Scoped through the executor's
        worker contexts — the caller's configuration is untouched even
        when a cell raises.  Never changes results.
    backend : {'serial', 'thread', 'process'} or None
        Executor backend for pending cells.  ``None`` picks ``process``
        when the resolved ``n_jobs`` exceeds 1, else ``serial``.  All
        backends return bit-identical results.
    journal : str, Path, or None
        When set, every *computed* cell is appended to this JSONL file —
        flushed and ``fsync``'d per line, so a SIGKILL mid-sweep loses
        at most the cell in flight.  Unlike the cache (content-keyed,
        shared, best-effort), the journal is a per-sweep crash log: one
        file, one sweep, replayable.
    resume : bool
        Replay the journal before running: cells whose key appears in it
        are taken from the journal (zero recomputation) and only the
        remainder runs.  Requires ``journal``.  The resumed sweep's
        results table is byte-identical to an uninterrupted run — cells
        are deterministic and the journal stores exact values.
    retry : RetryPolicy, int, or None
        Per-cell transient-failure retry, executed inside the worker.
        An int is shorthand for ``RetryPolicy(max_attempts=int)``.  Only
        errors declaring ``retryable = True`` (e.g. injected faults,
        transient storage errors) are retried; real cell bugs still
        surface immediately.

    After :meth:`run_grid` returns, ``last_counters`` holds
    ``{"cells", "cache_hits", "journal_hits", "computed"}`` — the
    audit trail resume tests use to assert zero recomputation.

    Examples
    --------
    >>> runner = ExperimentRunner(n_jobs=4, cache_dir="results/.cache")
    >>> results = runner.run_grid(detectors=("IForest", "HBOS"),
    ...                           datasets=("glass", "cardio"), seeds=(0, 1))
    """

    # 4: cache files gained the runtime snapshot wrapper and the dataset
    # hash moved to the shared repro.utils.fingerprint helper (which
    # prefixes shape/dtype per array), so pre-PR5 entries must not hit.
    _CACHE_VERSION = 4

    def __init__(self, n_jobs: int | None = None, cache_dir=None,
                 progress=None, num_threads: int | None = None,
                 backend: str | None = None, journal=None,
                 resume: bool = False, retry=None):
        if n_jobs is not None and int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = None if n_jobs is None else int(n_jobs)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None and self.cache_dir.exists() \
                and not self.cache_dir.is_dir():
            raise ValueError(
                f"cache_dir is not a directory: {self.cache_dir}")
        self.progress = progress
        if num_threads is not None and int(num_threads) < 1:
            raise ValueError(
                f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = None if num_threads is None else int(num_threads)
        if backend is not None and backend not in runtime.BACKENDS:
            raise ValueError(
                f"backend must be one of {runtime.BACKENDS} or None, "
                f"got {backend!r}")
        self.backend = backend
        self.journal = Path(journal) if journal is not None else None
        if resume and self.journal is None:
            raise ValueError("resume=True requires a journal path")
        self.resume = bool(resume)
        if retry is not None and not isinstance(retry, RetryPolicy):
            retry = RetryPolicy(max_attempts=int(retry))
        self.retry = retry
        self.last_counters: dict = {}

    def run_grid(self, detectors=DETECTOR_NAMES,
                 datasets=DEFAULT_BENCH_DATASETS, seeds=(0,),
                 n_iterations: int = 10, max_samples: int = 600,
                 max_features: int = 32,
                 booster_kwargs: dict | None = None) -> list:
        """Run the full detector x dataset x seed grid; see :func:`run_grid`.

        ``detectors`` entries may be registry names, component spec dicts
        (arbitrary configurations, whole pipelines), or live estimators —
        everything normalises through :func:`repro.api.as_spec`.
        """
        n_jobs = runtime.resolve_n_jobs(self.n_jobs)
        cache_dir = self.cache_dir
        if cache_dir is None:
            resolved_dir = runtime.resolve_cache_dir()
            cache_dir = Path(resolved_dir) if resolved_dir else None
        resolved = _resolve_datasets(datasets, max_samples, max_features)
        det_specs = [as_spec(det) for det in detectors]
        retry_params = None if self.retry is None else \
            self.retry.get_params()
        specs = [
            {"dataset": dataset, "detector": det_spec, "seed": seed,
             "n_iterations": n_iterations, "booster_kwargs": booster_kwargs,
             "retry": retry_params}
            for dataset in resolved
            for det_spec in det_specs
            for seed in seeds
        ]
        journaled = self._journal_load() if self.resume else {}
        counters = {"cells": len(specs), "cache_hits": 0,
                    "journal_hits": 0, "computed": 0}
        results = [None] * len(specs)
        done = [0]
        pending = []
        for i, spec in enumerate(specs):
            key = self._cell_key(spec)
            replayed = journaled.get(key)
            if replayed is not None:
                results[i] = replayed
                counters["journal_hits"] += 1
                done[0] += 1
                self._report(replayed, done[0], len(specs),
                             cached_hit=True)
                continue
            cached = self._cache_load(cache_dir, spec)
            if cached is not None:
                results[i] = cached
                counters["cache_hits"] += 1
                done[0] += 1
                self._report(cached, done[0], len(specs), cached_hit=True)
            else:
                pending.append(i)
        if not pending:
            self.last_counters = counters
            return results

        backend = self.backend
        if backend is None:
            backend = "process" if n_jobs > 1 and len(pending) > 1 \
                else "serial"
        # Provenance recorded next to every cached cell: the explicit
        # context, its resolution, and how this grid fanned out.
        runtime_meta = dict(runtime.snapshot())
        runtime_meta["executor"] = {"backend": backend, "n_jobs": n_jobs,
                                    "worker_threads": self.num_threads}
        executor = runtime.Executor(backend, max_workers=n_jobs,
                                    worker_threads=self.num_threads)

        def on_result(pos: int, result: RunResult) -> None:
            i = pending[pos]
            results[i] = result
            counters["computed"] += 1
            # Journal first (fsync'd — the crash-durable record), then
            # the best-effort content-keyed cache.
            self._journal_append(specs[i], result)
            self._cache_store(cache_dir, specs[i], result, runtime_meta)
            done[0] += 1
            self._report(result, done[0], len(specs))

        # Worker contexts are pushed/popped around every cell by the
        # executor (finally-guarded), so the caller's thread
        # configuration survives even when a cell raises.
        executor.map(_execute_cell, [specs[i] for i in pending],
                     on_result=on_result)
        self.last_counters = counters
        return results

    # -- progress -----------------------------------------------------------

    def _report(self, result: RunResult, done: int, total: int,
                cached_hit: bool = False) -> None:
        if self.progress is None:
            return
        suffix = "  [cached]" if cached_hit else ""
        self.progress(
            f"[{done}/{total}] {result.detector:>9s} on "
            f"{result.dataset:<20s} seed={result.seed} "
            f"AUC {result.source_auc:.3f}->{result.booster_auc:.3f}{suffix}"
        )

    # -- on-disk result cache ----------------------------------------------

    def _cell_key(self, spec: dict) -> str:
        """Content digest identifying one cell across processes and runs.

        The detector enters the key as its canonical spec JSON, so a
        registry name, its explicit spec (any key order, omitted or
        empty params), and a default-constructed live estimator all
        hash identically — and any parameter change is a guaranteed
        miss.  The dataset enters as its name plus the shared content
        fingerprint over (X, y).  The runtime context (and the retry
        policy — retries never change a cell's value) deliberately
        stays OUT of the key: budgets and backends never change
        results, so a sweep rerun under a different thread count must
        still hit.  Shared by the result cache and the sweep journal.
        """
        dataset = spec["dataset"]
        key = json.dumps(
            {"version": self._CACHE_VERSION,
             "detector": canonical_spec(spec["detector"]),
             "dataset": {"name": dataset.name,
                         "sha256": array_fingerprint(dataset.X, dataset.y)},
             "seed": spec["seed"],
             "n_iterations": spec["n_iterations"],
             "booster_kwargs": spec["booster_kwargs"]},
            sort_keys=True, default=repr,
        )
        return hashlib.sha256(key.encode()).hexdigest()[:16]

    def _cache_path(self, cache_dir: Path, spec: dict) -> Path:
        digest = self._cell_key(spec)
        label = spec_label(spec["detector"])
        safe = "".join(c if c.isalnum() else "-" for c in
                       f"{label}-{spec['dataset'].name}")
        return cache_dir / (f"{safe}-s{spec['seed']}-{digest}.json")

    def _cache_load(self, cache_dir: Path | None, spec: dict):
        if cache_dir is None:
            return None
        try:
            with open(self._cache_path(cache_dir, spec)) as fh:
                return RunResult(**json.load(fh)["result"])
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def _cache_store(self, cache_dir: Path | None, spec: dict,
                     result: RunResult, runtime_meta: dict) -> None:
        if cache_dir is None:
            return
        cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(cache_dir, spec)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump({"result": asdict(result), "runtime": runtime_meta},
                      fh)
        os.replace(tmp, path)

    # -- crash-durable sweep journal ----------------------------------------

    def _journal_append(self, spec: dict, result: RunResult) -> None:
        """Append one computed cell to the journal, crash-durably.

        Runs only in the parent process — ``on_result`` callbacks fire
        there for every executor backend — so there is exactly one
        writer and no interleaving.  Each line is flushed *and*
        ``fsync``'d before the next cell starts: a SIGKILL loses at most
        the cell in flight, never a completed one.
        """
        if self.journal is None:
            return
        self.journal.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"key": self._cell_key(spec),
                           "result": asdict(result)}, sort_keys=True)
        with open(self.journal, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _journal_load(self) -> dict:
        """Replay the journal into ``{cell_key: RunResult}``.

        A torn final line (the process died mid-write before the fsync)
        parses as malformed JSON and is skipped — it is exactly the
        at-most-one cell the durability contract allows losing.  A
        missing journal file is an empty sweep, not an error, so
        ``--resume`` is safe to pass unconditionally.
        """
        replayed: dict = {}
        if self.journal is None or not self.journal.exists():
            return replayed
        with open(self.journal) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    replayed[entry["key"]] = RunResult(**entry["result"])
                except (ValueError, TypeError, KeyError):
                    continue
        return replayed


def run_grid(detectors=DETECTOR_NAMES, datasets=DEFAULT_BENCH_DATASETS,
             seeds=(0,), n_iterations: int = 10, max_samples: int = 600,
             max_features: int = 32, booster_kwargs: dict | None = None,
             progress=None, n_jobs: int | None = None, cache_dir=None,
             num_threads: int | None = None,
             backend: str | None = None, journal=None,
             resume: bool = False, retry=None) -> list:
    """Run the full detector x dataset x seed grid.

    Parameters
    ----------
    detectors : iterable of str, spec dict, or estimator
        Registry names, ``{"type": ..., "params": {...}}`` component
        specs (including whole ``Pipeline`` specs), or live estimators.
    datasets : iterable of str or Dataset
    seeds : iterable of int
        Independent repetitions (seed-averaged downstream).
    max_samples, max_features : int
        Size caps applied when loading named benchmark datasets.
    progress : callable or None
        Called with a status string after every cell (hook for the CLI
        and benchmarks).
    n_jobs : int or None
        Worker budget (see :class:`ExperimentRunner`); ``None`` resolves
        through the active :class:`~repro.runtime.RunContext`.  Cells
        are deterministic, so any ``n_jobs`` produces identical results.
    cache_dir : str, Path, or None
        On-disk :class:`RunResult` cache (see :class:`ExperimentRunner`);
        ``None`` resolves through the context (``REPRO_BENCH_CACHE``).
    num_threads : int or None
        Explicit per-worker kernel threads (see
        :class:`ExperimentRunner`); ``None`` splits the context's thread
        budget across workers.
    backend : {'serial', 'thread', 'process'} or None
        Executor backend; all backends are bit-identical.
    journal : str, Path, or None
        fsync'd per-cell JSONL crash log (see :class:`ExperimentRunner`).
    resume : bool
        Replay ``journal`` before running; only missing cells execute.
    retry : RetryPolicy, int, or None
        Per-cell transient-failure retry inside the worker.

    Returns
    -------
    list of RunResult
        In grid order: datasets outermost, then detectors, then seeds.
    """
    runner = ExperimentRunner(n_jobs=n_jobs, cache_dir=cache_dir,
                              progress=progress, num_threads=num_threads,
                              backend=backend, journal=journal,
                              resume=resume, retry=retry)
    return runner.run_grid(
        detectors=detectors, datasets=datasets, seeds=seeds,
        n_iterations=n_iterations, max_samples=max_samples,
        max_features=max_features, booster_kwargs=booster_kwargs)
