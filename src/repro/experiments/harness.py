"""Experiment harness: fit a source model and its UADB booster, evaluate.

The unit of work is :func:`run_single` — one (detector, dataset, seed)
cell producing source/booster AUCROC and AP plus the per-iteration trace.
:func:`run_grid` sweeps detectors x datasets x seeds and averages seeds,
exactly the protocol behind the paper's Table IV / Table V / Figs 7-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.booster import UADBooster
from repro.core.variants import make_variant
from repro.data.preprocessing import StandardScaler
from repro.data.registry import load_dataset
from repro.data.synthetic import Dataset
from repro.detectors.registry import DETECTOR_NAMES, make_detector
from repro.metrics.ranking import auc_roc, average_precision
from repro.utils.rng import check_random_state

__all__ = ["RunResult", "run_single", "run_variant", "run_grid",
           "DEFAULT_BENCH_DATASETS"]

# A deliberately heterogeneous 20-dataset core used by the default (fast)
# benchmark configuration: it mixes datasets where the classic detectors do
# well with datasets where at least one of them fails badly (the
# assumption-misalignment cells that drive the paper's largest gains).  The
# full 84-dataset sweep is available via the REPRO_FULL_BENCH environment
# switch in the benchmark suite.
DEFAULT_BENCH_DATASETS = (
    "abalone", "annthyroid", "breastw", "cardio", "fault", "glass",
    "Ionosphere", "letter", "mammography", "mnist", "musk", "Parkinson",
    "pendigits", "Pima", "satellite", "SpamBase", "thyroid", "vowels",
    "CIFAR10_2", "yelp",
)


@dataclass
class RunResult:
    """Metrics from one (detector, dataset, seed) cell.

    ``iteration_auc``/``iteration_ap`` hold the booster metric after each
    UADB iteration (length ``T``); the final entries equal ``booster_auc``/
    ``booster_ap`` up to the final ensemble refresh.
    """

    detector: str
    dataset: str
    seed: int
    source_auc: float
    source_ap: float
    booster_auc: float
    booster_ap: float
    iteration_auc: list = field(default_factory=list)
    iteration_ap: list = field(default_factory=list)

    @property
    def auc_improvement(self) -> float:
        return self.booster_auc - self.source_auc

    @property
    def ap_improvement(self) -> float:
        return self.booster_ap - self.source_ap


def _standardize(X: np.ndarray) -> np.ndarray:
    return StandardScaler().fit_transform(X)


def run_single(dataset: Dataset, detector_name: str, n_iterations: int = 10,
               seed: int = 0, booster_kwargs: dict | None = None,
               detector_kwargs: dict | None = None) -> RunResult:
    """Fit ``detector_name`` and its UADB booster on ``dataset``.

    Features are standardised before fitting (ADBench's preprocessing);
    labels are used only for evaluation.
    """
    rng = check_random_state(seed)
    X = _standardize(dataset.X)
    y = dataset.y

    detector = make_detector(detector_name, random_state=rng,
                             **(detector_kwargs or {}))
    detector.fit(X)
    source_scores = detector.fit_scores()

    kwargs = dict(booster_kwargs or {})
    kwargs.setdefault("n_iterations", n_iterations)
    booster = UADBooster(random_state=rng, **kwargs)
    booster.fit(X, source_scores)

    iteration_auc, iteration_ap = [], []
    if booster.history_ is not None:
        for scores in booster.history_.booster_scores:
            iteration_auc.append(auc_roc(y, scores))
            iteration_ap.append(average_precision(y, scores))

    return RunResult(
        detector=detector_name,
        dataset=dataset.name,
        seed=seed,
        source_auc=auc_roc(y, source_scores),
        source_ap=average_precision(y, source_scores),
        booster_auc=auc_roc(y, booster.scores_),
        booster_ap=average_precision(y, booster.scores_),
        iteration_auc=iteration_auc,
        iteration_ap=iteration_ap,
    )


def run_variant(dataset: Dataset, detector_name: str, variant: str,
                n_iterations: int = 10, seed: int = 0,
                variant_kwargs: dict | None = None) -> dict:
    """Fit one of the Table VI alternative boosters; returns metric dict."""
    rng = check_random_state(seed)
    X = _standardize(dataset.X)
    y = dataset.y
    detector = make_detector(detector_name, random_state=rng)
    detector.fit(X)
    source_scores = detector.fit_scores()

    kwargs = dict(variant_kwargs or {})
    kwargs.setdefault("n_iterations", n_iterations)
    model = make_variant(variant, random_state=rng, **kwargs)
    model.fit(X, source_scores)
    return {
        "detector": detector_name,
        "dataset": dataset.name,
        "variant": variant,
        "auc": auc_roc(y, model.scores_),
        "ap": average_precision(y, model.scores_),
        "source_auc": auc_roc(y, source_scores),
        "source_ap": average_precision(y, source_scores),
    }


def _resolve_datasets(datasets, max_samples: int,
                      max_features: int) -> list:
    """Accept Dataset objects, names, or the 'default' marker."""
    resolved = []
    for item in datasets:
        if isinstance(item, Dataset):
            resolved.append(item)
        else:
            resolved.append(load_dataset(item, max_samples=max_samples,
                                         max_features=max_features))
    return resolved


def run_grid(detectors=DETECTOR_NAMES, datasets=DEFAULT_BENCH_DATASETS,
             seeds=(0,), n_iterations: int = 10, max_samples: int = 600,
             max_features: int = 32, booster_kwargs: dict | None = None,
             progress=None) -> list:
    """Run the full detector x dataset x seed grid.

    Parameters
    ----------
    detectors : iterable of str
    datasets : iterable of str or Dataset
    seeds : iterable of int
        Independent repetitions (seed-averaged downstream).
    max_samples, max_features : int
        Size caps applied when loading named benchmark datasets.
    progress : callable or None
        Called with a status string after every cell (hook for benchmarks).

    Returns
    -------
    list of RunResult
    """
    resolved = _resolve_datasets(datasets, max_samples, max_features)
    results = []
    for dataset in resolved:
        for name in detectors:
            for seed in seeds:
                result = run_single(
                    dataset, name, n_iterations=n_iterations, seed=seed,
                    booster_kwargs=booster_kwargs)
                results.append(result)
                if progress is not None:
                    progress(
                        f"{name:>9s} on {dataset.name:<20s} seed={seed} "
                        f"AUC {result.source_auc:.3f}->{result.booster_auc:.3f}"
                    )
    return results
