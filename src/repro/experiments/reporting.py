"""Plain-text rendering of reproduced tables and figures.

The benchmark suite prints these alongside timing numbers so a run of
``pytest benchmarks/ --benchmark-only`` regenerates every table/figure of
the paper in textual form.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "format_table",
    "format_table4",
    "format_table5",
    "format_table6",
    "format_fig2",
    "format_fig5",
    "format_fig7",
    "format_boxplots",
]


def format_table(headers, rows, title: str = "") -> str:
    """Render ``rows`` (lists of str) under ``headers`` as aligned text."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def fmt_row(cells):
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in rows)
    return "\n".join(lines)


def _f(x, nd=4):
    return f"{x:.{nd}f}"


def format_table4(summary: dict) -> str:
    """Render the Table IV summary dict from ``table4_summary``."""
    blocks = []
    for metric, label in (("auc", "AUCROC"), ("ap", "AP")):
        headers = ["Source UAD Model", "Original", "Booster", "Improvement",
                   "Improvement (%)", "Effects", "P-value"]
        rows = []
        for detector, row in summary.items():
            m = row[metric]
            rows.append([
                detector, _f(m["original"]), _f(m["booster"]),
                _f(m["improvement"]), _f(m["improvement_pct"], 2),
                f"{m['effects']}/{m['n_datasets']}",
                f"{m['p_value']:.2e}",
            ])
        blocks.append(format_table(
            headers, rows, title=f"[Table IV] UADB improvement ({label})"))
    return "\n\n".join(blocks)


def format_table5(table: dict) -> str:
    """Render the per-iteration Table V dict from ``table5_per_iteration``."""
    blocks = []
    for detector, by_dataset in table.items():
        for metric, label in (("auc", "AUCROC"), ("ap", "AP")):
            iter_keys = None
            rows = []
            for dataset, cell in by_dataset.items():
                m = cell[metric]
                if iter_keys is None:
                    iter_keys = list(m["iterations"])
                rows.append(
                    [dataset, _f(m["teacher"])]
                    + [_f(m["iterations"][k]) for k in iter_keys]
                    + [_f(m["improvement"])]
                )
            headers = (["Dataset", "Teacher"] + (iter_keys or [])
                       + ["Improvement"])
            blocks.append(format_table(
                headers, rows,
                title=f"[Table V] {detector} booster ({label})"))
    return "\n\n".join(blocks)


def format_table6(table: dict) -> str:
    """Render the variant-ablation Table VI dict from ``table6_variants``."""
    strategies = ["origin", "naive", "discrepancy", "self",
                  "discrepancy_star", "uadb"]
    present = [s for s in strategies if s in table]
    detectors = list(next(iter(table.values())))
    blocks = []
    for metric, label in (("auc", "AUCROC"), ("ap", "AP")):
        headers = ["Strategy"] + detectors + ["Average"]
        rows = []
        for strategy in present:
            values = [table[strategy][det][metric] for det in detectors]
            rows.append([strategy] + [_f(v) for v in values]
                        + [_f(float(np.mean(values)))])
        blocks.append(format_table(
            headers, rows,
            title=f"[Table VI] booster strategies ({label})"))
    return "\n\n".join(blocks)


def format_fig2(gap_info: dict, max_rows: int = 20) -> str:
    """Render the Fig 2 variance-gap data (most negative gaps first)."""
    items = sorted(gap_info["gaps"].items(), key=lambda kv: kv[1])
    rows = [[name, _f(gap, 3), "anomalies" if gap < 0 else "normals"]
            for name, gap in items[:max_rows]]
    table = format_table(
        ["Dataset", "Relative gap", "Higher variance"], rows,
        title="[Fig 2] variance gap (normal - abnormal) / abnormal")
    summary = (
        f"anomalies have higher variance on {gap_info['n_negative']}/"
        f"{gap_info['n_total']} datasets "
        f"({gap_info['fraction_negative']:.0%})"
    )
    return f"{table}\n{summary}"


def format_fig5(records: list) -> str:
    """Render the Fig 5 synthetic-type error-correction records."""
    rows = [[
        r["anomaly_type"], r["model"], r["teacher_errors"],
        r["booster_errors"], f"{r['correction_rate']:.0%}",
        _f(r["teacher_auc"], 3), _f(r["booster_auc"], 3),
    ] for r in records]
    mean_rate = float(np.mean([r["correction_rate"] for r in records]))
    table = format_table(
        ["Anomaly type", "Model", "Teacher errors", "Booster errors",
         "Correction rate", "Teacher AUC", "Booster AUC"], rows,
        title="[Fig 5] error correction on synthetic anomaly types")
    return f"{table}\nmean correction rate: {mean_rate:.1%}"


def format_fig7(curves: dict) -> str:
    """Render the Fig 7 iteration curves (AUCROC per iteration)."""
    n_iters = max(len(c["per_iteration_auc"]) for c in curves.values())
    headers = ["Model", "Source"] + [f"it{i + 1}" for i in range(n_iters)]
    rows = []
    for det, c in curves.items():
        vals = c["per_iteration_auc"]
        rows.append([det, _f(c["source_auc"], 3)]
                    + [_f(v, 3) for v in vals]
                    + [""] * (n_iters - len(vals)))
    return format_table(headers, rows,
                        title="[Fig 7] booster AUCROC vs training iteration")


def format_boxplots(stats: dict) -> str:
    """Render the Fig 10 boxplot five-number summaries."""
    blocks = []
    for metric, label in (("auc", "AUCROC"), ("ap", "AP")):
        headers = ["Model", "Who", "Min", "Q1", "Median", "Q3", "Max", "Mean"]
        rows = []
        for det, by_metric in stats.items():
            for who in ("source", "booster"):
                s = by_metric[metric][who]
                rows.append([
                    det, who, _f(s["min"], 3), _f(s["q1"], 3),
                    _f(s["median"], 3), _f(s["q3"], 3), _f(s["max"], 3),
                    _f(s["mean"], 3),
                ])
        blocks.append(format_table(
            headers, rows, title=f"[Fig 10] boxplot summary ({label})"))
    return "\n\n".join(blocks)
