"""Reproduction of the paper's tables (IV, V, VI) from harness results."""

from __future__ import annotations

import numpy as np

from repro.data.registry import load_dataset
from repro.detectors.registry import DETECTOR_NAMES
from repro.experiments.harness import (
    DEFAULT_BENCH_DATASETS,
    run_grid,
    run_single,
    run_variant,
)
from repro.metrics.stats import wilcoxon_signed_rank

__all__ = ["aggregate_results", "table4_summary", "table5_per_iteration",
           "table6_variants", "boxplot_stats"]


def _seed_average(results, detector: str, dataset: str):
    """Average a (detector, dataset) cell over its seed repetitions."""
    cells = [r for r in results
             if r.detector == detector and r.dataset == dataset]
    if not cells:
        raise ValueError(f"no results for {detector} on {dataset}")
    return {
        "source_auc": float(np.mean([c.source_auc for c in cells])),
        "source_ap": float(np.mean([c.source_ap for c in cells])),
        "booster_auc": float(np.mean([c.booster_auc for c in cells])),
        "booster_ap": float(np.mean([c.booster_ap for c in cells])),
        "iteration_auc": np.mean(
            [c.iteration_auc for c in cells], axis=0).tolist(),
        "iteration_ap": np.mean(
            [c.iteration_ap for c in cells], axis=0).tolist(),
    }


def aggregate_results(results) -> dict:
    """Nest results as ``{detector: {dataset: seed-averaged cell}}``."""
    detectors = sorted({r.detector for r in results},
                       key=lambda n: DETECTOR_NAMES.index(n)
                       if n in DETECTOR_NAMES else 99)
    datasets = sorted({r.dataset for r in results})
    return {
        det: {ds: _seed_average(results, det, ds) for ds in datasets
              if any(r.detector == det and r.dataset == ds for r in results)}
        for det in detectors
    }


def table4_summary(results) -> dict:
    """Table IV: per-detector averages, improvements, effects, p-values.

    For each detector and each metric (AUCROC, AP) over all datasets:
    ``original`` (mean source score), ``improvement`` (mean booster minus
    source), ``improvement_pct``, ``effects`` (datasets improved), and the
    one-sided Wilcoxon signed-rank ``p_value`` of booster > source.
    """
    nested = aggregate_results(results)
    summary = {}
    for detector, cells in nested.items():
        row = {}
        for metric in ("auc", "ap"):
            source = np.array([c[f"source_{metric}"] for c in cells.values()])
            booster = np.array(
                [c[f"booster_{metric}"] for c in cells.values()])
            improvement = booster - source
            test = wilcoxon_signed_rank(booster, source,
                                        alternative="greater")
            original = float(source.mean())
            row[metric] = {
                "original": original,
                "booster": float(booster.mean()),
                "improvement": float(improvement.mean()),
                "improvement_pct": float(
                    improvement.mean() / max(original, 1e-12) * 100.0),
                "effects": int((improvement > 0).sum()),
                "n_datasets": int(improvement.size),
                "p_value": test["p_value"],
            }
        summary[detector] = row
    return summary


def table5_per_iteration(detectors=("IForest", "HBOS", "LOF", "KNN"),
                         datasets=("vowels", "satellite", "optdigits",
                                   "PageBlocks", "thyroid"),
                         n_iterations: int = 10, seeds=(0,),
                         max_samples: int = 600,
                         max_features: int = 32) -> dict:
    """Table V: booster metric at iterations 2,4,...,T for example cells.

    Returns ``{detector: {dataset: {metric: {'teacher': ..., 'iters': [...],
    'improvement': ...}}}}`` with iteration entries sampled every other step
    like the paper's sub-tables.
    """
    out = {}
    for det in detectors:
        out[det] = {}
        for ds_name in datasets:
            dataset = load_dataset(ds_name, max_samples=max_samples,
                                   max_features=max_features)
            runs = [run_single(dataset, det, n_iterations=n_iterations,
                               seed=s) for s in seeds]
            cell = {}
            for metric in ("auc", "ap"):
                teacher = float(np.mean(
                    [getattr(r, f"source_{metric}") for r in runs]))
                per_iter = np.mean(
                    [getattr(r, f"iteration_{metric}") for r in runs], axis=0)
                sampled = {f"iter_{i + 1}": float(per_iter[i])
                           for i in range(1, n_iterations, 2)}
                cell[metric] = {
                    "teacher": teacher,
                    "iterations": sampled,
                    "final": float(per_iter[-1]),
                    "improvement": float(per_iter[-1] - teacher),
                }
            out[det][ds_name] = cell
    return out


def table6_variants(detectors=DETECTOR_NAMES,
                    datasets=DEFAULT_BENCH_DATASETS, seeds=(0,),
                    n_iterations: int = 10, max_samples: int = 600,
                    max_features: int = 32) -> dict:
    """Table VI: Origin vs the four alternative boosters vs UADB.

    Returns ``{strategy: {detector: {'auc': mean, 'ap': mean}}}`` with
    strategies ``origin / naive / discrepancy / self / discrepancy_star /
    uadb``.
    """
    variants = ("naive", "discrepancy", "self", "discrepancy_star")
    sums = {
        strategy: {det: {"auc": [], "ap": []} for det in detectors}
        for strategy in ("origin", "uadb") + variants
    }
    for ds_name in datasets:
        dataset = load_dataset(ds_name, max_samples=max_samples,
                               max_features=max_features)
        for det in detectors:
            for seed in seeds:
                run = run_single(dataset, det, n_iterations=n_iterations,
                                 seed=seed)
                sums["origin"][det]["auc"].append(run.source_auc)
                sums["origin"][det]["ap"].append(run.source_ap)
                sums["uadb"][det]["auc"].append(run.booster_auc)
                sums["uadb"][det]["ap"].append(run.booster_ap)
                for variant in variants:
                    res = run_variant(dataset, det, variant,
                                      n_iterations=n_iterations, seed=seed)
                    sums[variant][det]["auc"].append(res["auc"])
                    sums[variant][det]["ap"].append(res["ap"])
    return {
        strategy: {
            det: {
                "auc": float(np.mean(vals["auc"])),
                "ap": float(np.mean(vals["ap"])),
            }
            for det, vals in by_det.items()
        }
        for strategy, by_det in sums.items()
    }


def boxplot_stats(results) -> dict:
    """Fig 10: five-number summaries of source vs booster per detector."""
    nested = aggregate_results(results)
    def five_numbers(values):
        arr = np.asarray(values, dtype=np.float64)
        q1, med, q3 = np.percentile(arr, [25, 50, 75])
        return {
            "min": float(arr.min()), "q1": float(q1), "median": float(med),
            "q3": float(q3), "max": float(arr.max()),
            "mean": float(arr.mean()),
        }

    stats = {}
    for detector, cells in nested.items():
        stats[detector] = {}
        for metric in ("auc", "ap"):
            stats[detector][metric] = {
                "source": five_numbers(
                    [c[f"source_{metric}"] for c in cells.values()]),
                "booster": five_numbers(
                    [c[f"booster_{metric}"] for c in cells.values()]),
            }
    return stats
