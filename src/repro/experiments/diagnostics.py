"""Diagnostics for a fitted UADB run: where did the corrections go?

These helpers turn a :class:`~repro.core.booster.BoosterHistory` into
interpretable summaries — which instances moved, in which direction, how
the four confusion cases evolved — generalising the paper's Fig 4 / Fig 9
analyses into reusable tooling.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.classification import instance_cases, rank_of

__all__ = ["correction_summary", "case_rank_trajectories",
           "label_movement", "convergence_profile"]


def label_movement(history) -> dict:
    """How far the pseudo-labels travelled from start to finish.

    Returns per-instance signed movement ``y(T+1) - y(1)`` plus aggregate
    statistics; large positive movement marks instances UADB promoted
    toward "anomaly".
    """
    matrix = history.pseudo_label_matrix()
    movement = matrix[:, -1] - matrix[:, 0]
    return {
        "movement": movement,
        "mean_abs": float(np.abs(movement).mean()),
        "max_up": float(movement.max()),
        "max_down": float(movement.min()),
        "n_promoted": int((movement > 0.05).sum()),
        "n_demoted": int((movement < -0.05).sum()),
    }


def correction_summary(history, y_true, threshold: float = 0.5) -> dict:
    """Confusion-case accounting of the run (needs ground truth).

    Cases are assigned from the *initial* pseudo-labels; the summary counts
    how many initially-wrong instances ended on the right side of
    ``threshold`` in the final booster scores (corrected) and how many
    initially-right ones flipped to wrong (corrupted).
    """
    y = np.asarray(y_true).ravel()
    initial = history.pseudo_labels[0]
    final = history.booster_scores[-1]
    cases = instance_cases(y, initial, threshold)
    final_pred = (final > threshold).astype(int)

    wrong = np.isin(cases, ("FP", "FN"))
    right = ~wrong
    corrected = int(np.sum(wrong & (final_pred == y)))
    corrupted = int(np.sum(right & (final_pred != y)))
    return {
        "case_counts": {c: int((cases == c).sum())
                        for c in ("TP", "TN", "FP", "FN")},
        "n_errors_initial": int(wrong.sum()),
        "n_corrected": corrected,
        "n_corrupted": corrupted,
        "correction_rate": corrected / wrong.sum() if wrong.any() else 0.0,
        "net_improvement": corrected - corrupted,
    }


def case_rank_trajectories(history, y_true, threshold: float = 0.5) -> dict:
    """Mean rank of each confusion case at every iteration (Fig 9 data)."""
    y = np.asarray(y_true).ravel()
    cases = instance_cases(y, history.pseudo_labels[0], threshold)
    trajectories = {c: [] for c in ("TP", "TN", "FP", "FN")}
    for scores in history.booster_scores:
        ranks = rank_of(scores)
        for case, series in trajectories.items():
            members = cases == case
            series.append(float(ranks[members].mean()) if members.any()
                          else float("nan"))
    return trajectories


def convergence_profile(history) -> dict:
    """How quickly the run settled: per-iteration label/score deltas.

    The booster has converged when consecutive pseudo-label vectors stop
    moving; the paper's Fig 7 plateau corresponds to this delta flattening.
    """
    matrix = history.pseudo_label_matrix()
    label_deltas = [
        float(np.abs(matrix[:, t + 1] - matrix[:, t]).mean())
        for t in range(matrix.shape[1] - 1)
    ]
    score_deltas = [
        float(np.abs(b - a).mean())
        for a, b in zip(history.booster_scores,
                        history.booster_scores[1:])
    ]
    variance_means = [float(v.mean()) for v in history.variances]
    return {
        "label_deltas": label_deltas,
        "score_deltas": score_deltas,
        "variance_means": variance_means,
        "settled": bool(label_deltas and label_deltas[-1]
                        < 0.25 * max(label_deltas)),
    }
