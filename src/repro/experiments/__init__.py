"""Experiment harness and paper table/figure reproduction."""

from repro.experiments.diagnostics import (
    case_rank_trajectories,
    convergence_profile,
    correction_summary,
    label_movement,
)
from repro.experiments.figures import (
    FIG5_MODEL_PAIRS,
    fig1_instance_variance,
    fig2_variance_gap,
    fig4_case_trajectories,
    fig5_synthetic_types,
    fig6_no_gap_improvement,
    fig7_iteration_curves,
    fig8_layer_sweep,
    fig9_ranking_development,
    imitation_variance,
)
from repro.experiments.harness import (
    DEFAULT_BENCH_DATASETS,
    RunResult,
    run_grid,
    run_single,
    run_variant,
)
from repro.experiments.reporting import (
    format_boxplots,
    format_fig2,
    format_fig5,
    format_fig7,
    format_table,
    format_table4,
    format_table5,
    format_table6,
)
from repro.experiments.tables import (
    aggregate_results,
    boxplot_stats,
    table4_summary,
    table5_per_iteration,
    table6_variants,
)

__all__ = [
    "case_rank_trajectories",
    "convergence_profile",
    "correction_summary",
    "label_movement",
    "FIG5_MODEL_PAIRS",
    "fig1_instance_variance",
    "fig2_variance_gap",
    "fig4_case_trajectories",
    "fig5_synthetic_types",
    "fig6_no_gap_improvement",
    "fig7_iteration_curves",
    "fig8_layer_sweep",
    "fig9_ranking_development",
    "imitation_variance",
    "DEFAULT_BENCH_DATASETS",
    "RunResult",
    "run_grid",
    "run_single",
    "run_variant",
    "format_boxplots",
    "format_fig2",
    "format_fig5",
    "format_fig7",
    "format_table",
    "format_table4",
    "format_table5",
    "format_table6",
    "aggregate_results",
    "boxplot_stats",
    "table4_summary",
    "table5_per_iteration",
    "table6_variants",
]
