"""Reproduction of the paper's figures (1, 2, 4, 5, 6, 7, 8, 9) as data.

Every function returns plain data structures (dicts / arrays) with the same
content as the corresponding figure; :mod:`repro.experiments.reporting`
renders them as text for the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.core.booster import UADBooster
from repro.core.ensemble import FoldEnsemble
from repro.core.variance import group_variance_gap, instance_variance
from repro.data.preprocessing import StandardScaler
from repro.data.registry import DATASET_NAMES, load_dataset
from repro.data.synthetic import make_anomaly_dataset
from repro.detectors.registry import make_detector
from repro.experiments.harness import run_grid, run_single
from repro.metrics.classification import (
    error_correction_rate,
    error_count,
    instance_cases,
    rank_of,
    threshold_by_contamination,
)
from repro.metrics.ranking import auc_roc
from repro.utils.rng import check_random_state

__all__ = [
    "imitation_variance",
    "fig1_instance_variance",
    "fig2_variance_gap",
    "fig4_case_trajectories",
    "fig5_synthetic_types",
    "fig6_no_gap_improvement",
    "fig7_iteration_curves",
    "fig8_layer_sweep",
    "fig9_ranking_development",
    "FIG5_MODEL_PAIRS",
]

# The paper pairs each synthetic anomaly type with the two UAD models that
# handle it best (Fig 5 rows).
FIG5_MODEL_PAIRS = {
    "clustered": ("IForest", "HBOS"),
    "global": ("IForest", "HBOS"),
    "local": ("IForest", "LOF"),
    "dependency": ("IForest", "KNN"),
}


def imitation_variance(dataset, teacher: str = "IForest", seed: int = 0,
                       epochs: int = 50) -> dict:
    """Teacher-imitator variance per instance (the Fig 1 / Fig 2 protocol).

    Fits the teacher, trains a static pseudo-supervised MLP imitator on the
    teacher's scores, and returns the per-instance variance of the pair
    ``[f_S(x), f_B(x)]`` alongside the ground-truth labels.
    """
    rng = check_random_state(seed)
    X = StandardScaler().fit_transform(dataset.X)
    detector = make_detector(teacher, random_state=rng)
    detector.fit(X)
    teacher_scores = detector.fit_scores()

    student = FoldEnsemble(epochs=epochs, random_state=rng).initialize(X)
    student.train_round(X, teacher_scores)
    student_scores = student.predict(X)

    variance = instance_variance(
        np.column_stack([teacher_scores, student_scores]))
    return {
        "dataset": dataset.name,
        "variance": variance,
        "y": dataset.y.copy(),
        "teacher_scores": teacher_scores,
        "student_scores": student_scores,
    }


def fig1_instance_variance(dataset_names=("glass", "musk", "PageBlocks",
                                          "thyroid"),
                           teacher: str = "IForest", seed: int = 0,
                           max_samples: int = 800,
                           max_features: int = 32) -> dict:
    """Fig 1: per-instance variances split by ground truth, 4 datasets."""
    out = {}
    for name in dataset_names:
        dataset = load_dataset(name, max_samples=max_samples,
                               max_features=max_features)
        result = imitation_variance(dataset, teacher=teacher, seed=seed)
        v, y = result["variance"], result["y"]
        out[name] = {
            "variance_normal": v[y == 0],
            "variance_abnormal": v[y == 1],
            "mean_normal": float(v[y == 0].mean()),
            "mean_abnormal": float(v[y == 1].mean()),
        }
    return out


def fig2_variance_gap(dataset_names=DATASET_NAMES, teacher: str = "IForest",
                      seed: int = 0, max_samples: int = 800,
                      max_features: int = 32) -> dict:
    """Fig 2: relative variance gap (normal - abnormal)/abnormal per dataset.

    Negative gap = anomalies have the higher average variance.  Returns the
    per-dataset gaps plus the headline fraction of datasets with a negative
    gap (the paper reports 71/84 = 85%).
    """
    gaps = {}
    for name in dataset_names:
        dataset = load_dataset(name, max_samples=max_samples,
                               max_features=max_features)
        result = imitation_variance(dataset, teacher=teacher, seed=seed)
        gaps[name] = group_variance_gap(result["variance"], result["y"])
    values = np.array(list(gaps.values()))
    return {
        "gaps": gaps,
        "n_negative": int((values < 0).sum()),
        "n_total": int(values.size),
        "fraction_negative": float((values < 0).mean()),
    }


def _static_trajectory(X, pseudo, n_iterations, seed):
    """Booster predictions per round under static labels (no correction)."""
    ensemble = FoldEnsemble(random_state=seed).initialize(X)
    trajectory = []
    for _ in range(n_iterations):
        ensemble.train_round(X, pseudo)
        trajectory.append(ensemble.predict(X))
    return trajectory


def fig4_case_trajectories(dataset=None, detector: str = "IForest",
                           n_iterations: int = 10, seed: int = 0) -> dict:
    """Fig 4: booster-score trajectories for one TP/TN/FP/FN instance each.

    Compares UADB (variance-corrected) against a static-distillation student
    on the same data.  Representative instances are the most confidently
    mispredicted / correctly predicted ones per case.
    """
    if dataset is None:
        dataset = make_anomaly_dataset("local", random_state=seed)
    rng = check_random_state(seed)
    X = StandardScaler().fit_transform(dataset.X)
    y = dataset.y

    source = make_detector(detector, random_state=rng)
    source.fit(X)
    teacher_scores = source.fit_scores()
    threshold = threshold_by_contamination(teacher_scores,
                                           max(dataset.contamination, 0.01))
    cases = instance_cases(y, teacher_scores, threshold)

    booster = UADBooster(n_iterations=n_iterations, random_state=seed)
    booster.fit(X, teacher_scores)
    uadb_traj = booster.history_.booster_scores
    static_traj = _static_trajectory(X, teacher_scores, n_iterations, seed)

    out = {"threshold": float(threshold), "cases": {}}
    for case in ("TP", "TN", "FP", "FN"):
        members = np.flatnonzero(cases == case)
        if members.size == 0:
            continue
        # Most extreme teacher score within the case: highest for predicted-
        # positive cases (TP/FP), lowest for predicted-negative (TN/FN).
        if case in ("TP", "FP"):
            idx = members[np.argmax(teacher_scores[members])]
        else:
            idx = members[np.argmin(teacher_scores[members])]
        out["cases"][case] = {
            "index": int(idx),
            "initial": float(teacher_scores[idx]),
            "uadb": [float(s[idx]) for s in uadb_traj],
            "static": [float(s[idx]) for s in static_traj],
        }
    return out


def fig5_synthetic_types(n_iterations: int = 10, seed: int = 0,
                         n_inliers: int = 450, n_anomalies: int = 50) -> list:
    """Fig 5: teacher vs booster error counts on the 4 synthetic types.

    For each anomaly type and each of its two paper-assigned models, counts
    classification errors (threshold = contamination quantile for teacher,
    matched flag-count for the booster) and the error-correction rate.
    """
    records = []
    for anomaly_type, models in FIG5_MODEL_PAIRS.items():
        dataset = make_anomaly_dataset(
            anomaly_type, n_inliers=n_inliers, n_anomalies=n_anomalies,
            random_state=seed)
        X = StandardScaler().fit_transform(dataset.X)
        y = dataset.y
        contamination = dataset.contamination
        for model in models:
            rng = check_random_state(seed)
            source = make_detector(model, random_state=rng)
            source.fit(X)
            teacher_scores = source.fit_scores()
            booster = UADBooster(n_iterations=n_iterations,
                                 random_state=seed)
            booster.fit(X, teacher_scores)

            t_thresh = threshold_by_contamination(teacher_scores,
                                                  contamination)
            b_thresh = threshold_by_contamination(booster.scores_,
                                                  contamination)
            teacher_errors = error_count(y, teacher_scores, t_thresh)
            booster_errors = error_count(y, booster.scores_, b_thresh)
            # Correction rate over the teacher's errors, judged at the
            # matched thresholds (cf. paper's 38.94% average).
            shifted_booster = booster.scores_ - b_thresh + t_thresh
            rate = error_correction_rate(y, teacher_scores, shifted_booster,
                                         t_thresh)
            records.append({
                "anomaly_type": anomaly_type,
                "model": model,
                "teacher_errors": teacher_errors,
                "booster_errors": booster_errors,
                "correction_rate": rate,
                "teacher_auc": auc_roc(y, teacher_scores),
                "booster_auc": auc_roc(y, booster.scores_),
            })
    return records


def fig6_no_gap_improvement(results, gap_info: dict) -> dict:
    """Fig 6: booster improvement restricted to no-variance-gap datasets.

    ``gap_info`` is the output of :func:`fig2_variance_gap`; the selected
    datasets are those with a non-negative gap (anomalies do *not* have
    higher variance).  Returns per-detector mean AUC improvement on that
    subset and the count of detectors that still improve.
    """
    no_gap = {name for name, gap in gap_info["gaps"].items() if gap >= 0}
    per_detector = {}
    detectors = sorted({r.detector for r in results})
    for det in detectors:
        cells = [r for r in results
                 if r.detector == det and r.dataset in no_gap]
        if not cells:
            continue
        improvements = [r.auc_improvement for r in cells]
        per_detector[det] = {
            "mean_improvement": float(np.mean(improvements)),
            "n_datasets": len(cells),
            "n_improved": int(sum(i > 0 for i in improvements)),
        }
    return {"selected_datasets": sorted(no_gap), "per_detector": per_detector}


def fig7_iteration_curves(results) -> dict:
    """Fig 7: mean booster AUCROC per iteration, per detector."""
    detectors = sorted({r.detector for r in results})
    curves = {}
    for det in detectors:
        per_iter = [r.iteration_auc for r in results if r.detector == det
                    and r.iteration_auc]
        if not per_iter:
            continue
        min_len = min(len(seq) for seq in per_iter)
        arr = np.array([seq[:min_len] for seq in per_iter])
        source = np.mean([r.source_auc for r in results
                          if r.detector == det])
        curves[det] = {
            "source_auc": float(source),
            "per_iteration_auc": arr.mean(axis=0).tolist(),
        }
    return curves


def fig8_layer_sweep(layers=(2, 3, 4, 5), detectors=("IForest", "HBOS",
                                                     "LOF", "KNN"),
                     datasets=("cardio", "glass", "thyroid", "vowels"),
                     n_iterations: int = 10, seed: int = 0,
                     max_samples: int = 500, max_features: int = 32) -> dict:
    """Fig 8: booster AUCROC vs number of MLP layers (stability check)."""
    out = {n: {} for n in layers}
    for n_layers in layers:
        grid = run_grid(
            detectors=detectors, datasets=datasets, seeds=(seed,),
            n_iterations=n_iterations, max_samples=max_samples,
            max_features=max_features,
            booster_kwargs={"n_layers": n_layers, "record_history": False})
        for det in detectors:
            aucs = [r.booster_auc for r in grid if r.detector == det]
            out[n_layers][det] = float(np.mean(aucs))
    return out


def fig9_ranking_development(dataset_names=("landsat", "optdigits",
                                            "satellite"),
                             detector: str = "LOF", n_iterations: int = 20,
                             seed: int = 0, max_samples: int = 600,
                             max_features: int = 32) -> dict:
    """Fig 9: mean rank of TP/TN/FP/FN groups across UADB iterations.

    Case groups are fixed by the teacher's initial predictions (threshold =
    contamination quantile); ranks are recomputed from the booster scores at
    every iteration, alongside the booster AUCROC.
    """
    out = {}
    for name in dataset_names:
        dataset = load_dataset(name, max_samples=max_samples,
                               max_features=max_features)
        rng = check_random_state(seed)
        X = StandardScaler().fit_transform(dataset.X)
        y = dataset.y
        source = make_detector(detector, random_state=rng)
        source.fit(X)
        teacher_scores = source.fit_scores()
        threshold = threshold_by_contamination(
            teacher_scores, max(dataset.contamination, 0.01))
        cases = instance_cases(y, teacher_scores, threshold)

        booster = UADBooster(n_iterations=n_iterations, random_state=seed)
        booster.fit(X, teacher_scores)

        ranks = {case: [] for case in ("TP", "TN", "FP", "FN")}
        aucs = []
        for scores in booster.history_.booster_scores:
            r = rank_of(scores)
            for case in ranks:
                members = cases == case
                ranks[case].append(
                    float(r[members].mean()) if members.any() else np.nan)
            aucs.append(auc_roc(y, scores))
        out[name] = {
            "initial_auc": auc_roc(y, teacher_scores),
            "case_counts": {c: int((cases == c).sum()) for c in ranks},
            "mean_ranks": ranks,
            "auc": aucs,
        }
    return out
