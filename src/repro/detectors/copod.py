"""COPOD: Copula-Based Outlier Detection (Li et al., 2020).

COPOD models the joint tail probability of each sample through an empirical
copula: per dimension it computes left- and right-tail ECDF probabilities
plus a skewness-corrected version, aggregates their negative logs, and takes
the maximum of the three aggregates.  It is ECOD's predecessor; the
difference is that COPOD's skewness correction mixes the two tails by the
*sign* of the skewness coefficient per dimension within a single aggregate,
averaged with the two one-sided aggregates, while ECOD takes a per-dimension
automatic choice.  We implement the published COPOD aggregation.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.ecod import _skewness

__all__ = ["COPOD"]


class COPOD(BaseDetector):
    """Copula-based outlier detector (parameter-free)."""

    def __init__(self, contamination: float = 0.1):
        super().__init__(contamination=contamination)
        self._sorted_cols = None
        self._n_train = None
        self._skew_sign = None

    def _fit(self, X):
        self._sorted_cols = np.sort(X, axis=0)
        self._n_train = X.shape[0]
        self._skew_sign = np.sign(_skewness(X))
        return self._decision_function(X)

    def _decision_function(self, X):
        n = self._n_train
        floor = 1.0 / n
        u_left = np.empty_like(X)
        u_right = np.empty_like(X)
        for j in range(X.shape[1]):
            col = self._sorted_cols[:, j]
            u_left[:, j] = np.searchsorted(col, X[:, j], side="right") / n
            u_right[:, j] = (n - np.searchsorted(col, X[:, j], side="left")) / n
        u_left = np.maximum(u_left, floor)
        u_right = np.maximum(u_right, floor)

        p_left = -np.log(u_left)
        p_right = -np.log(u_right)
        # Skewness-corrected tail: use the left tail when the dimension is
        # left-skewed (negative coefficient), otherwise the right tail.
        p_skew = np.where(self._skew_sign < 0, p_left, p_right)

        agg_left = p_left.sum(axis=1)
        agg_right = p_right.sum(axis=1)
        agg_skew = p_skew.sum(axis=1)
        return np.maximum(np.maximum(agg_left, agg_right), agg_skew)
