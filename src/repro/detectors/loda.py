"""LODA: Lightweight On-line Detector of Anomalies (Pevny, 2016).

An ensemble of one-dimensional histograms over sparse random projections:
each projection keeps ``ceil(sqrt(d))`` non-zero Gaussian weights, the
projected data is histogrammed, and the anomaly score is the average
negative log density across projections.  PyOD default: 100 random cuts.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.histograms import Histogram1D
from repro.utils.rng import check_random_state

__all__ = ["LODA"]


class LODA(BaseDetector):
    """Lightweight on-line detector of anomalies.

    Parameters
    ----------
    n_random_cuts : int
        Number of sparse random projections.
    n_bins : int
        Bins per projection histogram.
    """

    def __init__(self, n_random_cuts: int = 100, n_bins: int = 10,
                 contamination: float = 0.1, random_state=None):
        super().__init__(contamination=contamination)
        if n_random_cuts < 1:
            raise ValueError(
                f"n_random_cuts must be >= 1, got {n_random_cuts}"
            )
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        self.n_random_cuts = n_random_cuts
        self.n_bins = n_bins
        self.random_state = random_state
        self._projections = None
        self._histograms = None

    def _fit(self, X):
        rng = check_random_state(self.random_state)
        d = X.shape[1]
        n_nonzero = max(1, int(np.ceil(np.sqrt(d))))
        self._projections = np.zeros((self.n_random_cuts, d))
        self._histograms = []
        for i in range(self.n_random_cuts):
            features = rng.choice(d, size=n_nonzero, replace=False)
            self._projections[i, features] = rng.normal(size=n_nonzero)
            projected = X @ self._projections[i]
            self._histograms.append(
                Histogram1D(n_bins=self.n_bins).fit(projected)
            )
        return self._decision_function(X)

    def _decision_function(self, X):
        scores = np.zeros(X.shape[0])
        for projection, hist in zip(self._projections, self._histograms):
            scores += -np.log(hist.density(X @ projection))
        return scores / self.n_random_cuts
