"""Local Outlier Factor (Breunig et al., 2000).

LOF compares the local reachability density of a point with that of its
neighbours: a score well above 1 means the point is in a sparser region
than its neighbourhood — a *local* anomaly.  PyOD default: ``k=20``.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.kernels import cached_kneighbors as kneighbors

__all__ = ["LOF"]


class LOF(BaseDetector):
    """Local outlier factor detector.

    Parameters
    ----------
    n_neighbors : int
        Neighbourhood size ``k``.
    contamination : float
        See :class:`BaseDetector`.
    """

    def __init__(self, n_neighbors: int = 20, contamination: float = 0.1):
        super().__init__(contamination=contamination)
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self._X_train = None
        self._k_distances = None
        self._train_lrd = None

    def _effective_k(self) -> int:
        return min(self.n_neighbors, self._X_train.shape[0] - 1)

    def _lrd(self, dists: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Local reachability density given neighbour distances/indices.

        reach-dist(p, o) = max(k-distance(o), d(p, o)); lrd is the inverse
        of the mean reachability distance over the neighbourhood.
        """
        reach = np.maximum(self._k_distances[idx], dists)
        mean_reach = reach.mean(axis=1)
        return 1.0 / np.maximum(mean_reach, 1e-12)

    def _fit(self, X):
        self._X_train = X.copy()
        k = self._effective_k()
        dists, idx = kneighbors(X, X, k, exclude_self=True)
        self._k_distances = dists[:, -1]
        self._train_lrd = self._lrd(dists, idx)
        neighbor_lrd = self._train_lrd[idx]
        return neighbor_lrd.mean(axis=1) / np.maximum(self._train_lrd, 1e-12)

    def _decision_function(self, X):
        k = self._effective_k()
        dists, idx = kneighbors(X, self._X_train, k)
        query_lrd = self._lrd(dists, idx)
        neighbor_lrd = self._train_lrd[idx]
        return neighbor_lrd.mean(axis=1) / np.maximum(query_lrd, 1e-12)
