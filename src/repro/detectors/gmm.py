"""Gaussian Mixture Model anomaly detection (Reynolds, 2009).

Fits a GMM by expectation-maximisation and scores samples with the negative
log-likelihood under the mixture: low-probability regions are anomalous.
PyOD's GMM detector defaults to a single full-covariance component.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.utils.rng import check_random_state

__all__ = ["GMM", "GaussianMixture"]

_LOG_2PI = np.log(2.0 * np.pi)


class GaussianMixture:
    """Full-covariance Gaussian mixture fitted with EM.

    A minimal but complete EM implementation: k-means-free random-responsibility
    initialisation, log-sum-exp E-step, covariance regularisation, and
    convergence on the mean log-likelihood.
    """

    def __init__(self, n_components: int = 1, max_iter: int = 100,
                 tol: float = 1e-4, reg_covar: float = 1e-6,
                 random_state=None):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if reg_covar < 0:
            raise ValueError(f"reg_covar must be >= 0, got {reg_covar}")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.random_state = random_state
        self.weights_ = None
        self.means_ = None
        self.covariances_ = None
        self._chol_precisions = None
        self.converged_ = False

    # -- internals ------------------------------------------------------
    def _estimate_log_prob(self, X: np.ndarray) -> np.ndarray:
        """Log density of X under each component, shape (n, k)."""
        n, d = X.shape
        log_prob = np.empty((n, self.n_components))
        for c in range(self.n_components):
            chol = self._chol_precisions[c]
            diff = X - self.means_[c]
            z = diff @ chol
            log_det = np.log(np.diag(chol)).sum()
            log_prob[:, c] = (
                -0.5 * (d * _LOG_2PI + np.sum(z**2, axis=1)) + log_det
            )
        return log_prob

    def _compute_precisions(self) -> None:
        self._chol_precisions = []
        for c in range(self.n_components):
            cov = self.covariances_[c]
            chol_cov = np.linalg.cholesky(cov)
            # Cholesky of the precision: solve L L' P = I.
            inv_chol = np.linalg.solve(
                chol_cov, np.eye(cov.shape[0])
            )
            self._chol_precisions.append(inv_chol.T)

    def _m_step(self, X: np.ndarray, resp: np.ndarray) -> None:
        nk = resp.sum(axis=0) + 1e-10
        self.weights_ = nk / X.shape[0]
        self.means_ = (resp.T @ X) / nk[:, None]
        d = X.shape[1]
        self.covariances_ = np.empty((self.n_components, d, d))
        for c in range(self.n_components):
            diff = X - self.means_[c]
            weighted = diff * resp[:, c:c + 1]
            cov = (weighted.T @ diff) / nk[c]
            cov.flat[:: d + 1] += self.reg_covar
            self.covariances_[c] = cov
        self._compute_precisions()

    # -- public ----------------------------------------------------------
    def fit(self, X: np.ndarray) -> "GaussianMixture":
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        if n < self.n_components:
            raise ValueError(
                f"need >= {self.n_components} samples, got {n}"
            )
        rng = check_random_state(self.random_state)
        resp = rng.dirichlet(np.ones(self.n_components), size=n)
        self._m_step(X, resp)

        prev_ll = -np.inf
        for _ in range(self.max_iter):
            log_prob = self._estimate_log_prob(X) + np.log(self.weights_)
            log_norm = _logsumexp(log_prob)
            resp = np.exp(log_prob - log_norm[:, None])
            mean_ll = float(log_norm.mean())
            self._m_step(X, resp)
            if abs(mean_ll - prev_ll) < self.tol:
                self.converged_ = True
                break
            prev_ll = mean_ll
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Per-sample log-likelihood under the mixture."""
        if self.weights_ is None:
            raise RuntimeError("GaussianMixture is not fitted yet")
        X = np.asarray(X, dtype=np.float64)
        log_prob = self._estimate_log_prob(X) + np.log(self.weights_)
        return _logsumexp(log_prob)


def _logsumexp(log_prob: np.ndarray) -> np.ndarray:
    top = log_prob.max(axis=1)
    return top + np.log(np.exp(log_prob - top[:, None]).sum(axis=1))


class GMM(BaseDetector):
    """Gaussian-mixture anomaly detector (score = negative log-likelihood).

    Parameters
    ----------
    n_components : int
        Mixture size; PyOD defaults to 1.
    """

    def __init__(self, n_components: int = 1, max_iter: int = 100,
                 reg_covar: float = 1e-6, contamination: float = 0.1,
                 random_state=None):
        super().__init__(contamination=contamination)
        self.n_components = n_components
        self.max_iter = max_iter
        self.reg_covar = reg_covar
        self.random_state = random_state
        self._mixture = None

    def _fit(self, X):
        self._mixture = GaussianMixture(
            n_components=self.n_components,
            max_iter=self.max_iter,
            reg_covar=self.reg_covar,
            random_state=self.random_state,
        ).fit(X)
        return self._decision_function(X)

    def _decision_function(self, X):
        return -self._mixture.score_samples(X)
