"""Cluster-Based Local Outlier Factor (He, Xu & Deng, 2003).

The data is clustered with k-means; clusters are split into "large" and
"small" by the alpha/beta rule from the paper, and every sample is scored by
its distance to the nearest *large* cluster centroid (samples inside a small
cluster are scored against large-cluster centroids, making small, isolated
clusters anomalous).  PyOD defaults: 8 clusters, alpha=0.9, beta=5,
unweighted distances.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.kmeans import KMeans
from repro.detectors.neighbors import pairwise_distances

__all__ = ["CBLOF"]


class CBLOF(BaseDetector):
    """Cluster-based local outlier factor.

    Parameters
    ----------
    n_clusters : int
        k-means cluster count.
    alpha : float in (0.5, 1)
        Large clusters must jointly cover at least this data fraction.
    beta : float > 1
        Alternative rule: a size ratio >= beta between consecutive clusters
        (ordered by size) also marks the large/small boundary.
    use_weights : bool
        Weight scores by cluster size (PyOD exposes this; default off).
    """

    def __init__(self, n_clusters: int = 8, alpha: float = 0.9,
                 beta: float = 5.0, use_weights: bool = False,
                 contamination: float = 0.1, random_state=None):
        super().__init__(contamination=contamination)
        if not 0.5 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0.5, 1), got {alpha}")
        if beta <= 1.0:
            raise ValueError(f"beta must be > 1, got {beta}")
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.alpha = alpha
        self.beta = beta
        self.use_weights = use_weights
        self.random_state = random_state
        self._kmeans = None
        self._large_centers = None
        self._large_sizes = None

    def _split_large_small(self, sizes_desc: np.ndarray) -> int:
        """Index (in descending-size order) of the first *small* cluster."""
        n = sizes_desc.sum()
        cumulative = np.cumsum(sizes_desc)
        for i in range(len(sizes_desc) - 1):
            covers = cumulative[i] >= self.alpha * n
            ratio = (sizes_desc[i] / max(sizes_desc[i + 1], 1)) >= self.beta
            if covers or ratio:
                return i + 1
        return len(sizes_desc)

    def _fit(self, X):
        k = min(self.n_clusters, X.shape[0])
        self._kmeans = KMeans(n_clusters=k, random_state=self.random_state)
        self._kmeans.fit(X)
        labels = self._kmeans.labels_
        sizes = np.bincount(labels, minlength=k)

        order = np.argsort(-sizes, kind="mergesort")
        boundary = self._split_large_small(sizes[order])
        large_clusters = order[:boundary]
        self._large_centers = self._kmeans.cluster_centers_[large_clusters]
        self._large_sizes = sizes[large_clusters].astype(np.float64)
        return self._decision_function(X)

    def _decision_function(self, X):
        dists = pairwise_distances(X, self._large_centers)
        nearest = dists.argmin(axis=1)
        scores = dists[np.arange(X.shape[0]), nearest]
        if self.use_weights:
            scores = scores * self._large_sizes[nearest]
        return scores
