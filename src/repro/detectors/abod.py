"""Angle-Based Outlier Detection (Kriegel et al., 2008) — fast variant.

For every point, consider the angles it forms with pairs of other points:
inliers inside the data cloud see other points in all directions (high
angle variance), while outliers on the fringe see everything within a
narrow cone (low variance).  The anomaly score is the negated variance of
the distance-weighted cosine, computed over the ``n_neighbors`` nearest
points (the FastABOD approximation, PyOD's default formulation).

Not part of the paper's 14 evaluated models; included because UADB is
model-agnostic and ABOD is a standard ADBench baseline.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.neighbors import kneighbors

__all__ = ["ABOD"]


class ABOD(BaseDetector):
    """Fast angle-based outlier detector.

    Parameters
    ----------
    n_neighbors : int
        Size of the neighbourhood over which angle pairs are formed.
    """

    def __init__(self, n_neighbors: int = 10, contamination: float = 0.1):
        super().__init__(contamination=contamination)
        if n_neighbors < 2:
            raise ValueError(f"n_neighbors must be >= 2, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self._X_train = None

    def _effective_k(self) -> int:
        return min(self.n_neighbors, self._X_train.shape[0] - 1)

    def _abof(self, x: np.ndarray, neighbors: np.ndarray) -> float:
        """Angle-based outlier factor of ``x`` w.r.t. its neighbours."""
        diffs = neighbors - x
        norms_sq = np.einsum("ij,ij->i", diffs, diffs)
        valid = norms_sq > 1e-24
        diffs = diffs[valid]
        norms_sq = norms_sq[valid]
        k = diffs.shape[0]
        if k < 2:
            return 0.0
        dots = diffs @ diffs.T
        weight = np.outer(norms_sq, norms_sq)
        values = dots / weight
        iu = np.triu_indices(k, 1)
        pairs = values[iu]
        return float(np.var(pairs))

    def _fit(self, X):
        self._X_train = X.copy()
        k = self._effective_k()
        _, idx = kneighbors(X, X, k, exclude_self=True)
        scores = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            # Negate: low angle variance = outlier = high anomaly score.
            scores[i] = -self._abof(X[i], X[idx[i]])
        return scores

    def _decision_function(self, X):
        k = self._effective_k()
        _, idx = kneighbors(X, self._X_train, k)
        scores = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            scores[i] = -self._abof(X[i], self._X_train[idx[i]])
        return scores
