"""Angle-Based Outlier Detection (Kriegel et al., 2008) — fast variant.

For every point, consider the angles it forms with pairs of other points:
inliers inside the data cloud see other points in all directions (high
angle variance), while outliers on the fringe see everything within a
narrow cone (low variance).  The anomaly score is the negated variance of
the distance-weighted cosine, computed over the ``n_neighbors`` nearest
points (the FastABOD approximation, PyOD's default formulation).

Scoring runs in one of two engines producing bit-identical scores:

* ``"vectorized"`` (default) — all rows at once: the neighbor-difference
  Gram matrices are a single stacked batched matmul ``(n, k, d) @
  (n, d, k)`` and the pair variances one reduction over the stacked
  upper triangles.  Rows with degenerate neighborhoods (duplicate
  points) fall back to the per-row kernel so the filtering semantics
  match exactly.
* ``"reference"`` — the original one-row-at-a-time loop, kept as the
  parity oracle.

Not part of the paper's 14 evaluated models; included because UADB is
model-agnostic and ABOD is a standard ADBench baseline.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.kernels import cached_kneighbors as kneighbors

__all__ = ["ABOD"]

_ENGINES = ("vectorized", "reference")

# Element budget for the blocked vectorized tensors (tests shrink it to
# force multi-block runs; blocking never changes results).
_BLOCK_ELEMENTS = 2**22


class ABOD(BaseDetector):
    """Fast angle-based outlier detector.

    Parameters
    ----------
    n_neighbors : int
        Size of the neighbourhood over which angle pairs are formed.
    engine : {'vectorized', 'reference'}
        Batched scoring (default) or the per-row loop; identical scores.
    """

    def __init__(self, n_neighbors: int = 10, contamination: float = 0.1,
                 engine: str = "vectorized"):
        super().__init__(contamination=contamination)
        if n_neighbors < 2:
            raise ValueError(f"n_neighbors must be >= 2, got {n_neighbors}")
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        self.n_neighbors = n_neighbors
        self.engine = engine
        self._X_train = None

    def _effective_k(self) -> int:
        return min(self.n_neighbors, self._X_train.shape[0] - 1)

    def _abof(self, x: np.ndarray, neighbors: np.ndarray) -> float:
        """Angle-based outlier factor of ``x`` w.r.t. its neighbours."""
        diffs = neighbors - x
        norms_sq = np.einsum("ij,ij->i", diffs, diffs)
        valid = norms_sq > 1e-24
        diffs = diffs[valid]
        norms_sq = norms_sq[valid]
        k = diffs.shape[0]
        if k < 2:
            return 0.0
        dots = diffs @ diffs.T
        weight = np.outer(norms_sq, norms_sq)
        values = dots / weight
        iu = np.triu_indices(k, 1)
        pairs = values[iu]
        return float(np.var(pairs))

    def _scores(self, X: np.ndarray, reference: np.ndarray,
                idx: np.ndarray) -> np.ndarray:
        """Negated ABOF of every row of ``X`` given its neighbor indices."""
        # Fewer than two neighbours form no angle pairs; the per-row
        # kernel's k < 2 guard (score 0.0) is the semantics, which the
        # batched variance reduction cannot express (var of zero pairs
        # is NaN) — so tiny neighborhoods always take the loop.
        if self.engine == "reference" or idx.shape[1] < 2:
            scores = np.empty(X.shape[0])
            for i in range(X.shape[0]):
                # Negate: low angle variance = outlier = high anomaly score.
                scores[i] = -self._abof(X[i], reference[idx[i]])
            return scores

        n, k = idx.shape
        scores = np.empty(n)
        iu = np.triu_indices(k, 1)
        # Row blocks bound the (block, k, k) Gram tensors at ~2^22
        # elements; rows are independent, so blocking cannot change any
        # row's result.
        block = max(1, _BLOCK_ELEMENTS // (k * k))
        for start in range(0, n, block):
            stop = min(start + block, n)
            diffs = reference[idx[start:stop]] - X[start:stop, None, :]
            norms_sq = np.einsum("nkd,nkd->nk", diffs, diffs)
            clean = (norms_sq > 1e-24).all(axis=1)
            out = scores[start:stop]
            if np.any(clean):
                sub = diffs[clean]
                # One batched matmul for every row's neighbor-difference
                # Gram matrix; numpy dispatches the same GEMM per (k, d)
                # slice as the per-row loop, keeping the engines
                # bit-identical.
                dots = np.matmul(sub, sub.transpose(0, 2, 1))  # (m, k, k)
                w = norms_sq[clean]
                weight = w[:, :, None] * w[:, None, :]
                values = dots / weight
                # The mixed slice/fancy gather returns an F-ordered
                # array; the variance reduction must run over contiguous
                # rows to accumulate in the same order as the per-row
                # kernel.
                pairs = np.ascontiguousarray(values[:, iu[0], iu[1]])
                out[clean] = -np.var(pairs, axis=1)
            # Degenerate neighborhoods (duplicate points) keep the
            # per-row kernel: it filters zero-length difference vectors
            # before pairing.
            for i in np.flatnonzero(~clean):
                out[i] = -self._abof(X[start + i],
                                     reference[idx[start + i]])
        return scores

    def _fit(self, X):
        self._X_train = X.copy()
        k = self._effective_k()
        _, idx = kneighbors(X, X, k, exclude_self=True)
        return self._scores(X, X, idx)

    def _decision_function(self, X):
        k = self._effective_k()
        _, idx = kneighbors(X, self._X_train, k)
        return self._scores(X, self._X_train, idx)

    def set_state(self, state: dict) -> "ABOD":
        super().set_state(state)
        # Artifacts saved by repro <= 1.2 predate the engine parameter.
        self.__dict__.setdefault("engine", "vectorized")
        return self
