"""Isolation Forest (Liu, Ting & Zhou, 2008).

Anomalies are "few and different", so random axis-aligned splits isolate
them in short paths.  The anomaly score is ``2^(-E[h(x)] / c(psi))`` where
``h`` is the path length over the ensemble and ``c(psi)`` is the average
path length of an unsuccessful BST search in a sample of size ``psi``.

Defaults match PyOD / the original paper: 100 trees, subsample 256.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.utils.rng import check_random_state

__all__ = ["IForest"]


def average_path_length(n) -> np.ndarray:
    """``c(n)``: expected path length of an unsuccessful BST search."""
    n = np.asarray(n, dtype=np.float64)
    out = np.zeros_like(n)
    big = n > 2
    harmonic = np.log(np.maximum(n - 1, 1.0)) + np.euler_gamma
    out[big] = 2.0 * harmonic[big] - 2.0 * (n[big] - 1) / n[big]
    out[n == 2] = 1.0
    return out


class _IsolationTree:
    """One isolation tree stored as flat arrays for fast batch traversal."""

    __slots__ = ("feature", "threshold", "left", "right", "size", "_n_nodes")

    def __init__(self, X: np.ndarray, max_depth: int,
                 rng: np.random.Generator):
        # Pre-allocate generously: a tree on n points has < 2n nodes.
        cap = 2 * X.shape[0] + 1
        self.feature = np.full(cap, -1, dtype=np.int64)
        self.threshold = np.zeros(cap)
        self.left = np.full(cap, -1, dtype=np.int64)
        self.right = np.full(cap, -1, dtype=np.int64)
        self.size = np.zeros(cap, dtype=np.int64)
        self._n_nodes = 0
        self._build(X, np.arange(X.shape[0]), 0, max_depth, rng)

    def _new_node(self) -> int:
        node = self._n_nodes
        self._n_nodes += 1
        return node

    def _build(self, X, idx, depth, max_depth, rng) -> int:
        node = self._new_node()
        self.size[node] = idx.size
        if depth >= max_depth or idx.size <= 1:
            return node
        sub = X[idx]
        lo = sub.min(axis=0)
        hi = sub.max(axis=0)
        splittable = np.flatnonzero(hi > lo)
        if splittable.size == 0:
            return node
        feat = int(rng.choice(splittable))
        thresh = rng.uniform(lo[feat], hi[feat])
        goes_left = sub[:, feat] < thresh
        if not goes_left.any() or goes_left.all():
            return node
        self.feature[node] = feat
        self.threshold[node] = thresh
        self.left[node] = self._build(
            X, idx[goes_left], depth + 1, max_depth, rng)
        self.right[node] = self._build(
            X, idx[~goes_left], depth + 1, max_depth, rng)
        return node

    def path_lengths(self, X: np.ndarray) -> np.ndarray:
        """Path length ``h(x)`` for every row, with the c(size) correction
        for external nodes that still hold multiple points."""
        n = X.shape[0]
        depths = np.zeros(n)
        node_of = np.zeros(n, dtype=np.int64)
        active = np.arange(n)
        depth = 0
        while active.size:
            nodes = node_of[active]
            is_leaf = self.feature[nodes] == -1
            leaves = active[is_leaf]
            if leaves.size:
                leaf_nodes = node_of[leaves]
                depths[leaves] = depth + average_path_length(
                    self.size[leaf_nodes])
            active = active[~is_leaf]
            if not active.size:
                break
            nodes = node_of[active]
            feats = self.feature[nodes]
            go_left = X[active, feats] < self.threshold[nodes]
            node_of[active] = np.where(
                go_left, self.left[nodes], self.right[nodes])
            depth += 1
        return depths


class IForest(BaseDetector):
    """Isolation Forest anomaly detector.

    Parameters
    ----------
    n_estimators : int
        Number of isolation trees.
    max_samples : int
        Subsample size per tree (capped at the dataset size).
    contamination : float
        See :class:`BaseDetector`.
    random_state : None, int, or Generator
    """

    def __init__(self, n_estimators: int = 100, max_samples: int = 256,
                 contamination: float = 0.1, random_state=None):
        super().__init__(contamination=contamination)
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.random_state = random_state
        self._trees = None
        self._psi = None

    def _fit(self, X):
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        psi = min(self.max_samples, n)
        max_depth = int(np.ceil(np.log2(max(psi, 2))))
        self._trees = []
        for _ in range(self.n_estimators):
            sample = rng.choice(n, size=psi, replace=False)
            self._trees.append(_IsolationTree(X[sample], max_depth, rng))
        self._psi = psi
        return self._decision_function(X)

    def _decision_function(self, X):
        depths = np.zeros(X.shape[0])
        for tree in self._trees:
            depths += tree.path_lengths(X)
        mean_depth = depths / len(self._trees)
        c_psi = float(average_path_length(np.array([self._psi]))[0])
        c_psi = max(c_psi, 1e-12)
        return np.power(2.0, -mean_depth / c_psi)
