"""Lloyd's k-means with k-means++ seeding — the clustering core of CBLOF."""

from __future__ import annotations

import numpy as np

from repro.detectors.neighbors import pairwise_distances
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array

__all__ = ["KMeans"]


class KMeans:
    """Standard k-means clustering.

    Parameters
    ----------
    n_clusters : int
        Number of centroids.
    n_init : int
        Independent restarts; the run with the lowest inertia wins.
    max_iter : int
        Lloyd iterations per restart.
    tol : float
        Relative centroid-shift tolerance for early stopping.
    random_state : None, int, or Generator
    """

    def __init__(self, n_clusters: int = 8, n_init: int = 4,
                 max_iter: int = 100, tol: float = 1e-4, random_state=None):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1 or max_iter < 1:
            raise ValueError("n_init and max_iter must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_ = None
        self.labels_ = None
        self.inertia_ = None

    def _init_centers(self, X: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding (Arthur & Vassilvitskii, 2007)."""
        n = X.shape[0]
        centers = np.empty((self.n_clusters, X.shape[1]))
        centers[0] = X[rng.integers(n)]
        closest_sq = np.sum((X - centers[0]) ** 2, axis=1)
        for c in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                centers[c:] = X[rng.integers(0, n, size=self.n_clusters - c)]
                break
            probs = closest_sq / total
            centers[c] = X[rng.choice(n, p=probs)]
            closest_sq = np.minimum(
                closest_sq, np.sum((X - centers[c]) ** 2, axis=1)
            )
        return centers

    def _lloyd(self, X: np.ndarray, centers: np.ndarray):
        for _ in range(self.max_iter):
            dists = pairwise_distances(X, centers)
            labels = dists.argmin(axis=1)
            new_centers = centers.copy()
            for c in range(self.n_clusters):
                members = X[labels == c]
                if members.shape[0]:
                    new_centers[c] = members.mean(axis=0)
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            if shift <= self.tol * max(1.0, np.linalg.norm(centers)):
                break
        dists = pairwise_distances(X, centers)
        labels = dists.argmin(axis=1)
        inertia = float(np.sum(dists[np.arange(X.shape[0]), labels] ** 2))
        return centers, labels, inertia

    def fit(self, X) -> "KMeans":
        X = check_array(X, min_samples=self.n_clusters)
        rng = check_random_state(self.random_state)
        best = None
        for _ in range(self.n_init):
            centers = self._init_centers(X, rng)
            centers, labels, inertia = self._lloyd(X, centers)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self

    def predict(self, X) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans is not fitted yet; call fit() first")
        X = check_array(X)
        return pairwise_distances(X, self.cluster_centers_).argmin(axis=1)
