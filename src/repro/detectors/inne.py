"""INNE: Isolation using Nearest-Neighbour Ensembles (Bandaragoda et al.,
2018).

Each ensemble member draws a small random subsample; every subsample point
defines a hypersphere with radius equal to the distance to its nearest
subsample neighbour.  A query falling in no hypersphere is maximally
anomalous (score 1); otherwise its score is the *relative* isolation of
the smallest covering sphere: ``1 - r_nn(c) / r(c)``.

Not part of the paper's 14 evaluated models; included as a modern
isolation-family baseline.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.neighbors import kneighbors, pairwise_distances
from repro.utils.rng import check_random_state

__all__ = ["INNE"]


class INNE(BaseDetector):
    """Isolation nearest-neighbour ensemble.

    Parameters
    ----------
    n_estimators : int
        Ensemble size.
    max_samples : int
        Subsample size per member (>= 2).
    """

    def __init__(self, n_estimators: int = 100, max_samples: int = 16,
                 contamination: float = 0.1, random_state=None):
        super().__init__(contamination=contamination)
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.random_state = random_state
        self._members = None

    def _fit(self, X):
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        psi = min(self.max_samples, n)
        self._members = []
        for _ in range(self.n_estimators):
            subset = X[rng.choice(n, size=psi, replace=False)]
            nn_dist, nn_idx = kneighbors(subset, subset, 1,
                                         exclude_self=True)
            radii = nn_dist[:, 0]
            # Radius of each centre's nearest neighbour's own sphere.
            nn_radii = radii[nn_idx[:, 0]]
            self._members.append((subset, radii, nn_radii))
        return self._decision_function(X)

    def _decision_function(self, X):
        total = np.zeros(X.shape[0])
        for subset, radii, nn_radii in self._members:
            dist = pairwise_distances(X, subset)
            covered = dist <= radii[None, :]
            # Isolation score of the best (smallest-radius) covering ball.
            member_scores = np.ones(X.shape[0])
            masked_radii = np.where(covered, radii[None, :], np.inf)
            best = masked_radii.argmin(axis=1)
            any_cover = covered.any(axis=1)
            ratio = nn_radii[best] / np.maximum(radii[best], 1e-24)
            member_scores[any_cover] = 1.0 - ratio[any_cover]
            total += member_scores
        return total / self.n_estimators
