"""Brute-force nearest-neighbour search shared by LOF / KNN / COF / SOD.

Benchmark datasets are capped at a few thousand rows, so an exact chunked
O(n^2) search is both simplest and fast enough; chunking bounds the memory
of the pairwise-distance block.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_distances", "kneighbors"]


def pairwise_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between rows of ``A`` and rows of ``B``."""
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValueError(
            f"A and B must be 2-d with equal width, got {A.shape} and {B.shape}"
        )
    sq = (
        np.sum(A**2, axis=1)[:, None]
        + np.sum(B**2, axis=1)[None, :]
        - 2.0 * (A @ B.T)
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def kneighbors(query: np.ndarray, reference: np.ndarray, k: int,
               exclude_self: bool = False, chunk_size: int = 1024):
    """The ``k`` nearest reference rows for every query row.

    Parameters
    ----------
    query, reference : ndarray
        Row matrices with matching widths.
    k : int
        Number of neighbours to return.
    exclude_self : bool
        When querying a set against itself, skip the zero-distance match of
        each point with itself (the standard convention for LOF/KNN training
        scores).  Implemented positionally: row ``i`` of the query ignores
        row ``i`` of the reference.
    chunk_size : int
        Number of query rows processed per distance block.

    Returns
    -------
    (distances, indices) : ndarrays of shape (n_query, k)
        Sorted ascending by distance.
    """
    query = np.asarray(query, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    n_ref = reference.shape[0]
    max_k = n_ref - 1 if exclude_self else n_ref
    if not 1 <= k <= max_k:
        raise ValueError(
            f"k must be in [1, {max_k}] for {n_ref} reference rows "
            f"(exclude_self={exclude_self}), got {k}"
        )
    n_query = query.shape[0]
    distances = np.empty((n_query, k))
    indices = np.empty((n_query, k), dtype=np.int64)
    for start in range(0, n_query, chunk_size):
        stop = min(start + chunk_size, n_query)
        block = pairwise_distances(query[start:stop], reference)
        if exclude_self:
            rows = np.arange(start, stop)
            block[np.arange(stop - start), rows] = np.inf
        part = np.argpartition(block, k - 1, axis=1)[:, :k]
        part_dist = np.take_along_axis(block, part, axis=1)
        order = np.argsort(part_dist, axis=1, kind="mergesort")
        indices[start:stop] = np.take_along_axis(part, order, axis=1)
        distances[start:stop] = np.take_along_axis(part_dist, order, axis=1)
    return distances, indices
