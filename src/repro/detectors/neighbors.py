"""Backward-compatible re-export of the shared neighbor kernels.

The brute-force search that lived here moved to :mod:`repro.kernels`
(chunked + threaded blocks, exact-recompute neighbor distances, and the
process-wide :class:`~repro.kernels.cache.NeighborCache`).  Importing
``pairwise_distances`` / ``kneighbors`` from this module keeps working
and resolves to the same kernels every detector now uses.
"""

from __future__ import annotations

from repro.kernels import kneighbors, pairwise_distances

__all__ = ["pairwise_distances", "kneighbors"]
