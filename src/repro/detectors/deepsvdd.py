"""Deep Support Vector Data Description (Ruff et al., 2018).

One-class deep learning: a neural encoder ``phi`` is trained to map the data
close to a fixed hypersphere centre ``c`` (the mean of the initial
embeddings), minimising ``mean ||phi(x) - c||^2``; the anomaly score is the
squared distance to ``c``.  Per the original paper, the encoder uses no bias
terms (a bias would allow the trivial constant-map solution).

Built on :mod:`repro.nn`, replacing the paper's PyTorch implementation.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.nn.activations import ReLU
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.training import iterate_minibatches
from repro.utils.rng import check_random_state, spawn_rng

__all__ = ["DeepSVDD"]


class DeepSVDD(BaseDetector):
    """Deep one-class classification.

    Parameters
    ----------
    hidden : tuple of int
        Widths of the encoder layers (final entry is the embedding size).
    epochs : int
        Training epochs.
    batch_size, lr : training hyper-parameters (Adam).
    """

    def __init__(self, hidden: tuple = (64, 32), epochs: int = 20,
                 batch_size: int = 256, lr: float = 1e-3,
                 contamination: float = 0.1, random_state=None):
        super().__init__(contamination=contamination)
        if not hidden:
            raise ValueError("hidden must contain at least one layer width")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.random_state = random_state
        self._network = None
        self._center = None
        self._input_mean = None
        self._input_scale = None

    def _build_network(self, d: int, rng) -> Sequential:
        rngs = spawn_rng(rng, len(self.hidden))
        layers = []
        prev = d
        for i, width in enumerate(self.hidden):
            # bias=False: with biases the network can collapse to phi(x) = c.
            layers.append(Dense(prev, width, bias=False, random_state=rngs[i]))
            if i < len(self.hidden) - 1:
                layers.append(ReLU())
            prev = width
        return Sequential(layers)

    def _fit(self, X):
        rng = check_random_state(self.random_state)
        # Internal standardisation keeps optimisation stable regardless of
        # raw feature scales.
        self._input_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._input_scale = np.where(scale == 0, 1.0, scale)
        Z = (X - self._input_mean) / self._input_scale

        self._network = self._build_network(Z.shape[1], rng)
        # Centre = mean initial embedding, nudged away from zero coordinates
        # (zero centre coordinates admit trivial solutions; cf. Ruff et al.).
        embedding = self._network.forward(Z)
        center = embedding.mean(axis=0)
        eps = 0.1
        small = np.abs(center) < eps
        center[small] = np.where(center[small] >= 0, eps, -eps)
        self._center = center

        optimizer = Adam(self._network.params, self._network.grads,
                         lr=self.lr)
        n = Z.shape[0]
        for _ in range(self.epochs):
            for batch in iterate_minibatches(n, self.batch_size, rng):
                out = self._network.forward(Z[batch])
                diff = out - self._center
                grad = 2.0 * diff / (batch.size * diff.shape[1])
                self._network.backward(grad)
                optimizer.step()
        return self._decision_function(X)

    def _decision_function(self, X):
        Z = (X - self._input_mean) / self._input_scale
        out = self._network.forward(Z)
        return np.sum((out - self._center) ** 2, axis=1)
