"""Subspace Outlier Detection (Kriegel et al., 2009).

SOD scores each point against a *reference set* chosen by shared-nearest-
neighbour similarity, in the axis-parallel subspace where the reference set
is tight: dimensions whose reference variance is below ``alpha`` times the
mean per-dimension variance.  The score is the normalised distance to the
reference mean within that subspace — catching anomalies visible only in a
projection.  PyOD defaults: ``n_neighbors=20``, ``ref_set=10``,
``alpha=0.8``.

Scoring runs in one of two engines producing bit-identical scores:

* ``"vectorized"`` (default) — shared-neighbour overlaps for all rows at
  once via a boolean-adjacency matrix product (instead of ``n * k``
  Python ``set`` intersections), batched mean/variance/subspace
  selection, and subspace distances grouped by subspace size so each
  group is one exact contiguous reduction.
* ``"reference"`` — the original one-row-at-a-time loop, kept as the
  parity oracle.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.kernels import cached_kneighbors

__all__ = ["SOD"]

_ENGINES = ("vectorized", "reference")

# Element budget for the chunked SNN equality tensor (tests shrink it to
# force multi-chunk runs; chunking never changes results).
_BLOCK_ELEMENTS = 2**22


class SOD(BaseDetector):
    """Subspace outlier degree.

    Parameters
    ----------
    n_neighbors : int
        Candidate pool size for shared-nearest-neighbour ranking.
    ref_set : int
        Reference set size (must be <= n_neighbors).
    alpha : float in (0, 1)
        Variance threshold selecting the relevant subspace.
    engine : {'vectorized', 'reference'}
        Batched scoring (default) or the per-row loop; identical scores.
    """

    def __init__(self, n_neighbors: int = 20, ref_set: int = 10,
                 alpha: float = 0.8, contamination: float = 0.1,
                 engine: str = "vectorized"):
        super().__init__(contamination=contamination)
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if not 1 <= ref_set <= n_neighbors:
            raise ValueError(
                f"ref_set must be in [1, n_neighbors], got {ref_set}"
            )
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.n_neighbors = n_neighbors
        self.ref_set = ref_set
        self.alpha = alpha
        self.engine = engine
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        self._X_train = None
        self._train_knn = None

    def _effective_sizes(self):
        k = min(self.n_neighbors, self._X_train.shape[0] - 1)
        r = min(self.ref_set, k)
        return k, r

    # -- reference engine (per-row) ---------------------------------------
    def _snn_reference(self, candidate_idx: np.ndarray,
                       own_neighbors: np.ndarray, r: int,
                       train_knn_sets: list) -> np.ndarray:
        """Pick the ``r`` candidates sharing the most neighbours with us."""
        own = set(own_neighbors.tolist())
        overlaps = np.array([
            len(own.intersection(train_knn_sets[c])) for c in candidate_idx
        ])
        top = np.argsort(-overlaps, kind="mergesort")[:r]
        return candidate_idx[top]

    def _sod_score(self, x: np.ndarray, ref_points: np.ndarray) -> float:
        mean = ref_points.mean(axis=0)
        var = ref_points.var(axis=0)
        mean_var = var.mean()
        subspace = var < self.alpha * mean_var
        if not subspace.any():
            return 0.0
        diff_sq = (x - mean) ** 2
        return float(np.sqrt(diff_sq[subspace].sum()) / subspace.sum())

    def _scores_reference(self, X: np.ndarray, idx: np.ndarray,
                          r: int) -> np.ndarray:
        train_knn_sets = [set(row.tolist()) for row in self._train_knn]
        scores = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            ref_idx = self._snn_reference(idx[i], idx[i], r, train_knn_sets)
            scores[i] = self._sod_score(X[i], self._X_train[ref_idx])
        return scores

    # -- vectorized engine ------------------------------------------------
    def _scores_vectorized(self, X: np.ndarray, idx: np.ndarray,
                           r: int) -> np.ndarray:
        n, k = idx.shape

        # SNN overlap counts |knn(query i) ∩ knn(candidate c)| for every
        # candidate c in row i's own neighbor list, batched: an equality
        # tensor between each row's own neighbor list and its candidates'
        # lists, reduced to exact integer counts.  O(n k^3) work and
        # O(chunk k^3) memory — neighbor lists have no repeats, so
        # counting equal pairs is exactly the set-intersection size.
        overlaps = np.empty((n, k), dtype=np.int64)
        candidate_lists = self._train_knn[idx]                   # (n, k, k')
        chunk = max(1, _BLOCK_ELEMENTS
                    // (k * k * candidate_lists.shape[2] or 1))
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            eq = (idx[start:stop, None, :, None]
                  == candidate_lists[start:stop, :, None, :])
            overlaps[start:stop] = eq.sum(axis=(2, 3))

        # Same stable ranking as the reference: descending overlap,
        # candidate order preserved on ties.
        top = np.argsort(-overlaps, axis=1, kind="mergesort")[:, :r]
        ref_idx = np.take_along_axis(idx, top, axis=1)

        ref_points = self._X_train[ref_idx]                      # (n, r, d)
        mean = ref_points.mean(axis=1)
        var = ref_points.var(axis=1)
        mean_var = var.mean(axis=1)
        subspace = var < self.alpha * mean_var[:, None]
        diff_sq = (X - mean) ** 2

        # Group rows by subspace size so each group's masked sum is one
        # contiguous (m, s) reduction — the same additions in the same
        # order as the reference's 1-d gathered sum.
        counts = subspace.sum(axis=1)
        scores = np.zeros(n)
        for s in np.unique(counts):
            if s == 0:
                continue
            group = counts == s
            picked = diff_sq[group][subspace[group]].reshape(-1, s)
            scores[group] = np.sqrt(picked.sum(axis=1)) / s
        return scores

    def _scores(self, X: np.ndarray, idx: np.ndarray, r: int) -> np.ndarray:
        if self.engine == "reference":
            return self._scores_reference(X, idx, r)
        return self._scores_vectorized(X, idx, r)

    def _fit(self, X):
        self._X_train = X.copy()
        k, r = self._effective_sizes()
        _, idx = cached_kneighbors(X, X, k, exclude_self=True)
        self._train_knn = idx
        return self._scores(X, idx, r)

    def _decision_function(self, X):
        k, r = self._effective_sizes()
        _, idx = cached_kneighbors(X, self._X_train, k)
        return self._scores(X, idx, r)

    def set_state(self, state: dict) -> "SOD":
        super().set_state(state)
        # Artifacts saved by repro <= 1.2 predate the engine parameter.
        self.__dict__.setdefault("engine", "vectorized")
        if isinstance(self._train_knn, list):
            # Artifacts saved by repro <= 1.2 stored neighbor sets; both
            # engines consume them order-insensitively (membership
            # counts), so a sorted ndarray is an exact stand-in.
            self._train_knn = np.array(
                [sorted(row) for row in self._train_knn], dtype=np.int64)
        return self
