"""Subspace Outlier Detection (Kriegel et al., 2009).

SOD scores each point against a *reference set* chosen by shared-nearest-
neighbour similarity, in the axis-parallel subspace where the reference set
is tight: dimensions whose reference variance is below ``alpha`` times the
mean per-dimension variance.  The score is the normalised distance to the
reference mean within that subspace — catching anomalies visible only in a
projection.  PyOD defaults: ``n_neighbors=20``, ``ref_set=10``,
``alpha=0.8``.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.neighbors import kneighbors

__all__ = ["SOD"]


class SOD(BaseDetector):
    """Subspace outlier degree.

    Parameters
    ----------
    n_neighbors : int
        Candidate pool size for shared-nearest-neighbour ranking.
    ref_set : int
        Reference set size (must be <= n_neighbors).
    alpha : float in (0, 1)
        Variance threshold selecting the relevant subspace.
    """

    def __init__(self, n_neighbors: int = 20, ref_set: int = 10,
                 alpha: float = 0.8, contamination: float = 0.1):
        super().__init__(contamination=contamination)
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if not 1 <= ref_set <= n_neighbors:
            raise ValueError(
                f"ref_set must be in [1, n_neighbors], got {ref_set}"
            )
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.n_neighbors = n_neighbors
        self.ref_set = ref_set
        self.alpha = alpha
        self._X_train = None
        self._train_knn = None

    def _effective_sizes(self):
        k = min(self.n_neighbors, self._X_train.shape[0] - 1)
        r = min(self.ref_set, k)
        return k, r

    def _snn_reference(self, candidate_idx: np.ndarray,
                       own_neighbors: np.ndarray, r: int) -> np.ndarray:
        """Pick the ``r`` candidates sharing the most neighbours with us."""
        own = set(own_neighbors.tolist())
        overlaps = np.array([
            len(own.intersection(self._train_knn[c])) for c in candidate_idx
        ])
        top = np.argsort(-overlaps, kind="mergesort")[:r]
        return candidate_idx[top]

    def _sod_score(self, x: np.ndarray, ref_points: np.ndarray) -> float:
        mean = ref_points.mean(axis=0)
        var = ref_points.var(axis=0)
        mean_var = var.mean()
        subspace = var < self.alpha * mean_var
        if not subspace.any():
            return 0.0
        diff_sq = (x - mean) ** 2
        return float(np.sqrt(diff_sq[subspace].sum()) / subspace.sum())

    def _fit(self, X):
        self._X_train = X.copy()
        k, r = self._effective_sizes()
        _, idx = kneighbors(X, X, k, exclude_self=True)
        self._train_knn = [set(row.tolist()) for row in idx]
        scores = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            ref_idx = self._snn_reference(idx[i], idx[i], r)
            scores[i] = self._sod_score(X[i], X[ref_idx])
        return scores

    def _decision_function(self, X):
        k, r = self._effective_sizes()
        _, idx = kneighbors(X, self._X_train, k)
        scores = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            ref_idx = self._snn_reference(idx[i], idx[i], r)
            scores[i] = self._sod_score(X[i], self._X_train[ref_idx])
        return scores
