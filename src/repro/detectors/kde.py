"""Kernel Density Estimation outlier detection.

Scores every sample by the negative log of a Gaussian kernel density
estimate fitted on the training data (leave-one-out on the training set so
a point's own kernel does not mask it).  Bandwidth follows Scott's rule.

Not part of the paper's 14 evaluated models; included as a classic
density-based baseline.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.kernels import neighbor_cache, pairwise_distances

__all__ = ["KDE"]

# Self-distance matrices are only parked in the process-wide cache up to
# this many bytes (8 n^2 per matrix); larger ones stay transient so a
# user-raised ``max_train`` cannot pin gigabytes for the process
# lifetime.  64 MiB covers n <= ~2896 — comfortably the default
# ``max_train=2000``.
_CACHE_MATRIX_MAX_BYTES = 2**26


class KDE(BaseDetector):
    """Gaussian KDE anomaly detector.

    Parameters
    ----------
    bandwidth : float or 'scott'
        Kernel bandwidth; ``'scott'`` uses ``n^(-1 / (d + 4))`` on
        internally standardised data.
    max_train : int
        Subsample cap for the kernel sums.
    """

    def __init__(self, bandwidth="scott", max_train: int = 2000,
                 contamination: float = 0.1, random_state=None):
        super().__init__(contamination=contamination)
        if bandwidth != "scott" and not (
                isinstance(bandwidth, (int, float)) and bandwidth > 0):
            raise ValueError(
                f"bandwidth must be positive or 'scott', got {bandwidth!r}"
            )
        if max_train < 2:
            raise ValueError(f"max_train must be >= 2, got {max_train}")
        self.bandwidth = bandwidth
        self.max_train = max_train
        self.random_state = random_state
        self._X_kde = None
        self._h = None
        self._mean = None
        self._scale = None

    def _log_density(self, X, exclude_self: bool) -> np.ndarray:
        Z = (X - self._mean) / self._scale
        ref = self._X_kde
        d = Z.shape[1]
        if (exclude_self
                and 8 * Z.shape[0] * Z.shape[0] <= _CACHE_MATRIX_MAX_BYTES):
            # Scoring the training matrix against itself: the distance
            # matrix is a self-block, shared through the process-wide
            # neighbor cache (refits and parity runs hit for free).
            dist = neighbor_cache.pairwise(Z)
        else:
            dist = pairwise_distances(Z, ref)
        dist_sq = dist ** 2
        log_kernel = -0.5 * dist_sq / self._h**2
        if exclude_self:
            # Remove each training point's own zero-distance kernel term.
            n = ref.shape[0]
            log_kernel[np.arange(min(Z.shape[0], n)),
                       np.arange(min(Z.shape[0], n))] = -np.inf
        top = log_kernel.max(axis=1)
        log_sum = top + np.log(np.exp(log_kernel - top[:, None]).sum(axis=1))
        norm = (np.log(ref.shape[0]) + d * np.log(self._h)
                + 0.5 * d * np.log(2 * np.pi))
        return log_sum - norm

    def _fit(self, X):
        from repro.utils.rng import check_random_state
        rng = check_random_state(self.random_state)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._scale = np.where(scale == 0, 1.0, scale)
        Z = (X - self._mean) / self._scale
        if Z.shape[0] > self.max_train:
            keep = rng.choice(Z.shape[0], size=self.max_train, replace=False)
            Z = Z[keep]
        self._X_kde = Z
        n, d = Z.shape
        if self.bandwidth == "scott":
            self._h = float(n ** (-1.0 / (d + 4)))
        else:
            self._h = float(self.bandwidth)
        same_data = X.shape[0] == self._X_kde.shape[0]
        return -self._log_density(X, exclude_self=same_data)

    def _decision_function(self, X):
        return -self._log_density(X, exclude_self=False)
