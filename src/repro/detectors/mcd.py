"""Minimum Covariance Determinant outlier detection (Rousseeuw, 1984).

Estimates a robust location/scatter from the ``support_fraction`` subset of
samples with the smallest covariance determinant (the FastMCD C-step
iteration), then scores every sample by its Mahalanobis distance to that
robust estimate — classic statistical outlier detection that is immune to
masking by the outliers themselves.

Not part of the paper's 14 evaluated models; included as a standard
ADBench statistical baseline.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.utils.rng import check_random_state

__all__ = ["MCD"]


def _mahalanobis_sq(X, mean, precision):
    diff = X - mean
    return np.einsum("ij,jk,ik->i", diff, precision, diff)


class MCD(BaseDetector):
    """Minimum covariance determinant detector.

    Parameters
    ----------
    support_fraction : float in (0.5, 1]
        Fraction of samples the robust estimate is computed from.
    n_trials : int
        Random initial subsets for the FastMCD search.
    n_c_steps : int
        C-step iterations per trial.
    """

    def __init__(self, support_fraction: float = 0.75, n_trials: int = 10,
                 n_c_steps: int = 10, contamination: float = 0.1,
                 random_state=None):
        super().__init__(contamination=contamination)
        if not 0.5 < support_fraction <= 1.0:
            raise ValueError(
                f"support_fraction must be in (0.5, 1], got {support_fraction}"
            )
        if n_trials < 1 or n_c_steps < 1:
            raise ValueError("n_trials and n_c_steps must be >= 1")
        self.support_fraction = support_fraction
        self.n_trials = n_trials
        self.n_c_steps = n_c_steps
        self.random_state = random_state
        self.location_ = None
        self.precision_ = None

    def _robust_fit(self, X, h, rng):
        n, d = X.shape
        best = None
        for _ in range(self.n_trials):
            subset = rng.choice(n, size=min(max(d + 1, h // 2), n),
                                replace=False)
            for _ in range(self.n_c_steps):
                mean = X[subset].mean(axis=0)
                cov = np.cov(X[subset].T, ddof=0).reshape(d, d)
                cov.flat[:: d + 1] += 1e-9
                precision = np.linalg.inv(cov)
                dist = _mahalanobis_sq(X, mean, precision)
                new_subset = np.argsort(dist)[:h]
                if np.array_equal(np.sort(new_subset), np.sort(subset)):
                    subset = new_subset
                    break
                subset = new_subset
            mean = X[subset].mean(axis=0)
            cov = np.cov(X[subset].T, ddof=0).reshape(d, d)
            cov.flat[:: d + 1] += 1e-9
            sign, logdet = np.linalg.slogdet(cov)
            if sign <= 0:
                continue
            if best is None or logdet < best[0]:
                best = (logdet, mean, cov)
        if best is None:
            # Degenerate data: fall back to the classical estimate.
            mean = X.mean(axis=0)
            cov = np.cov(X.T, ddof=0).reshape(d, d)
            cov.flat[:: d + 1] += 1e-9
            return mean, cov
        return best[1], best[2]

    def _fit(self, X):
        rng = check_random_state(self.random_state)
        h = max(int(np.ceil(self.support_fraction * X.shape[0])),
                X.shape[1] + 1)
        h = min(h, X.shape[0])
        mean, cov = self._robust_fit(X, h, rng)
        self.location_ = mean
        self.precision_ = np.linalg.inv(cov)
        return self._decision_function(X)

    def _decision_function(self, X):
        return _mahalanobis_sq(X, self.location_, self.precision_)
