"""k-Nearest-Neighbours outlier detection (Ramaswamy et al., 2000).

The anomaly score of a sample is a statistic of its distances to the ``k``
nearest training points — by default the distance to the k-th neighbour
("largest" method, PyOD's default with ``k=5``).  Points far from all
neighbours are global anomalies.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.kernels import cached_kneighbors as kneighbors

__all__ = ["KNN"]

_METHODS = ("largest", "mean", "median")


class KNN(BaseDetector):
    """Distance-to-neighbours anomaly detector.

    Parameters
    ----------
    n_neighbors : int
        ``k`` in the k-NN distance.
    method : {'largest', 'mean', 'median'}
        Statistic of the k neighbour distances used as the score.
    contamination : float
        See :class:`BaseDetector`.
    """

    def __init__(self, n_neighbors: int = 5, method: str = "largest",
                 contamination: float = 0.1):
        super().__init__(contamination=contamination)
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
        self.n_neighbors = n_neighbors
        self.method = method
        self._X_train = None

    def _effective_k(self) -> int:
        # Gracefully degrade on tiny datasets, as PyOD does.
        return min(self.n_neighbors, self._X_train.shape[0] - 1)

    def _reduce(self, dists: np.ndarray) -> np.ndarray:
        if self.method == "largest":
            return dists[:, -1]
        if self.method == "mean":
            return dists.mean(axis=1)
        return np.median(dists, axis=1)

    def _fit(self, X):
        self._X_train = X.copy()
        dists, _ = kneighbors(X, X, self._effective_k(), exclude_self=True)
        return self._reduce(dists)

    def _decision_function(self, X):
        dists, _ = kneighbors(X, self._X_train, self._effective_k())
        return self._reduce(dists)
