"""The 14 paper source UAD models + 6 extra baselines, plus shared machinery."""

from repro.detectors.abod import ABOD
from repro.detectors.base import BaseDetector
from repro.detectors.cblof import CBLOF
from repro.detectors.cof import COF
from repro.detectors.copod import COPOD
from repro.detectors.deepsvdd import DeepSVDD
from repro.detectors.ecod import ECOD
from repro.detectors.feature_bagging import FeatureBagging
from repro.detectors.gmm import GMM, GaussianMixture
from repro.detectors.hbos import HBOS
from repro.detectors.iforest import IForest
from repro.detectors.inne import INNE
from repro.detectors.kde import KDE
from repro.detectors.kmeans import KMeans
from repro.detectors.knn import KNN
from repro.detectors.loda import LODA
from repro.detectors.lof import LOF
from repro.detectors.mcd import MCD
from repro.detectors.neighbors import kneighbors, pairwise_distances
from repro.detectors.ocsvm import OCSVM
from repro.detectors.pca import PCA
from repro.detectors.registry import (
    ALL_DETECTOR_NAMES,
    DETECTOR_CLASSES,
    DETECTOR_NAMES,
    EXTRA_DETECTOR_NAMES,
    make_detector,
)
from repro.detectors.sampling import Sampling
from repro.detectors.sod import SOD

__all__ = [
    "ABOD",
    "BaseDetector",
    "CBLOF",
    "COF",
    "COPOD",
    "DeepSVDD",
    "ECOD",
    "GMM",
    "GaussianMixture",
    "HBOS",
    "IForest",
    "KMeans",
    "KNN",
    "LODA",
    "LOF",
    "OCSVM",
    "PCA",
    "SOD",
    "FeatureBagging",
    "INNE",
    "KDE",
    "MCD",
    "Sampling",
    "ALL_DETECTOR_NAMES",
    "DETECTOR_CLASSES",
    "DETECTOR_NAMES",
    "EXTRA_DETECTOR_NAMES",
    "make_detector",
    "kneighbors",
    "pairwise_distances",
]
