"""Feature Bagging for outlier detection (Lazarevic & Kumar, 2005).

An ensemble meta-detector: each member fits a base detector (LOF by
default) on a random feature subset of size between d/2 and d, and the
per-member scores are combined by averaging after rank normalisation —
robust against irrelevant features, which plain distance methods are not.

Not part of the paper's 14 evaluated models; included as the classic
ensemble baseline from the ADBench suite.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.lof import LOF
from repro.metrics.classification import rank_of
from repro.utils.rng import check_random_state, spawn_rng

__all__ = ["FeatureBagging"]


class FeatureBagging(BaseDetector):
    """Feature-bagged detector ensemble.

    Parameters
    ----------
    base_factory : callable or None
        Zero-argument callable returning a fresh unfitted detector; default
        builds a ``LOF(n_neighbors=10)``.
    n_estimators : int
        Ensemble size.
    combination : {'average', 'max'}
        Score combination across members (after rank normalisation for
        'average'; raw min-max scores for 'max').
    """

    def __init__(self, base_factory=None, n_estimators: int = 10,
                 combination: str = "average", contamination: float = 0.1,
                 random_state=None):
        super().__init__(contamination=contamination)
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if combination not in ("average", "max"):
            raise ValueError(
                f"combination must be 'average' or 'max', got {combination!r}"
            )
        self.base_factory = base_factory
        self.n_estimators = n_estimators
        self.combination = combination
        self.random_state = random_state
        self._members = None

    def _make_base(self):
        if self.base_factory is None:
            return LOF(n_neighbors=10)
        return self.base_factory()

    def _fit(self, X):
        rng = check_random_state(self.random_state)
        d = X.shape[1]
        low = max(1, d // 2)
        self._members = []
        rngs = spawn_rng(rng, self.n_estimators)
        for member_rng in rngs:
            size = int(member_rng.integers(low, d + 1))
            features = np.sort(
                member_rng.choice(d, size=size, replace=False))
            detector = self._make_base()
            detector.fit(X[:, features])
            self._members.append((features, detector))
        return self._decision_function(X)

    def _decision_function(self, X):
        per_member = []
        for features, detector in self._members:
            raw = detector.decision_function(X[:, features])
            if self.combination == "average":
                per_member.append(rank_of(raw))
            else:
                span = raw.max() - raw.min()
                per_member.append(
                    (raw - raw.min()) / span if span else np.zeros_like(raw))
        stacked = np.vstack(per_member)
        if self.combination == "average":
            return stacked.mean(axis=0)
        return stacked.max(axis=0)
