"""Histogram-Based Outlier Score (Goldstein & Dengel, 2012).

Assumes feature independence: each dimension gets an equal-width histogram,
and the anomaly score of a sample is the sum over dimensions of
``log(1 / density)``.  Sparse histogram regions therefore yield high scores.
PyOD default: 10 bins per feature.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.histograms import Histogram1D

__all__ = ["HBOS"]


class HBOS(BaseDetector):
    """Histogram-based outlier detector.

    Parameters
    ----------
    n_bins : int
        Bins per feature histogram.
    contamination : float
        See :class:`BaseDetector`.
    """

    def __init__(self, n_bins: int = 10, contamination: float = 0.1):
        super().__init__(contamination=contamination)
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        self.n_bins = n_bins
        self._histograms = None

    def _fit(self, X):
        self._histograms = [
            Histogram1D(n_bins=self.n_bins).fit(X[:, j])
            for j in range(X.shape[1])
        ]
        return self._decision_function(X)

    def _decision_function(self, X):
        scores = np.zeros(X.shape[0])
        for j, hist in enumerate(self._histograms):
            scores += -np.log(hist.density(X[:, j]))
        return scores
