"""Base class shared by all 20 unsupervised anomaly detectors
(14 paper models + 6 extra baselines).

The contract mirrors PyOD's, which the paper uses for every source model:

* :meth:`fit` learns from an unlabelled matrix ``X`` and stores raw anomaly
  scores of the training data in ``decision_scores_`` (higher = more
  anomalous);
* :meth:`decision_function` returns raw scores for arbitrary data (needed
  for the paper's decision-boundary visualisations, Fig 5);
* :meth:`score_samples` rescales raw scores into [0, 1] with the training
  min/max, producing the ``f_S(x) -> [0, 1]`` mapping UADB consumes;
* :meth:`predict` thresholds by the ``contamination`` rate, like PyOD.
"""

from __future__ import annotations

import numpy as np

from repro.api.params import ParamsMixin
from repro.utils.validation import check_array, check_fitted

__all__ = ["BaseDetector"]


class BaseDetector(ParamsMixin):
    """Abstract unsupervised anomaly detector.

    Subclasses implement ``_fit(X)`` (returning raw training scores) and
    ``_decision_function(X)`` (raw scores for new data).  Hyper-parameter
    access (``get_params`` / ``set_params`` / ``clone`` and the
    params-based ``__repr__``) comes from the repro estimator protocol:
    constructors store every argument under a same-named attribute and
    :class:`~repro.api.params.ParamsMixin` introspects the rest.

    Parameters
    ----------
    contamination : float in (0, 0.5]
        Expected anomaly fraction, used only by :meth:`predict` to set the
        decision threshold.  Defaults to PyOD's 0.1.
    """

    def __init__(self, contamination: float = 0.1):
        if not 0.0 < contamination <= 0.5:
            raise ValueError(
                f"contamination must be in (0, 0.5], got {contamination}"
            )
        self.contamination = contamination
        self.decision_scores_ = None
        self.threshold_ = None
        self._score_min = None
        self._score_max = None

    # -- subclass hooks -------------------------------------------------
    def _fit(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _decision_function(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- public API -------------------------------------------------------
    def fit(self, X) -> "BaseDetector":
        """Fit the detector on unlabelled data."""
        X = check_array(X, min_samples=2)
        self._n_features = X.shape[1]
        scores = np.asarray(self._fit(X), dtype=np.float64).ravel()
        if scores.shape[0] != X.shape[0]:
            raise RuntimeError(
                f"{type(self).__name__}._fit returned {scores.shape[0]} "
                f"scores for {X.shape[0]} samples"
            )
        if not np.all(np.isfinite(scores)):
            raise RuntimeError(
                f"{type(self).__name__} produced non-finite training scores"
            )
        self.decision_scores_ = scores
        self._score_min = float(scores.min())
        self._score_max = float(scores.max())
        self.threshold_ = float(
            np.quantile(scores, 1.0 - self.contamination)
        )
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw anomaly scores of ``X`` (higher = more anomalous)."""
        check_fitted(self, "decision_scores_")
        X = check_array(X)
        if X.shape[1] != self._n_features:
            raise ValueError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        scores = np.asarray(self._decision_function(X), dtype=np.float64)
        return scores.ravel()

    def score_samples(self, X) -> np.ndarray:
        """Anomaly scores of ``X`` scaled to [0, 1] by the training range.

        Scores outside the training range are clipped; a constant training
        score vector maps everything to 0.
        """
        raw = self.decision_function(X)
        span = self._score_max - self._score_min
        if span == 0:
            return np.zeros_like(raw)
        return np.clip((raw - self._score_min) / span, 0.0, 1.0)

    def fit_scores(self) -> np.ndarray:
        """Training-set scores in [0, 1] — UADB's initial pseudo-labels."""
        check_fitted(self, "decision_scores_")
        span = self._score_max - self._score_min
        if span == 0:
            return np.zeros_like(self.decision_scores_)
        return (self.decision_scores_ - self._score_min) / span

    def predict(self, X) -> np.ndarray:
        """Binary labels (1 = anomaly) at the contamination threshold."""
        check_fitted(self, "threshold_")
        return (self.decision_function(X) > self.threshold_).astype(np.int64)

    def fit_predict(self, X) -> np.ndarray:
        """Fit on ``X`` and return binary training labels."""
        self.fit(X)
        return (self.decision_scores_ > self.threshold_).astype(np.int64)

    # -- persistence ------------------------------------------------------
    def get_state(self) -> dict:
        """Full instance state for :mod:`repro.serving.artifacts`.

        The default snapshot is the instance ``__dict__``; nested helper
        objects (trees, mixtures, networks, member detectors, ...) are
        encoded recursively by the serving codec.  Subclasses with
        non-serialisable state (e.g. user callables) must override.
        """
        return dict(vars(self))

    def set_state(self, state: dict) -> "BaseDetector":
        """Restore a detector from :meth:`get_state` output."""
        self.__dict__.update(state)
        return self
