"""1-d histogram density estimation shared by HBOS and LODA."""

from __future__ import annotations

import numpy as np

__all__ = ["Histogram1D"]


class Histogram1D:
    """Equal-width histogram with out-of-range handling.

    Densities are normalised so the highest bin has density 1; queries left
    of the first edge or right of the last edge receive a configurable
    ``outlier_density`` (a small positive value, so log-scores stay finite —
    the convention HBOS uses).
    """

    def __init__(self, n_bins: int = 10, outlier_density: float = 1e-9):
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if outlier_density <= 0:
            raise ValueError("outlier_density must be positive")
        self.n_bins = n_bins
        self.outlier_density = outlier_density
        self.edges_ = None
        self.density_ = None

    def fit(self, values: np.ndarray) -> "Histogram1D":
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            raise ValueError("cannot fit a histogram on empty data")
        lo, hi = float(values.min()), float(values.max())
        if lo == hi:
            # Degenerate feature: one bin covering the single value.
            lo -= 0.5
            hi += 0.5
        counts, edges = np.histogram(values, bins=self.n_bins,
                                     range=(lo, hi))
        density = counts.astype(np.float64)
        peak = density.max()
        if peak > 0:
            density /= peak
        # Empty interior bins get the floor density rather than zero.
        density = np.maximum(density, self.outlier_density)
        self.edges_ = edges
        self.density_ = density
        return self

    def density(self, values: np.ndarray) -> np.ndarray:
        """Relative density of each query value (max-normalised)."""
        if self.edges_ is None:
            raise RuntimeError("Histogram1D is not fitted yet")
        values = np.asarray(values, dtype=np.float64).ravel()
        idx = np.searchsorted(self.edges_, values, side="right") - 1
        # Values exactly at the right edge belong to the last bin.
        idx = np.where(values == self.edges_[-1], self.n_bins - 1, idx)
        out = np.full(values.shape, self.outlier_density)
        valid = (idx >= 0) & (idx < self.n_bins)
        in_range = (values >= self.edges_[0]) & (values <= self.edges_[-1])
        take = valid & in_range
        out[take] = self.density_[idx[take]]
        return out
