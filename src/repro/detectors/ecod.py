"""ECOD: Empirical-Cumulative-distribution-based Outlier Detection
(Li et al., 2022).

Parameter-free and fully vectorised: per dimension, tail probabilities are
estimated from the left and right empirical CDFs; per-sample aggregates of
``-log(tail probability)`` are computed for the left tails, right tails, and
a skewness-corrected automatic choice, and the final score is the maximum of
the three — exactly the aggregation in the ECOD paper.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector

__all__ = ["ECOD"]


def _skewness(X: np.ndarray) -> np.ndarray:
    """Per-column sample skewness (biased estimator, as in ECOD)."""
    centered = X - X.mean(axis=0)
    m2 = np.mean(centered**2, axis=0)
    m3 = np.mean(centered**3, axis=0)
    return m3 / np.maximum(m2, 1e-12) ** 1.5


class ECOD(BaseDetector):
    """Empirical-CDF outlier detector (parameter-free)."""

    def __init__(self, contamination: float = 0.1):
        super().__init__(contamination=contamination)
        self._sorted_cols = None
        self._n_train = None
        self._skew = None

    def _fit(self, X):
        self._sorted_cols = np.sort(X, axis=0)
        self._n_train = X.shape[0]
        self._skew = _skewness(X)
        return self._decision_function(X)

    def _tail_probs(self, X):
        """Left and right ECDF tail probabilities, floored at 1/n."""
        n = self._n_train
        left = np.empty_like(X)
        right = np.empty_like(X)
        for j in range(X.shape[1]):
            col = self._sorted_cols[:, j]
            # P(train <= x): count via binary search.
            left[:, j] = np.searchsorted(col, X[:, j], side="right") / n
            right[:, j] = (n - np.searchsorted(col, X[:, j], side="left")) / n
        floor = 1.0 / n
        return np.maximum(left, floor), np.maximum(right, floor)

    def _decision_function(self, X):
        left, right = self._tail_probs(X)
        o_left = -np.log(left)
        o_right = -np.log(right)
        # Automatic tail choice: for right-skewed dimensions the anomalous
        # tail is the right one, and vice versa.
        use_left = self._skew < 0
        o_auto = np.where(use_left, o_left, o_right)
        aggregates = np.stack([
            o_left.sum(axis=1),
            o_right.sum(axis=1),
            o_auto.sum(axis=1),
        ])
        return aggregates.max(axis=0)
