"""PCA-based anomaly detection (Shyu et al., 2003).

Samples are scored by their eigenvalue-weighted squared distance in the
principal-component space: directions with small variance get large weights,
so points deviating from the dominant correlation structure score high.
This matches PyOD's PCA detector with all components retained.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector

__all__ = ["PCA"]


class PCA(BaseDetector):
    """Principal-component-analysis outlier detector.

    Parameters
    ----------
    n_components : int or None
        Number of principal components to keep; ``None`` keeps every
        component with non-negligible variance.
    contamination : float
        See :class:`BaseDetector`.
    """

    def __init__(self, n_components: int | None = None,
                 contamination: float = 0.1):
        super().__init__(contamination=contamination)
        if n_components is not None and n_components < 1:
            raise ValueError(
                f"n_components must be >= 1 or None, got {n_components}"
            )
        self.n_components = n_components
        self._mean = None
        self._components = None
        self._eigenvalues = None

    def _fit(self, X):
        self._mean = X.mean(axis=0)
        centered = X - self._mean
        # SVD of the centered data gives eigenvectors of the covariance.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        eigenvalues = singular_values**2 / max(X.shape[0] - 1, 1)
        keep = eigenvalues > max(eigenvalues.max(), 1e-30) * 1e-9
        if self.n_components is not None:
            n_keep = min(self.n_components, int(keep.sum()))
            keep = np.zeros_like(keep)
            keep[:n_keep] = True
        self._components = vt[keep]
        self._eigenvalues = np.maximum(eigenvalues[keep], 1e-12)
        return self._decision_function(X)

    def _decision_function(self, X):
        projected = (X - self._mean) @ self._components.T
        return np.sum(projected**2 / self._eigenvalues, axis=1)
