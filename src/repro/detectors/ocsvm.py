"""One-Class SVM (Scholkopf et al., 1999).

Solves the standard nu-OCSVM dual

    min_a  1/2 a' K a    s.t.  0 <= a_i <= 1/(nu * n),  sum(a) = 1

with an RBF kernel, via projected gradient descent; each iterate is
projected exactly onto the box-constrained simplex by bisection.  Anomaly
score is the negated decision function ``rho - sum_i a_i k(x_i, x)`` —
higher means farther outside the learned support region (PyOD convention).

Training is capped at ``max_train`` points (uniform subsample) so the dense
kernel matrix stays laptop-sized; this only affects datasets above the cap.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.neighbors import pairwise_distances
from repro.utils.rng import check_random_state

__all__ = ["OCSVM"]


def _project_box_simplex(v: np.ndarray, upper: float) -> np.ndarray:
    """Euclidean projection of ``v`` onto {0 <= a <= upper, sum(a) = 1}.

    Solved by bisection on the shift tau in a_i = clip(v_i - tau, 0, upper);
    sum(a) is non-increasing in tau, so bisection converges.
    """
    n = v.size
    if upper * n < 1.0:
        raise ValueError("infeasible projection: upper * n < 1")
    lo = v.min() - upper - 1.0
    hi = v.max()
    for _ in range(100):
        tau = 0.5 * (lo + hi)
        total = np.clip(v - tau, 0.0, upper).sum()
        if total > 1.0:
            lo = tau
        else:
            hi = tau
        if hi - lo < 1e-12:
            break
    return np.clip(v - 0.5 * (lo + hi), 0.0, upper)


class OCSVM(BaseDetector):
    """nu-one-class SVM with an RBF kernel.

    Parameters
    ----------
    nu : float in (0, 1]
        Upper bound on the training outlier fraction / lower bound on the
        support-vector fraction.
    gamma : float or 'scale'
        RBF kernel width; ``'scale'`` uses ``1 / (d * var(X))`` like
        scikit-learn.
    n_iter : int
        Projected-gradient iterations.
    max_train : int
        Kernel-matrix subsample cap.
    """

    def __init__(self, nu: float = 0.5, gamma="scale", n_iter: int = 300,
                 max_train: int = 1000, contamination: float = 0.1,
                 random_state=None):
        super().__init__(contamination=contamination)
        if not 0.0 < nu <= 1.0:
            raise ValueError(f"nu must be in (0, 1], got {nu}")
        if n_iter < 1:
            raise ValueError(f"n_iter must be >= 1, got {n_iter}")
        if max_train < 2:
            raise ValueError(f"max_train must be >= 2, got {max_train}")
        self.nu = nu
        self.gamma = gamma
        self.n_iter = n_iter
        self.max_train = max_train
        self.random_state = random_state
        self._X_sv = None
        self._alpha = None
        self._gamma_value = None
        self._rho = None

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        d2 = pairwise_distances(A, B) ** 2
        return np.exp(-self._gamma_value * d2)

    def _fit(self, X):
        rng = check_random_state(self.random_state)
        train = X
        if X.shape[0] > self.max_train:
            keep = rng.choice(X.shape[0], size=self.max_train, replace=False)
            train = X[keep]
        n = train.shape[0]

        if self.gamma == "scale":
            var = float(X.var())
            self._gamma_value = 1.0 / (X.shape[1] * max(var, 1e-12))
        else:
            if not self.gamma > 0:
                raise ValueError(f"gamma must be positive, got {self.gamma}")
            self._gamma_value = float(self.gamma)

        K = self._kernel(train, train)
        upper = 1.0 / max(self.nu * n, 1.0)
        # nu * n < 1 would make the box constraint trivially loose; clamp so
        # the projection stays feasible.
        upper = max(upper, 1.0 / n)

        alpha = np.full(n, 1.0 / n)
        # Lipschitz constant of the gradient K @ alpha is the top eigenvalue
        # of K; the Gershgorin bound max row-sum is a cheap safe upper bound.
        lipschitz = float(np.abs(K).sum(axis=1).max())
        step = 1.0 / max(lipschitz, 1e-12)
        for _ in range(self.n_iter):
            grad = K @ alpha
            alpha = _project_box_simplex(alpha - step * grad, upper)

        self._X_sv = train
        self._alpha = alpha
        # rho from margin support vectors (0 < alpha < upper); fall back to
        # all support vectors when none sit strictly inside the box.
        decision_all = K @ alpha
        margin = (alpha > 1e-8) & (alpha < upper - 1e-8)
        if margin.any():
            self._rho = float(decision_all[margin].mean())
        else:
            support = alpha > 1e-8
            self._rho = float(decision_all[support].mean())
        return self._decision_function(X)

    def _decision_function(self, X):
        k = self._kernel(X, self._X_sv)
        return self._rho - k @ self._alpha
