"""Name-based factory for the paper's 14 source UAD models.

The paper evaluates UADB on IForest, HBOS, LOF, KNN, PCA, OCSVM, CBLOF,
COF, SOD, ECOD, GMM, LODA, COPOD, and DeepSVDD — all with PyOD default
hyper-parameters.  ``make_detector(name)`` builds the matching detector
here, and ``DETECTOR_NAMES`` preserves the paper's ordering (Table IV).
"""

from __future__ import annotations

from repro.api.registry import seeded_construct
from repro.detectors.abod import ABOD
from repro.detectors.cblof import CBLOF
from repro.detectors.cof import COF
from repro.detectors.copod import COPOD
from repro.detectors.deepsvdd import DeepSVDD
from repro.detectors.ecod import ECOD
from repro.detectors.feature_bagging import FeatureBagging
from repro.detectors.gmm import GMM
from repro.detectors.hbos import HBOS
from repro.detectors.iforest import IForest
from repro.detectors.inne import INNE
from repro.detectors.kde import KDE
from repro.detectors.knn import KNN
from repro.detectors.loda import LODA
from repro.detectors.lof import LOF
from repro.detectors.mcd import MCD
from repro.detectors.ocsvm import OCSVM
from repro.detectors.pca import PCA
from repro.detectors.sampling import Sampling
from repro.detectors.sod import SOD

__all__ = ["DETECTOR_NAMES", "EXTRA_DETECTOR_NAMES", "ALL_DETECTOR_NAMES",
           "DETECTOR_CLASSES", "make_detector"]

# Paper order (Table IV columns).
DETECTOR_CLASSES = {
    "IForest": IForest,
    "HBOS": HBOS,
    "LOF": LOF,
    "KNN": KNN,
    "PCA": PCA,
    "OCSVM": OCSVM,
    "CBLOF": CBLOF,
    "COF": COF,
    "SOD": SOD,
    "ECOD": ECOD,
    "GMM": GMM,
    "LODA": LODA,
    "COPOD": COPOD,
    "DeepSVDD": DeepSVDD,
}

DETECTOR_NAMES = tuple(DETECTOR_CLASSES)

# Additional ADBench-family baselines beyond the paper's 14.  UADB is
# model-agnostic, so these plug into the booster and the harness the same
# way; they are excluded from the paper-reproduction sweeps by default.
EXTRA_DETECTOR_CLASSES = {
    "ABOD": ABOD,
    "MCD": MCD,
    "KDE": KDE,
    "INNE": INNE,
    "FeatureBagging": FeatureBagging,
    "Sampling": Sampling,
}
EXTRA_DETECTOR_NAMES = tuple(EXTRA_DETECTOR_CLASSES)
ALL_DETECTOR_NAMES = DETECTOR_NAMES + EXTRA_DETECTOR_NAMES
DETECTOR_CLASSES = {**DETECTOR_CLASSES, **EXTRA_DETECTOR_CLASSES}


def make_detector(name: str, random_state=None, **kwargs):
    """Instantiate detector ``name`` with paper-default hyper-parameters.

    ``random_state`` is forwarded to detectors whose constructor accepts
    one (decided by signature introspection — see
    :func:`repro.api.registry.seeded_construct`) and ignored by the
    deterministic ones, so callers can pass it uniformly.
    """
    if name not in DETECTOR_CLASSES:
        raise KeyError(
            f"unknown detector {name!r}; known: {list(ALL_DETECTOR_NAMES)}"
        )
    return seeded_construct(DETECTOR_CLASSES[name], random_state, **kwargs)
