"""Sampling-based outlier detection (Sugiyama & Borgwardt, 2013).

The simplest effective baseline in the ADBench suite: the anomaly score of
a point is its distance to the nearest member of one tiny uniform random
subsample.  Despite its simplicity it is competitive on global anomalies
and nearly free to compute.

Not part of the paper's 14 evaluated models; included for completeness of
the baseline zoo.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.neighbors import pairwise_distances
from repro.utils.rng import check_random_state

__all__ = ["Sampling"]


class Sampling(BaseDetector):
    """Distance-to-random-subsample detector.

    Parameters
    ----------
    subset_size : int
        Size of the random reference subsample (paper default 20).
    """

    def __init__(self, subset_size: int = 20, contamination: float = 0.1,
                 random_state=None):
        super().__init__(contamination=contamination)
        if subset_size < 1:
            raise ValueError(f"subset_size must be >= 1, got {subset_size}")
        self.subset_size = subset_size
        self.random_state = random_state
        self._subset = None

    def _fit(self, X):
        rng = check_random_state(self.random_state)
        size = min(self.subset_size, X.shape[0])
        self._subset = X[rng.choice(X.shape[0], size=size, replace=False)]
        return self._decision_function(X)

    def _decision_function(self, X):
        return pairwise_distances(X, self._subset).min(axis=1)
