"""Connectivity-based Outlier Factor (Tang et al., 2002).

COF replaces LOF's density with *connectivity*: the average chaining
distance along the set-based nearest path (SBN-path) through a point's
k-neighbourhood.  Points whose chaining distance is large relative to their
neighbours' are anomalies in low-density *patterns* (e.g. lines), which pure
density methods miss.  PyOD default: ``k=20``.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.detectors.neighbors import kneighbors, pairwise_distances

__all__ = ["COF"]


def _average_chaining_distance(points: np.ndarray) -> float:
    """Average chaining distance of the SBN-path rooted at ``points[0]``.

    The SBN-path greedily extends the connected set with the point closest
    to *any* already-connected point; edge ``i`` (1-based) gets weight
    ``2 * (r - i) / (r * (r - 1))`` where ``r`` is the path length, so early
    edges (closest connections) dominate — as defined in the COF paper.
    """
    r = points.shape[0]
    if r < 2:
        return 0.0
    dist = pairwise_distances(points, points)
    in_set = np.zeros(r, dtype=bool)
    in_set[0] = True
    best = dist[0].copy()
    best[0] = np.inf
    total = 0.0
    for i in range(1, r):
        nxt = int(np.argmin(best))
        cost = float(best[nxt])
        weight = 2.0 * (r - i) / (r * (r - 1))
        total += weight * cost
        in_set[nxt] = True
        best = np.minimum(best, dist[nxt])
        best[in_set] = np.inf
    return total


class COF(BaseDetector):
    """Connectivity-based outlier factor.

    Parameters
    ----------
    n_neighbors : int
        Neighbourhood size ``k``.
    contamination : float
        See :class:`BaseDetector`.
    """

    def __init__(self, n_neighbors: int = 20, contamination: float = 0.1):
        super().__init__(contamination=contamination)
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self._X_train = None
        self._train_ac_dist = None
        self._train_neighbors = None

    def _effective_k(self) -> int:
        return min(self.n_neighbors, self._X_train.shape[0] - 1)

    def _fit(self, X):
        self._X_train = X.copy()
        k = self._effective_k()
        _, idx = kneighbors(X, X, k, exclude_self=True)
        n = X.shape[0]
        ac = np.empty(n)
        for i in range(n):
            path_points = np.vstack([X[i:i + 1], X[idx[i]]])
            ac[i] = _average_chaining_distance(path_points)
        self._train_ac_dist = np.maximum(ac, 1e-12)
        self._train_neighbors = idx
        neighbor_ac = self._train_ac_dist[idx]
        return ac * k / neighbor_ac.sum(axis=1)

    def _decision_function(self, X):
        k = self._effective_k()
        _, idx = kneighbors(X, self._X_train, k)
        scores = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            path_points = np.vstack([X[i:i + 1], self._X_train[idx[i]]])
            ac = _average_chaining_distance(path_points)
            neighbor_ac = self._train_ac_dist[idx[i]].sum()
            scores[i] = ac * k / max(neighbor_ac, 1e-12)
        return scores
