"""Connectivity-based Outlier Factor (Tang et al., 2002).

COF replaces LOF's density with *connectivity*: the average chaining
distance along the set-based nearest path (SBN-path) through a point's
k-neighbourhood.  Points whose chaining distance is large relative to their
neighbours' are anomalies in low-density *patterns* (e.g. lines), which pure
density methods miss.  PyOD default: ``k=20``.

Chaining runs in one of two engines producing bit-identical scores:

* ``"vectorized"`` (default) — every row's SBN-path is grown in lockstep
  over the stacked ``(n, k+1, k+1)`` neighborhood distance tensor: one
  batched Prim step (argmin + relax) per path position instead of a
  Python loop per row.
* ``"reference"`` — the original one-row-at-a-time loop, kept as the
  parity oracle.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import BaseDetector
from repro.kernels import cached_kneighbors, pairwise_distances

__all__ = ["COF"]

_ENGINES = ("vectorized", "reference")

# Element budget for the blocked vectorized tensors (tests shrink it to
# force multi-block runs; blocking never changes results).
_BLOCK_ELEMENTS = 2**22


def _average_chaining_distance(points: np.ndarray) -> float:
    """Average chaining distance of the SBN-path rooted at ``points[0]``.

    The SBN-path greedily extends the connected set with the point closest
    to *any* already-connected point; edge ``i`` (1-based) gets weight
    ``2 * (r - i) / (r * (r - 1))`` where ``r`` is the path length, so early
    edges (closest connections) dominate — as defined in the COF paper.
    """
    r = points.shape[0]
    if r < 2:
        return 0.0
    dist = pairwise_distances(points, points)
    in_set = np.zeros(r, dtype=bool)
    in_set[0] = True
    best = dist[0].copy()
    best[0] = np.inf
    total = 0.0
    for i in range(1, r):
        nxt = int(np.argmin(best))
        cost = float(best[nxt])
        weight = 2.0 * (r - i) / (r * (r - 1))
        total += weight * cost
        in_set[nxt] = True
        best = np.minimum(best, dist[nxt])
        best[in_set] = np.inf
    return total


def _batched_chaining_distances(P: np.ndarray) -> np.ndarray:
    """Average chaining distance of every stacked path in ``P`` (n, r, d).

    The greedy SBN construction is inherently sequential *along the
    path*, but independent *across rows* — so the loop runs over the
    ``r - 1`` path positions (a handful) and each step is one batched
    argmin/relax over all rows.  Mirrors the scalar kernel operation for
    operation (same distance expansion, same accumulation order), so the
    result is bit-identical to looping `_average_chaining_distance`.
    """
    n, r, _ = P.shape
    if r < 2:
        return np.zeros(n)
    sq = np.einsum("nrd,nrd->nr", P, P)
    gram = np.matmul(P, P.transpose(0, 2, 1))
    dist = sq[:, :, None] + sq[:, None, :] - 2.0 * gram
    np.maximum(dist, 0.0, out=dist)
    np.sqrt(dist, out=dist)

    rows = np.arange(n)
    in_set = np.zeros((n, r), dtype=bool)
    in_set[:, 0] = True
    best = dist[:, 0, :].copy()
    best[:, 0] = np.inf
    total = np.zeros(n)
    for i in range(1, r):
        nxt = np.argmin(best, axis=1)
        cost = best[rows, nxt]
        weight = 2.0 * (r - i) / (r * (r - 1))
        total += weight * cost
        in_set[rows, nxt] = True
        np.minimum(best, dist[rows, nxt], out=best)
        best[in_set] = np.inf
    return total


class COF(BaseDetector):
    """Connectivity-based outlier factor.

    Parameters
    ----------
    n_neighbors : int
        Neighbourhood size ``k``.
    contamination : float
        See :class:`BaseDetector`.
    engine : {'vectorized', 'reference'}
        Batched chaining (default) or the per-row loop; identical scores.
    """

    def __init__(self, n_neighbors: int = 20, contamination: float = 0.1,
                 engine: str = "vectorized"):
        super().__init__(contamination=contamination)
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        self.n_neighbors = n_neighbors
        self.engine = engine
        self._X_train = None
        self._train_ac_dist = None
        self._train_neighbors = None

    def _effective_k(self) -> int:
        return min(self.n_neighbors, self._X_train.shape[0] - 1)

    def _ac_dists(self, X: np.ndarray, reference: np.ndarray,
                  idx: np.ndarray) -> np.ndarray:
        """Average chaining distance of every row's SBN-path."""
        if self.engine == "reference":
            ac = np.empty(X.shape[0])
            for i in range(X.shape[0]):
                path_points = np.vstack([X[i:i + 1], reference[idx[i]]])
                ac[i] = _average_chaining_distance(path_points)
            return ac
        n = X.shape[0]
        r = idx.shape[1] + 1
        ac = np.empty(n)
        # Row blocks bound the (block, r, r) neighborhood distance
        # tensors at ~2^22 elements; rows chain independently, so
        # blocking cannot change any row's result.
        block = max(1, _BLOCK_ELEMENTS // (r * r))
        for start in range(0, n, block):
            stop = min(start + block, n)
            P = np.concatenate([X[start:stop, None, :],
                                reference[idx[start:stop]]], axis=1)
            ac[start:stop] = _batched_chaining_distances(P)
        return ac

    def _fit(self, X):
        self._X_train = X.copy()
        k = self._effective_k()
        _, idx = cached_kneighbors(X, X, k, exclude_self=True)
        ac = self._ac_dists(X, X, idx)
        self._train_ac_dist = np.maximum(ac, 1e-12)
        self._train_neighbors = idx
        neighbor_ac = self._train_ac_dist[idx]
        return ac * k / neighbor_ac.sum(axis=1)

    def _decision_function(self, X):
        k = self._effective_k()
        _, idx = cached_kneighbors(X, self._X_train, k)
        ac = self._ac_dists(X, self._X_train, idx)
        neighbor_ac = self._train_ac_dist[idx].sum(axis=1)
        return ac * k / np.maximum(neighbor_ac, 1e-12)

    def set_state(self, state: dict) -> "COF":
        super().set_state(state)
        # Artifacts saved by repro <= 1.2 predate the engine parameter.
        self.__dict__.setdefault("engine", "vectorized")
        return self
