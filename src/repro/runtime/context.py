"""RunContext: one scoped, immutable execution configuration.

Before this module, run configuration was three mechanisms that could not
see each other: a process-global kernel thread count
(``repro.kernels.threading``), an ``n_jobs`` argument threaded by hand
through the experiment harness, and environment variables read mid-
computation wherever a consumer happened to need them.  A
:class:`RunContext` replaces all of that with a single first-class value
holding the run's **seed policy, thread budget, job budget, cache
enablement, and dtype default** — scoped with a context manager,
serialisable into artifact manifests and cache metadata, and resolved
everywhere through one order:

    explicit argument  >  active context  >  environment variable  >  default

Environment variables (``REPRO_NUM_THREADS``, ``REPRO_BENCH_JOBS``,
``REPRO_BENCH_CACHE``, ``REPRO_FAULTS``) are read **only** inside
:meth:`RunContext.from_env` — one audited construction site instead of
ad-hoc reads scattered through consumers.  A constructed context freezes
the values it was built from; fully-unconfigured resolution consults the
environment (through a fresh ``from_env``) at each resolution point.

Scoping rules
-------------
``with RunContext(num_threads=2):`` pushes a context for the current
thread; on exit (normal or exceptional) the previous configuration is
restored exactly.  Nested scoped contexts merge: fields left ``None``
inherit from the enclosing scoped context.  :func:`configure` (which
backs the legacy ``repro.kernels.set_num_threads``) maintains a
process-global base context underneath every scope: fields a scoped
context leaves ``None`` fall through to the **live** base at resolution
time, so entering a scope never freezes unrelated global configuration.
Contexts do **not** leak into raw threads — they propagate through
:class:`repro.runtime.Executor` and :func:`repro.runtime.start_worker`,
which capture the creating thread's scoped context and re-activate it in
their workers (splitting the thread budget cooperatively).

None of these knobs ever changes results — only wall-clock time and
provenance metadata.  The ``seed`` field is the one exception by design:
it supplies the *default* seed for components whose ``random_state`` was
left unset, pinning otherwise-entropy-seeded runs.
"""

from __future__ import annotations

import os
import threading

from repro.api.params import ParamsMixin

__all__ = [
    "RunContext",
    "active_context",
    "configure",
    "configured_context",
    "current_context",
    "describe",
    "resolve_cache_dir",
    "resolve_cache_enabled",
    "resolve_dtype",
    "resolve_faults",
    "resolve_n_jobs",
    "resolve_num_threads",
    "resolve_seed",
    "resolved",
    "snapshot",
]

_FIELDS = ("seed", "num_threads", "n_jobs", "cache", "cache_dir", "dtype",
           "faults")
_DTYPES = ("float32", "float64")

_lock = threading.Lock()
_base: "RunContext | None" = None  # process-global configured base
_tls = threading.local()  # per-thread stack of entered contexts


def _tls_stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def _parse_positive_int(raw) -> int | None:
    """``None`` for missing/blank/unparseable values (resolution falls
    through to the next source); parseable values clamp to >= 1 — a
    user pinning ``REPRO_NUM_THREADS=0`` means "as little as possible",
    which must resolve to 1, never fall through to the CPU count."""
    if raw is None:
        return None
    raw = str(raw).strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return max(1, value)


class RunContext(ParamsMixin):
    """Immutable, scoped execution configuration.

    Parameters
    ----------
    seed : int or None
        Default seed for components whose ``random_state`` is unset
        (``None`` keeps today's fresh-entropy behaviour).  The one field
        that *does* affect results — that is its purpose.
    num_threads : int or None
        Thread budget for the shared distance kernels (and anything else
        consulting :func:`resolve_num_threads`).  An executor splits this
        budget across its workers.  Never changes results.
    n_jobs : int or None
        Worker budget for fan-out work (``ExperimentRunner`` grids).
        Never changes results.
    cache : bool or None
        Neighbor-kernel cache enablement (``None`` -> enabled).  Never
        changes results (cached graphs are bit-equal to direct queries).
    cache_dir : str or None
        Default directory for the on-disk experiment result cache
        (``REPRO_BENCH_CACHE`` is the environment equivalent).
    dtype : {'float32', 'float64'} or None
        Default training precision for components whose ``dtype`` is
        unset (``None`` -> float32, the historical default).
    faults : str or None
        Fault-injection plan for chaos testing (``REPRO_FAULTS`` is the
        environment equivalent; see :mod:`repro.resilience.faults` for
        the grammar).  ``None`` — the production default — means no
        injection: every hook is a no-op.  Like ``seed``, this field
        deliberately changes *behaviour* (it injects failures), but the
        standing bar still holds: scores that survive the injected
        faults are exactly equal to fault-free scores.

    All fields default to ``None`` — "inherit from the enclosing
    context, then the environment, then the built-in default".  The
    instance is immutable after construction; build variants with
    :meth:`derive`.
    """

    def __init__(self, seed=None, num_threads=None, n_jobs=None,
                 cache=None, cache_dir=None, dtype=None, faults=None):
        object.__setattr__(self, "_building", True)
        try:
            if seed is not None:
                seed = int(seed)
            if num_threads is not None:
                num_threads = int(num_threads)
                if num_threads < 1:
                    raise ValueError(
                        f"num_threads must be >= 1, got {num_threads}")
            if n_jobs is not None:
                n_jobs = int(n_jobs)
                if n_jobs < 1:
                    raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
            if cache is not None:
                cache = bool(cache)
            if cache_dir is not None:
                cache_dir = os.fspath(cache_dir)
            if dtype is not None:
                dtype = str(dtype)
                if dtype not in _DTYPES:
                    raise ValueError(
                        f"dtype must be one of {_DTYPES}, got {dtype!r}")
            if faults is not None:
                faults = str(faults)
                if not faults.strip():
                    faults = None
            self.seed = seed
            self.num_threads = num_threads
            self.n_jobs = n_jobs
            self.cache = cache
            self.cache_dir = cache_dir
            self.dtype = dtype
            self.faults = faults
        finally:
            object.__setattr__(self, "_building", False)

    # -- immutability ------------------------------------------------------
    def __setattr__(self, name, value):
        if name.startswith("_") or getattr(self, "_building", False):
            object.__setattr__(self, name, value)
            return
        raise AttributeError(
            f"RunContext is immutable; use derive({name}=...) to build a "
            f"modified copy"
        )

    def set_params(self, **params) -> "RunContext":
        """Refused: the ParamsMixin re-init path would mutate in place,
        silently changing resolution for every scope holding this
        instance (and breaking its value-based hash).  Build a modified
        copy with :meth:`derive` instead."""
        raise TypeError(
            "RunContext is immutable; use derive(...) to build a "
            "modified copy"
        )

    def __eq__(self, other):
        if not isinstance(other, RunContext):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(tuple(getattr(self, f) for f in _FIELDS))

    # -- construction ------------------------------------------------------
    @classmethod
    def from_env(cls, environ=None) -> "RunContext":
        """The context described by the environment.

        The **only** place the runtime reads ``os.environ``: invalid or
        blank values resolve to ``None`` (the next source in the
        resolution order decides, rather than an error mid-run).
        """
        env = os.environ if environ is None else environ
        return cls(
            num_threads=_parse_positive_int(env.get("REPRO_NUM_THREADS")),
            n_jobs=_parse_positive_int(env.get("REPRO_BENCH_JOBS")),
            cache_dir=(env.get("REPRO_BENCH_CACHE") or None),
            faults=(env.get("REPRO_FAULTS") or None),
        )

    @classmethod
    def from_dict(cls, fields: dict) -> "RunContext":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        unknown = set(fields) - set(_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown RunContext field(s) {sorted(unknown)}; "
                f"valid: {list(_FIELDS)}"
            )
        return cls(**fields)

    def derive(self, **overrides) -> "RunContext":
        """A copy with ``overrides`` applied (explicit ``None`` clears)."""
        fields = self.to_dict()
        unknown = set(overrides) - set(_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown RunContext field(s) {sorted(unknown)}; "
                f"valid: {list(_FIELDS)}"
            )
        fields.update(overrides)
        return RunContext(**fields)

    def to_dict(self) -> dict:
        """The configured fields as plain JSON-able values."""
        return {name: getattr(self, name) for name in _FIELDS}

    # -- scoping -----------------------------------------------------------
    def __enter__(self) -> "RunContext":
        # Merge over the enclosing *scoped* context only — the global
        # base is consulted live at resolution time, so configure() /
        # set_num_threads() calls made while a scope is active still
        # take effect for fields the scope leaves None.
        merged = _merge(scoped_context(), self)
        _tls_stack().append(merged)
        return merged

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = _tls_stack()
        if stack:
            stack.pop()
        return False


def _merge(outer: RunContext | None, inner: RunContext) -> RunContext:
    """``inner`` fields win where set; ``None`` fields inherit ``outer``."""
    if outer is None:
        return inner
    fields = {}
    for name in _FIELDS:
        value = getattr(inner, name)
        fields[name] = value if value is not None else getattr(outer, name)
    return RunContext(**fields)


# -- active context ---------------------------------------------------------

def scoped_context() -> RunContext | None:
    """The innermost entered context of this thread (no base merged)."""
    stack = _tls_stack()
    return stack[-1] if stack else None


def active_context() -> RunContext | None:
    """The effective context: this thread's innermost scope over the
    **live** global base, else whichever of the two exists, else
    ``None``."""
    top = scoped_context()
    if top is None:
        return _base
    if _base is None:
        return top
    return _merge(_base, top)


def current_context() -> RunContext:
    """Like :func:`active_context` but never ``None`` (an empty context
    stands in when nothing is configured)."""
    ctx = active_context()
    return ctx if ctx is not None else RunContext()


def configure(**fields) -> RunContext | None:
    """Merge ``fields`` into the process-global base context.

    The programmatic equivalent of exporting an environment variable:
    every thread inherits it unless a scoped context overrides.  A field
    explicitly passed as ``None`` is cleared.  Backs the legacy
    ``repro.kernels.set_num_threads``.
    """
    global _base
    unknown = set(fields) - set(_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown RunContext field(s) {sorted(unknown)}; "
            f"valid: {list(_FIELDS)}"
        )
    with _lock:
        merged = _base.to_dict() if _base is not None else \
            {name: None for name in _FIELDS}
        merged.update(fields)
        if all(value is None for value in merged.values()):
            _base = None
        else:
            _base = RunContext(**merged)
        return _base


def configured_context() -> RunContext | None:
    """The process-global base context set via :func:`configure`."""
    return _base


# -- resolution -------------------------------------------------------------
# One order everywhere: explicit arg > active context > env var > default.

def resolve_num_threads(explicit=None) -> int:
    """Kernel worker-thread budget."""
    if explicit is not None:
        explicit = int(explicit)
        if explicit < 1:
            raise ValueError(f"num_threads must be >= 1, got {explicit}")
        return explicit
    ctx = active_context()
    if ctx is not None and ctx.num_threads is not None:
        return ctx.num_threads
    env = RunContext.from_env().num_threads
    if env is not None:
        return env
    return max(1, os.cpu_count() or 1)


def resolve_n_jobs(explicit=None) -> int:
    """Worker-process budget for fan-out grids."""
    if explicit is not None:
        explicit = int(explicit)
        if explicit < 1:
            raise ValueError(f"n_jobs must be >= 1, got {explicit}")
        return explicit
    ctx = active_context()
    if ctx is not None and ctx.n_jobs is not None:
        return ctx.n_jobs
    env = RunContext.from_env().n_jobs
    if env is not None:
        return env
    return 1


def resolve_seed(explicit=None):
    """Default seed for unseeded components (``None`` = fresh entropy)."""
    if explicit is not None:
        return explicit
    ctx = active_context()
    if ctx is not None:
        return ctx.seed
    return None


def resolve_cache_enabled(explicit=None) -> bool:
    """Neighbor-kernel cache enablement (default: enabled)."""
    if explicit is not None:
        return bool(explicit)
    ctx = active_context()
    if ctx is not None and ctx.cache is not None:
        return ctx.cache
    return True


def resolve_cache_dir(explicit=None):
    """Experiment result-cache directory (``None`` = caching off)."""
    if explicit is not None:
        return explicit
    ctx = active_context()
    if ctx is not None and ctx.cache_dir is not None:
        return ctx.cache_dir
    return RunContext.from_env().cache_dir


def resolve_faults(explicit=None):
    """Fault-injection plan spec (``None`` = no injection).

    Unlike the other knobs this one is consulted on hot paths (every
    request hook), so consumers should go through
    :func:`repro.resilience.faults.active_injector`, which caches the
    compiled plan per spec string.
    """
    if explicit is not None:
        explicit = str(explicit)
        return explicit if explicit.strip() else None
    ctx = active_context()
    if ctx is not None and ctx.faults is not None:
        return ctx.faults
    return RunContext.from_env().faults


def resolve_dtype(explicit=None) -> str:
    """Default training precision (historical default: float32)."""
    if explicit is not None:
        explicit = str(explicit)
        if explicit not in _DTYPES:
            raise ValueError(
                f"dtype must be one of {_DTYPES}, got {explicit!r}")
        return explicit
    ctx = active_context()
    if ctx is not None and ctx.dtype is not None:
        return ctx.dtype
    return "float32"


# -- introspection ----------------------------------------------------------

def resolved() -> dict:
    """Every field fully resolved (context + environment + defaults)."""
    return {
        "seed": resolve_seed(),
        "num_threads": resolve_num_threads(),
        "n_jobs": resolve_n_jobs(),
        "cache": resolve_cache_enabled(),
        "cache_dir": resolve_cache_dir(),
        "dtype": resolve_dtype(),
        "faults": resolve_faults(),
    }


def snapshot() -> dict:
    """The configured context plus its resolution, for manifests and
    cache metadata: a saved model or cached sweep cell states exactly
    how it was produced."""
    return {"context": current_context().to_dict(), "resolved": resolved()}


_DEFAULTS = {"seed": None, "num_threads": "cpu count", "n_jobs": 1,
             "cache": True, "cache_dir": None, "dtype": "float32",
             "faults": None}


def describe() -> list:
    """Per-field ``{field, value, source}`` rows for ``repro
    runtime-info``: which layer of the resolution order decided each
    value."""
    ctx = current_context()
    env = RunContext.from_env()
    values = resolved()
    rows = []
    for name in _FIELDS:
        if getattr(ctx, name) is not None:
            source = "context"
        elif getattr(env, name, None) is not None:
            source = "env"
        else:
            source = "default"
        rows.append({"field": name, "value": values[name], "source": source})
    return rows
