"""Pluggable executors with deterministic ordering and budget splitting.

:class:`Executor` is the single fan-out primitive of the repo: the
experiment grid, the chunked distance kernels, and the scoring service
all execute through it instead of constructing their own
``concurrent.futures`` pools.  Three backends share one contract:

* ``serial`` — the plain loop (also the reference semantics);
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; right
  for GIL-releasing work (BLAS blocks) and cheap fan-out;
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  right for independent, picklable cells (experiment grids).

Two invariants make backends interchangeable:

**Deterministic ordering** — :meth:`Executor.map` returns results keyed
by *submission index*, never completion order, so any backend (and any
worker count) produces the identical result list.

**Cooperative budgeting** — each mapped task runs inside a derived
:class:`~repro.runtime.context.RunContext` whose thread budget is the
parent's split across the workers (``max(1, budget // workers)``): an
``n_jobs=4`` grid on 8 cores automatically gives each worker 2 kernel
threads instead of oversubscribing ``4 x 8`` GEMM threads, and a nested
executor inside a worker sees the shrunken budget and splits *that*.
The context is pushed/popped around every task (``finally``-guarded), so
worker failures can never leak configuration; process workers receive
the serialized context and activate it before running the task.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)

from repro.runtime.context import (
    RunContext,
    _tls_stack,
    current_context,
    resolve_num_threads,
    scoped_context,
)

__all__ = ["BACKENDS", "Executor", "map_blocks", "start_process",
           "start_worker"]

BACKENDS = ("serial", "thread", "process")


def _process_task(ctx_fields: dict, fn, item):
    """Run one task in a pool worker under the shipped context."""
    with RunContext(**ctx_fields):
        return fn(item)


class Executor:
    """Backend-pluggable deterministic ``map`` over independent tasks.

    Parameters
    ----------
    backend : {'serial', 'thread', 'process'}
    max_workers : int or None
        Worker budget; ``None`` resolves the active context's thread
        budget (``thread``), job budget (``process``), or 1 (``serial``).
    worker_threads : int or None
        Explicit per-worker kernel-thread budget.  ``None`` (default)
        splits the parent budget cooperatively: each worker gets
        ``max(1, resolve_num_threads() // workers)``.
    """

    def __init__(self, backend: str = "serial", max_workers=None,
                 worker_threads=None):
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}")
        if max_workers is None:
            if backend == "thread":
                max_workers = resolve_num_threads()
            elif backend == "process":
                from repro.runtime.context import resolve_n_jobs

                max_workers = resolve_n_jobs()
            else:
                max_workers = 1
        max_workers = int(max_workers)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if worker_threads is not None:
            worker_threads = int(worker_threads)
            if worker_threads < 1:
                raise ValueError(
                    f"worker_threads must be >= 1, got {worker_threads}")
        self.backend = backend
        self.max_workers = max_workers
        self.worker_threads = worker_threads

    def _worker_context(self, n_workers: int) -> RunContext:
        """The context every task runs under: the caller's context with
        the thread budget split across (or pinned per) workers.

        Thread/serial workers carry only the caller's *scoped* fields —
        the process-global base stays a live fallback, so configure()
        calls keep working under them.  Process workers get the fully
        merged context baked in (the child process has no base).  The
        budget is split only when workers actually run concurrently:
        serial (and single-worker) execution keeps the full budget, one
        task at a time.
        """
        if self.backend == "process":
            ctx = current_context()
        else:
            ctx = scoped_context() or RunContext()
        if self.worker_threads is not None:
            return ctx.derive(num_threads=self.worker_threads)
        if self.backend == "serial" or n_workers <= 1:
            return ctx
        budget = resolve_num_threads()
        return ctx.derive(num_threads=max(1, budget // n_workers))

    def map(self, fn, items, on_result=None) -> list:
        """``[fn(item) for item in items]``, possibly in parallel.

        Results are keyed by submission index — identical to the serial
        loop for every backend and worker count.  ``on_result(index,
        result)`` fires from the coordinating thread as each task
        finishes (completion order — the hook for progress reporting and
        incremental cache writes).  The first task exception propagates
        after the pool drains; remaining results are discarded.
        """
        items = list(items)
        if not items:
            return []
        workers = min(self.max_workers, len(items))
        ctx = self._worker_context(workers)

        if self.backend == "serial" or workers == 1:
            results = []
            for index, item in enumerate(items):
                with ctx:
                    result = fn(item)
                results.append(result)
                if on_result is not None:
                    on_result(index, result)
            return results

        results = [None] * len(items)
        if self.backend == "thread":
            def run(item):
                with ctx:
                    return fn(item)

            with ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-exec") as pool:
                futures = {pool.submit(run, item): index
                           for index, item in enumerate(items)}
                for future in as_completed(futures):
                    index = futures[future]
                    results[index] = future.result()
                    if on_result is not None:
                        on_result(index, results[index])
            return results

        # process backend: ship the derived context; workers activate it
        # before running the (picklable, module-level) task function.
        ctx_fields = ctx.to_dict()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_process_task, ctx_fields, fn, item): index
                for index, item in enumerate(items)
            }
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                if on_result is not None:
                    on_result(index, results[index])
        return results


def map_blocks(fn, blocks) -> None:
    """Run ``fn(block)`` for every block, threading when it can pay off.

    The kernel-side fan-out primitive (chunked distance blocks).  ``fn``
    must write results into preallocated disjoint output slices, so
    completion order is irrelevant and any thread count is bit-identical
    to the serial loop.  Each worker's context carries the split thread
    budget, so a nested ``map_blocks`` inside a block sees budget 1 (or
    its fair share) instead of re-fanning out — cooperative budgeting
    replaces the old re-entrancy guard.

    The pool is per-call: construction costs microseconds against the
    tens-of-milliseconds blocks that justify threading at all, and every
    call observes the current resolved budget exactly.
    """
    blocks = list(blocks)
    if not blocks:
        return
    n_threads = min(resolve_num_threads(), len(blocks))
    if n_threads <= 1 or len(blocks) <= 1:
        for block in blocks:
            fn(block)
        return
    Executor("thread", max_workers=n_threads).map(fn, blocks)


def _process_worker_main(ctx_fields: dict, fn, args, kwargs):
    """Entry point of a spawned worker process: activate the shipped
    context, then run ``fn`` under it for the process's whole lifetime."""
    with RunContext(**ctx_fields):
        fn(*args, **kwargs)


def start_process(fn, *args, name: str | None = None,
                  daemon: bool = True, **kwargs) -> multiprocessing.Process:
    """A long-lived worker process carrying the caller's context.

    The process-side twin of :func:`start_worker` — the sanctioned way to
    spawn a standalone worker process (e.g. a scoring-fleet shard owner)
    instead of constructing one by hand: the caller's fully merged
    :class:`RunContext` (scoped fields over the process-global base — the
    child has no base of its own) is serialized, shipped, and activated
    around ``fn``, exactly like :class:`Executor`'s process backend does
    for its pool workers.  ``fn`` must be a picklable module-level
    callable; the started :class:`multiprocessing.Process` is returned
    for lifecycle management (join / terminate / liveness checks).
    """
    ctx_fields = current_context().to_dict()
    process = multiprocessing.Process(
        target=_process_worker_main, args=(ctx_fields, fn, args, kwargs),
        name=name, daemon=daemon)
    process.start()
    return process


def start_worker(fn, *, name: str | None = None,
                 daemon: bool = True) -> threading.Thread:
    """A long-lived worker thread carrying the caller's context.

    Raw threads do not inherit scoped contexts; this is the sanctioned
    way to start one that does (e.g. the scoring service's micro-batch
    scorer): the creating thread's *scoped* context is captured and
    activated inside the worker for its whole lifetime.  The process-
    global base is deliberately not baked in — it stays a live fallback,
    so a later ``configure()``/``set_num_threads()`` still reaches a
    worker whose creator had no scoped override.
    """
    ctx = scoped_context()

    def run():
        if ctx is not None:
            _tls_stack().append(ctx)
        fn()

    thread = threading.Thread(target=run, name=name, daemon=daemon)
    thread.start()
    return thread
