"""repro.runtime — the unified execution substrate.

One layer answers every "how should this run?" question in the repo:

* :class:`RunContext` — a first-class, scoped, immutable configuration
  value (seed policy, thread budget, job budget, cache enablement,
  dtype default) with a context-manager API and one resolution order:
  **explicit arg > active context > env var > default**.  Spec-
  serialisable via :mod:`repro.api`; recorded into artifact manifests
  and experiment cache metadata (:func:`snapshot`).
* :class:`Executor` — a backend-pluggable (``serial`` / ``thread`` /
  ``process``) deterministic ``map``: results are keyed by submission
  index, and a parent's thread budget is split cooperatively across
  workers, so nested parallelism degrades to sane budgets instead of
  oversubscribing.
* :func:`map_blocks` / :func:`start_worker` / :func:`start_process` —
  the kernel fan-out and long-lived-worker primitives (thread- and
  process-flavoured) built on the same two pieces.

Every knob except ``seed`` is guaranteed results-neutral: backends,
budgets, and caches change wall-clock time and provenance metadata only.

>>> from repro.runtime import RunContext, Executor
>>> with RunContext(num_threads=4, n_jobs=2):
...     Executor("process", max_workers=2).map(cell, specs)  # 2 threads each
"""

from repro.runtime.context import (
    RunContext,
    active_context,
    configure,
    configured_context,
    current_context,
    describe,
    resolve_cache_dir,
    resolve_cache_enabled,
    resolve_dtype,
    resolve_faults,
    resolve_n_jobs,
    resolve_num_threads,
    resolve_seed,
    resolved,
    scoped_context,
    snapshot,
)
from repro.runtime.executor import BACKENDS, Executor, map_blocks, \
    start_process, start_worker

__all__ = [
    "BACKENDS",
    "Executor",
    "RunContext",
    "active_context",
    "configure",
    "configured_context",
    "current_context",
    "describe",
    "map_blocks",
    "resolve_cache_dir",
    "resolve_cache_enabled",
    "resolve_dtype",
    "resolve_faults",
    "resolve_n_jobs",
    "resolve_num_threads",
    "resolve_seed",
    "resolved",
    "scoped_context",
    "snapshot",
    "start_process",
    "start_worker",
]

# RunContext follows the estimator protocol (ParamsMixin + same-named
# attributes), so registering it makes contexts spec-serialisable like
# any other component: to_spec(ctx) / build_spec round-trip.
from repro.api.registry import register_component as _register_component

_register_component(RunContext)
