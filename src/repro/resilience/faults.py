"""Deterministic fault injection for chaos testing.

A **fault plan** is a small spec describing failures to inject at named
sites inside the serving/fleet/harness stack — worker crash at request
``k``, queue submit delay, reply drop, slow score, store read error.
The plan rides on the runtime like every other knob: set the
``RunContext.faults`` field (or ``REPRO_FAULTS``) and every process in
the tree sees it, because :func:`repro.runtime.start_process` serializes
the active context into fleet workers and the environment variable is
inherited by children.  With no plan configured every hook is a
short-circuit no-op, so production paths pay one ``None`` check.

Determinism is the point: the plan's trigger points are either explicit
(``crash@3`` = the 3rd matching request) or drawn from a seeded range
(``crash@2-6`` resolves through the active ``RunContext`` seed), so a
chaos run is exactly reproducible — the same request hits the same
fault every time, which is what lets the chaos suite assert that scores
*after* recovery are ``np.array_equal`` to a fault-free run.

Plan grammar (clauses joined by ``;``)::

    kind@at[xTIMES][:SECONDS][,key=value...]

    crash@3                     worker exits on its 3rd request
    crash@2-6                   ... on a seeded draw from requests 2..6
    delay@1x5:0.05              50 ms submit delay on requests 1-5
    drop@2,model=hbos           drop the reply to the 2nd hbos request
    slow@1:0.2,worker=w0        200 ms slow-score on w0's 1st batch
    error@1,site=store.load     first store read raises InjectedFault

``kind`` picks a default site (overridable with ``site=``):

========  ===================  =========================================
kind      default site         effect when triggered
========  ===================  =========================================
crash     ``worker.request``   ``os._exit`` — a hard worker death
delay     ``queue.submit``     sleep ``SECONDS`` before enqueueing
drop      ``worker.reply``     reply never sent (caller times out)
slow      ``service.score``    sleep ``SECONDS`` inside scoring
error     ``store.load``       raise :class:`InjectedFault` (retryable)
========  ===================  =========================================

Other filter keys (``worker=``, ``model=``) match the keyword context
each hook passes; an entry counts only *matching* events, and ``at`` is
1-based over that count.  A JSON list of entry objects is accepted
wherever the DSL is (spec starting with ``[``).
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np

from repro.runtime import resolve_faults, resolve_seed

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "active_injector",
    "inject",
    "parse_plan",
]

#: Injection sites threaded through the stack.
SITES = ("worker.request", "worker.reply", "queue.submit",
         "service.score", "store.load", "harness.cell")

KINDS = ("crash", "delay", "drop", "slow", "error")

_DEFAULT_SITE = {
    "crash": "worker.request",
    "delay": "queue.submit",
    "drop": "worker.reply",
    "slow": "service.score",
    "error": "store.load",
}

_DEFAULT_SECONDS = 0.05

#: Exit code for injected crashes — distinctive in supervisor logs.
CRASH_EXIT_CODE = 17


class InjectedFault(RuntimeError):
    """A failure manufactured by the fault injector.

    Retryable: injected faults model transient conditions, and the whole
    point of the chaos suite is that retry policies recover from them.
    """

    retryable = True

    def __init__(self, message: str, retry_after: float = 0.05):
        super().__init__(message)
        self.retry_after = retry_after


def _parse_int(raw: str, what: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"fault plan: {what} must be an integer, "
                         f"got {raw!r}") from None
    if value < 1:
        raise ValueError(f"fault plan: {what} must be >= 1, got {value}")
    return value


def _parse_clause(clause: str) -> dict:
    parts = [p.strip() for p in clause.split(",")]
    core, filters = parts[0], parts[1:]
    if "@" not in core:
        raise ValueError(
            f"fault plan clause {clause!r}: expected 'kind@at[...]'")
    kind, _, trigger = core.partition("@")
    kind = kind.strip().lower()
    if kind not in KINDS:
        raise ValueError(
            f"fault plan clause {clause!r}: unknown kind {kind!r} "
            f"(valid: {', '.join(KINDS)})")
    seconds = None
    if ":" in trigger:
        trigger, _, raw = trigger.partition(":")
        try:
            seconds = float(raw)
        except ValueError:
            raise ValueError(f"fault plan clause {clause!r}: bad "
                             f"seconds {raw!r}") from None
    times = 1
    if "x" in trigger:
        trigger, _, raw = trigger.partition("x")
        times = _parse_int(raw, "times")
    trigger = trigger.strip()
    if "-" in trigger:
        lo, _, hi = trigger.partition("-")
        at = (_parse_int(lo, "at range low"), _parse_int(hi, "at range high"))
        if at[0] > at[1]:
            raise ValueError(f"fault plan clause {clause!r}: empty at "
                             f"range {trigger!r}")
    else:
        at = _parse_int(trigger, "at")
    entry = {"kind": kind, "at": at, "times": times, "seconds": seconds,
             "site": None, "filters": {}}
    for item in filters:
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"fault plan clause {clause!r}: filter {item!r} is not "
                f"'key=value'")
        key, _, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if key == "site":
            entry["site"] = value
        else:
            entry["filters"][key] = value
    return entry


def _normalize(entry: dict, index: int) -> dict:
    entry = dict(entry)
    kind = entry.get("kind")
    if kind not in KINDS:
        raise ValueError(f"fault plan entry {index}: unknown kind {kind!r}")
    at = entry.get("at", 1)
    if isinstance(at, (list, tuple)):
        at = (int(at[0]), int(at[1]))
    else:
        at = int(at)
    site = entry.get("site") or _DEFAULT_SITE[kind]
    if site not in SITES:
        raise ValueError(f"fault plan entry {index}: unknown site {site!r} "
                         f"(valid: {', '.join(SITES)})")
    seconds = entry.get("seconds")
    filters = dict(entry.get("filters") or {})
    for key in entry:
        if key not in ("kind", "at", "times", "seconds", "site", "filters"):
            filters[key] = str(entry[key])
    return {
        "kind": kind,
        "site": site,
        "at": at,
        "times": int(entry.get("times", 1) or 1),
        "seconds": float(_DEFAULT_SECONDS if seconds is None else seconds),
        "filters": filters,
    }


def parse_plan(spec) -> list:
    """Parse a plan spec (DSL string, JSON string, or list of dicts)
    into normalized entry dicts; ``[]`` for an empty/blank spec."""
    if spec is None:
        return []
    if isinstance(spec, (list, tuple)):
        raw = list(spec)
    else:
        spec = str(spec).strip()
        if not spec:
            return []
        if spec.startswith("["):
            raw = json.loads(spec)
        else:
            raw = [_parse_clause(c) for c in spec.split(";") if c.strip()]
    return [_normalize(entry, i) for i, entry in enumerate(raw)]


class FaultInjector:
    """A compiled fault plan with per-entry trigger state.

    Parameters
    ----------
    plan : str or list
        Plan spec (see module docstring).
    seed : int or None
        Resolves seeded ``at`` ranges; defaults to the active
        :class:`~repro.runtime.RunContext` seed.  A range with no seed
        resolves to its low end (still deterministic).

    Each entry counts the events matching its site+filters; it fires on
    the ``at``-th through ``at+times-1``-th match.  Counters live in
    *this* process — a restarted fleet worker builds a fresh injector,
    so plan positions are per worker incarnation by design (a crash plan
    would otherwise kill every incarnation at the same request forever).
    """

    def __init__(self, plan, seed=None):
        self.entries = parse_plan(plan)
        self.seed = resolve_seed(seed)
        for index, entry in enumerate(self.entries):
            at = entry["at"]
            if isinstance(at, tuple):
                lo, hi = at
                if self.seed is None:
                    entry["at"] = lo
                else:
                    rng = np.random.default_rng(
                        [int(self.seed) % (2 ** 63), index])
                    entry["at"] = int(rng.integers(lo, hi + 1))
            entry["matched"] = 0
            entry["fired"] = 0
        self._lock = threading.Lock()

    def _triggered(self, site: str, ctx: dict) -> list:
        fired = []
        with self._lock:
            for entry in self.entries:
                if entry["site"] != site:
                    continue
                if any(str(ctx.get(key)) != value
                       for key, value in entry["filters"].items()):
                    continue
                entry["matched"] += 1
                position = entry["matched"]
                if entry["at"] <= position < entry["at"] + entry["times"]:
                    entry["fired"] += 1
                    fired.append(entry)
        return fired

    def apply(self, site: str, **ctx):
        """Run the plan at ``site``; returns ``"drop"`` when a reply
        should be dropped, ``None`` otherwise.  May sleep, raise
        :class:`InjectedFault`, or hard-exit the process (crash)."""
        dropped = None
        for entry in self._triggered(site, ctx):
            kind = entry["kind"]
            if kind in ("delay", "slow"):
                time.sleep(entry["seconds"])
            elif kind == "drop":
                dropped = "drop"
            elif kind == "error":
                raise InjectedFault(
                    f"injected {site} fault"
                    + (f" ({ctx})" if ctx else ""))
            elif kind == "crash":
                # A real crash: no cleanup, no exception propagation —
                # exactly what SIGKILL recovery paths must handle.
                os._exit(CRASH_EXIT_CODE)
        return dropped

    def stats(self) -> list:
        with self._lock:
            return [dict(entry) for entry in self.entries]


# -- process-wide resolution -------------------------------------------------

_cache_lock = threading.Lock()
_injectors: dict = {}


def active_injector() -> FaultInjector | None:
    """The injector for the currently-resolved plan, or ``None``.

    Compiled injectors are cached per ``(plan spec, seed)`` so trigger
    counters accumulate across calls — ``crash@3`` means the 3rd request
    this process handles, not the 3rd request under any one scope.
    """
    spec = resolve_faults()
    if spec is None:
        return None
    seed = resolve_seed()
    key = (spec, seed)
    with _cache_lock:
        injector = _injectors.get(key)
        if injector is None:
            injector = FaultInjector(spec, seed=seed)
            _injectors[key] = injector
        return injector


def clear_injectors() -> None:
    """Drop all cached injectors (test isolation helper)."""
    with _cache_lock:
        _injectors.clear()


def inject(site: str, **ctx):
    """The hook consumers call: a no-op unless a plan is active."""
    injector = active_injector()
    if injector is None:
        return None
    return injector.apply(site, **ctx)
