"""Resilience policies: deadlines, deterministic retry, circuit breakers.

The fleet and the sweep harness *emit* retryable failure signals —
``FleetOverloadedError`` backpressure rejects with a ``retry_after``
hint, ``WorkerCrashedError`` during a restart window — but before this
module nothing consumed them: every caller saw raw exceptions and every
layer carried its own ad-hoc ``timeout`` float.  This module is the
shared vocabulary those consumers now speak:

* :class:`Deadline` — one propagated time budget for an operation tree,
  replacing scattered per-layer timeout floats.  A deadline is *started*
  once and every nested wait clamps to what remains, so a request takes
  at most its budget end to end instead of ``sum(layer timeouts)``.
* :class:`RetryPolicy` — exponential backoff whose jitter is **seeded**:
  the delay for attempt ``k`` is a pure function of ``(seed, k)``, with
  the seed resolving through the active :class:`~repro.runtime.RunContext`
  (explicit arg > policy field > context seed), so retry schedules are
  bit-reproducible exactly like scores.  Server ``retry_after`` hints
  are honoured as a floor, never ignored.
* :class:`CircuitBreaker` — consecutive-failure trip wire with the
  classic closed / open / half-open state machine and metrics counters,
  so a caller stops hammering a peer that is demonstrably down and
  probes it gently instead.

All three are :class:`~repro.api.params.ParamsMixin` components, so
policies ``get_params``/``clone``/spec-serialize like every other
configurable object in the repo.

Retryability is a property of the *error*, not the caller: exceptions
carry a ``retryable`` class attribute (see :func:`is_retryable`), and
the fleet/serving errors (``FleetOverloadedError``,
``WorkerCrashedError``, :class:`RequestTimeoutError`,
:class:`CircuitOpenError`, injected faults) opt in explicitly.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.api.params import ParamsMixin
from repro.runtime import resolve_seed

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "RequestTimeoutError",
    "RetryPolicy",
    "is_retryable",
]

#: Circuit-breaker states, in trip order.
BREAKER_STATES = ("closed", "open", "half_open")


class DeadlineExceededError(RuntimeError):
    """The operation's time budget ran out.

    Non-retryable by definition: retrying cannot manufacture budget —
    the caller must come back with a fresh deadline.
    """

    retryable = False


class RequestTimeoutError(RuntimeError):
    """A single request exceeded its wait bound while the worker stayed
    alive.

    Distinct from ``WorkerCrashedError`` on purpose: a slow reply means
    the worker is overloaded or the reply was lost, not that the shard
    is down — breakers and retry policies must be able to tell slow from
    dead (the HTTP layer maps this to 504, a crash to 503).  Retryable:
    the request can be re-issued, typically to a ring successor.
    """

    retryable = True

    def __init__(self, message: str, retry_after: float = 0.5,
                 worker_id=None):
        super().__init__(message)
        self.retry_after = retry_after
        self.worker_id = worker_id


class CircuitOpenError(RuntimeError):
    """Rejected locally: the target's circuit breaker is open.

    Retryable after ``retry_after`` (the breaker's remaining reset
    window) — the half-open probe will decide whether the target is
    back.
    """

    retryable = True

    def __init__(self, message: str, retry_after: float = 0.5):
        super().__init__(message)
        self.retry_after = retry_after


def is_retryable(exc: BaseException) -> bool:
    """True if ``exc`` declares itself safe to retry.

    The convention: transient conditions (backpressure rejects, crash
    windows, request timeouts, open breakers, injected faults) carry a
    ``retryable = True`` class attribute; everything else — including
    genuine model/user errors like ``KeyError`` and ``ValueError`` — is
    final.
    """
    return bool(getattr(exc, "retryable", False))


class Deadline(ParamsMixin):
    """A propagated time budget: one bound for a whole operation tree.

    Parameters
    ----------
    budget : float
        Seconds the operation may take end to end.  The countdown arms
        on :meth:`start` (or lazily on first consultation), so a
        constructed-but-unused deadline costs nothing.

    A started deadline is consulted, never reset: pass it down the call
    stack and let every nested wait bound itself with :meth:`clamp`.
    """

    def __init__(self, budget: float):
        budget = float(budget)
        if budget <= 0:
            raise ValueError(f"budget must be > 0, got {budget}")
        self.budget = budget
        self._expires_at = None

    @classmethod
    def after(cls, budget: float) -> "Deadline":
        """A deadline already counting down from now."""
        return cls(budget).start()

    @classmethod
    def coerce(cls, value) -> "Deadline | None":
        """Normalise ``None`` / seconds / ``Deadline`` into a started
        deadline (or ``None`` for no bound)."""
        if value is None:
            return None
        if isinstance(value, Deadline):
            return value.start()
        return cls.after(float(value))

    def start(self) -> "Deadline":
        """Arm the countdown (idempotent); returns ``self``."""
        if self._expires_at is None:
            self._expires_at = time.monotonic() + self.budget
        return self

    def remaining(self) -> float:
        """Seconds left (>= 0.0); arms the countdown on first call."""
        self.start()
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget:g}s deadline")

    def clamp(self, timeout: float) -> float:
        """``timeout`` bounded by what remains of the budget.

        The glue that replaces per-layer timeout floats: each nested
        wait asks for its usual bound and receives no more than the
        operation has left.
        """
        return min(float(timeout), self.remaining())

    def __repr__(self) -> str:
        if self._expires_at is None:
            return f"Deadline(budget={self.budget!r})"
        return (f"Deadline(budget={self.budget!r}, "
                f"remaining={self.remaining():.3f})")


class RetryPolicy(ParamsMixin):
    """Deterministic exponential backoff with seeded jitter.

    Parameters
    ----------
    max_attempts : int
        Total tries, including the first (1 = no retries).
    base_delay : float
        Backoff before the first retry, in seconds.
    multiplier : float
        Exponential growth factor per attempt.
    max_delay : float
        Cap on the un-jittered backoff.
    jitter : float
        Jitter fraction: the delay is scaled by ``1 + jitter * u`` with
        ``u ~ U[0, 1)`` drawn deterministically from the seed — spread
        without sacrificing reproducibility.
    seed : int or None
        Jitter seed.  ``None`` resolves through the active
        :class:`~repro.runtime.RunContext` seed (the same policy that
        pins every other unseeded component); if that is also unset the
        jitter draws fresh entropy.

    The delay for attempt ``k`` is a **pure function** of
    ``(seed, k)`` — no mutable generator state — so concurrent callers
    sharing one policy observe identical schedules and a schedule is
    reproducible from the ``RunContext`` seed alone.
    """

    def __init__(self, max_attempts: int = 4, base_delay: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 2.0,
                 jitter: float = 0.1, seed=None):
        max_attempts = int(max_attempts)
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = None if seed is None else int(seed)

    def _resolve_seed(self, explicit=None):
        if explicit is not None:
            return int(explicit)
        if self.seed is not None:
            return self.seed
        return resolve_seed()

    def delay(self, attempt: int, retry_after=None, seed=None) -> float:
        """Backoff before retry number ``attempt`` (0-based).

        A server-supplied ``retry_after`` hint is a *floor*: the policy
        never comes back earlier than the peer asked, and still applies
        its own (possibly larger) backoff.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        backoff = min(self.max_delay,
                      self.base_delay * self.multiplier ** attempt)
        if self.jitter > 0 and backoff > 0:
            resolved = self._resolve_seed(seed)
            if resolved is None:
                u = np.random.default_rng().random()
            else:
                # Seed entries must be non-negative; fold the attempt in
                # so each retry draws an independent-but-reproducible u.
                rng = np.random.default_rng(
                    [resolved % (2 ** 63), int(attempt)])
                u = rng.random()
            backoff *= 1.0 + self.jitter * u
        if retry_after is not None:
            backoff = max(backoff, float(retry_after))
        return backoff

    def schedule(self, n: int | None = None, seed=None) -> tuple:
        """The first ``n`` retry delays (default: every retry this policy
        would make) — the reproducibility surface the chaos tests pin."""
        if n is None:
            n = self.max_attempts - 1
        return tuple(self.delay(a, seed=seed) for a in range(n))

    def call(self, fn, *, deadline: Deadline | None = None,
             retryable=None, sleep=time.sleep, on_retry=None, seed=None):
        """Run ``fn()`` under this policy.

        Retries only errors ``retryable(exc)`` accepts (default:
        :func:`is_retryable`), honouring each error's ``retry_after``
        hint and the operation ``deadline``: a retry whose backoff would
        outlive the remaining budget re-raises immediately instead of
        sleeping into certain failure.  ``on_retry(attempt, exc, delay)``
        is the observability hook.
        """
        retryable = is_retryable if retryable is None else retryable
        attempt = 0
        while True:
            try:
                return fn()
            except Exception as exc:
                if attempt + 1 >= self.max_attempts or not retryable(exc):
                    raise
                pause = self.delay(
                    attempt, retry_after=getattr(exc, "retry_after", None),
                    seed=seed)
                if deadline is not None and pause >= deadline.remaining():
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc, pause)
                if pause > 0:
                    sleep(pause)
                attempt += 1


class CircuitBreaker(ParamsMixin):
    """Consecutive-failure trip wire with half-open probing.

    Parameters
    ----------
    failure_threshold : int
        Consecutive failures that open the circuit.
    reset_timeout : float
        Seconds the circuit stays open before probing.
    half_open_max : int
        Concurrent probe calls admitted while half-open.

    States: ``closed`` (all calls pass; failures count), ``open`` (all
    calls rejected with :class:`CircuitOpenError` until ``reset_timeout``
    elapses), ``half_open`` (up to ``half_open_max`` probes pass; one
    success closes the circuit, one failure re-opens it).  Thread-safe;
    every transition and rejection is counted for ``stats()``.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 5.0, half_open_max: int = 1):
        failure_threshold = int(failure_threshold)
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {reset_timeout}")
        half_open_max = int(half_open_max)
        if half_open_max < 1:
            raise ValueError(
                f"half_open_max must be >= 1, got {half_open_max}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = float(reset_timeout)
        self.half_open_max = half_open_max
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = None
        self._probes_inflight = 0
        self._counters = {"successes": 0, "failures": 0, "opened": 0,
                          "rejected": 0, "probes": 0}

    # -- state machine -----------------------------------------------------
    def _tick(self) -> None:
        """open -> half_open once the reset window has elapsed.

        Called under the lock by every public entry point, so the
        transition happens on observation — no timer thread needed.
        """
        if self._state == "open" and \
                time.monotonic() - self._opened_at >= self.reset_timeout:
            self._state = "half_open"
            self._probes_inflight = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._tick()
            return self._state

    def allow(self) -> bool:
        """True if a call may proceed now (reserves a probe slot when
        half-open); counts a rejection otherwise."""
        with self._lock:
            self._tick()
            if self._state == "closed":
                return True
            if self._state == "half_open":
                if self._probes_inflight < self.half_open_max:
                    self._probes_inflight += 1
                    self._counters["probes"] += 1
                    return True
            self._counters["rejected"] += 1
            return False

    def acquire(self, what: str = "call") -> None:
        """:meth:`allow` or raise :class:`CircuitOpenError` with the
        remaining reset window as the ``retry_after`` hint."""
        if self.allow():
            return
        with self._lock:
            remaining = self.reset_timeout
            if self._opened_at is not None:
                remaining = max(
                    0.05, self.reset_timeout
                    - (time.monotonic() - self._opened_at))
        raise CircuitOpenError(
            f"circuit breaker is {self._state} for {what} "
            f"({self._consecutive_failures} consecutive failures)",
            retry_after=round(remaining, 3))

    def record_success(self) -> None:
        with self._lock:
            self._tick()
            self._counters["successes"] += 1
            self._consecutive_failures = 0
            if self._state == "half_open":
                self._probes_inflight = max(0, self._probes_inflight - 1)
            self._state = "closed"
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._tick()
            self._counters["failures"] += 1
            self._consecutive_failures += 1
            if self._state == "half_open" \
                    or self._consecutive_failures >= self.failure_threshold:
                if self._state != "open":
                    self._counters["opened"] += 1
                self._state = "open"
                self._opened_at = time.monotonic()
                self._probes_inflight = 0

    def reset(self) -> None:
        """Force-close the circuit (operational override)."""
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._opened_at = None
            self._probes_inflight = 0

    def stats(self) -> dict:
        with self._lock:
            self._tick()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                **self._counters,
            }
