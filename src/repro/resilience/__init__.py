"""repro.resilience — deadlines, deterministic retry, breakers, chaos.

The failure-handling substrate for the serving fleet and the sweep
harness.  Three policy components (:class:`Deadline`,
:class:`RetryPolicy`, :class:`CircuitBreaker` — all ParamsMixin, all
spec-serialisable) give consumers one vocabulary for "how long", "try
again how", and "stop hammering a dead peer"; a seeded
:class:`FaultInjector` (``RunContext.faults`` / ``REPRO_FAULTS``) makes
failures themselves reproducible so the chaos suite can hold recovery to
the repo's standing determinism bar.

>>> from repro.resilience import RetryPolicy, Deadline
>>> policy = RetryPolicy(max_attempts=3, seed=0)
>>> policy.schedule()            # bit-reproducible backoff delays
(0.056..., 0.102...)
>>> policy.call(flaky_fn, deadline=Deadline.after(2.0))
"""

from repro.resilience.faults import (
    CRASH_EXIT_CODE,
    FaultInjector,
    InjectedFault,
    active_injector,
    clear_injectors,
    inject,
    parse_plan,
)
from repro.resilience.policy import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    RequestTimeoutError,
    RetryPolicy,
    is_retryable,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceededError",
    "FaultInjector",
    "InjectedFault",
    "RequestTimeoutError",
    "RetryPolicy",
    "active_injector",
    "clear_injectors",
    "inject",
    "is_retryable",
    "parse_plan",
]

# Policies follow the estimator protocol, so registering them makes a
# retry/breaker configuration spec-serialisable exactly like a detector:
# to_spec(policy) / build_spec round-trip.
from repro.api.registry import register_component as _register_component

_register_component(Deadline)
_register_component(RetryPolicy)
_register_component(CircuitBreaker)
