"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list-models            the 14 paper models + the extra baselines
list-datasets          the 84-dataset registry with Table III statistics
boost                  fit one detector + UADB booster on one dataset
sweep                  Table IV protocol over a model/dataset grid
variance               the Fig 2 variance-gap analysis
export                 write a registry stand-in to .npz / .csv
"""

from __future__ import annotations

import argparse
import sys

from repro.data.preprocessing import StandardScaler
from repro.data.registry import DATASET_NAMES, dataset_specs, load_dataset
from repro.detectors.registry import (
    ALL_DETECTOR_NAMES,
    DETECTOR_NAMES,
    EXTRA_DETECTOR_NAMES,
    make_detector,
)
from repro.metrics.ranking import auc_roc, average_precision

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UADB (ICDE 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-models", help="list available detectors")

    p = sub.add_parser("list-datasets", help="list the benchmark registry")
    p.add_argument("--category", default=None,
                   help="filter by Table III category")

    p = sub.add_parser("boost", help="boost one detector on one dataset")
    p.add_argument("detector", choices=ALL_DETECTOR_NAMES)
    p.add_argument("dataset", choices=DATASET_NAMES, metavar="dataset")
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--max-samples", type=int, default=600)
    p.add_argument("--max-features", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("sweep", help="Table IV protocol on a grid")
    p.add_argument("--models", nargs="+", default=list(DETECTOR_NAMES))
    p.add_argument("--datasets", nargs="+", required=True)
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--max-samples", type=int, default=400)
    p.add_argument("--max-features", type=int, default=24)
    p.add_argument("--seeds", nargs="+", type=int, default=[0],
                   help="independent repetitions, seed-averaged downstream")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes for the sweep (1 = serial; "
                        "results are identical for any value)")
    p.add_argument("--cache-dir", default=None,
                   help="directory for the on-disk per-cell result cache; "
                        "re-running a sweep reuses finished cells")

    p = sub.add_parser("variance", help="Fig 2 variance-gap analysis")
    p.add_argument("--datasets", nargs="+", default=None)
    p.add_argument("--max-samples", type=int, default=400)

    p = sub.add_parser("export", help="export a stand-in dataset")
    p.add_argument("dataset", choices=DATASET_NAMES, metavar="dataset")
    p.add_argument("path")
    p.add_argument("--format", choices=("npz", "csv"), default="npz")
    p.add_argument("--max-samples", type=int, default=1200)
    p.add_argument("--max-features", type=int, default=64)
    return parser


def _cmd_list_models(args, out) -> int:
    out.write("paper models (Table IV):\n")
    for name in DETECTOR_NAMES:
        out.write(f"  {name}\n")
    out.write("extra baselines:\n")
    for name in EXTRA_DETECTOR_NAMES:
        out.write(f"  {name}\n")
    return 0


def _cmd_list_datasets(args, out) -> int:
    specs = dataset_specs(args.category)
    out.write(f"{'name':<20s} {'anomaly %':>9s} {'n':>8s} {'d':>6s} "
              f"category\n")
    for spec in specs:
        out.write(
            f"{spec.name:<20s} {spec.anomaly_rate * 100:>8.2f}% "
            f"{spec.n_samples:>8d} {spec.n_features:>6d} {spec.category}\n"
        )
    out.write(f"{len(specs)} datasets\n")
    return 0


def _cmd_boost(args, out) -> int:
    from repro.core import UADBooster

    dataset = load_dataset(args.dataset, max_samples=args.max_samples,
                           max_features=args.max_features)
    X = StandardScaler().fit_transform(dataset.X)
    detector = make_detector(args.detector, random_state=args.seed)
    detector.fit(X)
    scores = detector.fit_scores()
    booster = UADBooster(n_iterations=args.iterations,
                         random_state=args.seed)
    booster.fit(X, scores)

    out.write(f"dataset   : {dataset.name} "
              f"(n={dataset.n_samples}, d={dataset.n_features}, "
              f"contamination={dataset.contamination:.3f})\n")
    out.write(f"detector  : {args.detector}  "
              f"AUCROC={auc_roc(dataset.y, scores):.4f}  "
              f"AP={average_precision(dataset.y, scores):.4f}\n")
    out.write(f"UADB      : T={args.iterations}  "
              f"AUCROC={auc_roc(dataset.y, booster.scores_):.4f}  "
              f"AP={average_precision(dataset.y, booster.scores_):.4f}\n")
    return 0


def _cmd_sweep(args, out) -> int:
    from repro.experiments import format_table4, run_grid, table4_summary

    n_cells = len(args.models) * len(args.datasets) * len(args.seeds)
    out.write(
        f"sweep: {len(args.models)} models x {len(args.datasets)} datasets "
        f"x {len(args.seeds)} seeds = {n_cells} cells (jobs={args.jobs})\n")

    def progress(msg):
        out.write("  " + msg + "\n")
        if hasattr(out, "flush"):
            out.flush()

    try:
        results = run_grid(
            detectors=tuple(args.models),
            datasets=tuple(args.datasets),
            seeds=tuple(args.seeds),
            n_iterations=args.iterations,
            max_samples=args.max_samples,
            max_features=args.max_features,
            progress=progress,
            n_jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
    except (ValueError, KeyError) as exc:
        # KeyError: unknown detector/dataset name from the registries.
        msg = exc.args[0] if exc.args else exc
        out.write(f"error: {msg}\n")
        return 2
    out.write(format_table4(table4_summary(results)) + "\n")
    return 0


def _cmd_variance(args, out) -> int:
    from repro.experiments import fig2_variance_gap, format_fig2

    names = tuple(args.datasets) if args.datasets else DATASET_NAMES[::4]
    info = fig2_variance_gap(dataset_names=names,
                             max_samples=args.max_samples)
    out.write(format_fig2(info) + "\n")
    return 0


def _cmd_export(args, out) -> int:
    from repro.data.io import dataset_to_csv, save_dataset

    dataset = load_dataset(args.dataset, max_samples=args.max_samples,
                           max_features=args.max_features)
    if args.format == "npz":
        path = save_dataset(dataset, args.path)
    else:
        path = dataset_to_csv(dataset, args.path)
    out.write(f"wrote {dataset.n_samples}x{dataset.n_features} "
              f"({dataset.n_anomalies} anomalies) to {path}\n")
    return 0


_COMMANDS = {
    "list-models": _cmd_list_models,
    "list-datasets": _cmd_list_datasets,
    "boost": _cmd_boost,
    "sweep": _cmd_sweep,
    "variance": _cmd_variance,
    "export": _cmd_export,
}


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
