"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list-models            the 14 paper models + the 6 extra baselines
                       (``--json`` for machine-readable output)
list-datasets          the 84-dataset registry with Table III statistics
                       (``--json`` for machine-readable output)
boost                  fit one detector + UADB booster on one dataset
                       (``--save DIR`` persists the booster artifact;
                       ``--spec FILE`` builds the source — or a whole
                       pipeline — from a JSON component spec)
sweep                  Table IV protocol over a model/dataset grid
                       (``--spec FILE`` adds spec-defined grid columns)
variance               the Fig 2 variance-gap analysis
export                 write a registry stand-in to .npz / .csv
save                   fit a source detector (name or ``--spec``) and
                       persist it as an artifact
load-score             load a saved artifact and score a dataset with it
serve                  serve saved models over a JSON HTTP API
                       (``--workers N`` boots the sharded scoring fleet)
runtime-info           print the resolved execution context (each field's
                       value and which resolution layer decided it)

The global ``--threads N`` / ``--jobs N`` flags construct a scoped
:class:`repro.runtime.RunContext` (thread budget / job budget) that the
whole command runs under; ``REPRO_NUM_THREADS`` / ``REPRO_BENCH_JOBS``
are the environment equivalents, and the resolution order is always
explicit arg > context > env var > default.  Neither budget ever
changes results.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__
from repro.data.preprocessing import StandardScaler
from repro.data.registry import DATASET_NAMES, dataset_specs, load_dataset
from repro.detectors.registry import (
    ALL_DETECTOR_NAMES,
    DETECTOR_NAMES,
    EXTRA_DETECTOR_NAMES,
    make_detector,
)
from repro.metrics.ranking import auc_roc, average_precision

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UADB (ICDE 2023) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--threads", type=_positive_int, default=None,
                        metavar="N",
                        help="thread budget of the run's RunContext "
                             "(default: REPRO_NUM_THREADS env var, then "
                             "the CPU count); results are identical for "
                             "any value")
    parser.add_argument("--jobs", type=_positive_int, default=None,
                        metavar="N",
                        help="job budget of the run's RunContext — worker "
                             "processes for anything that fans out "
                             "(default: REPRO_BENCH_JOBS env var, then 1); "
                             "results are identical for any value")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-models", help="list available detectors")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable JSON output")

    p = sub.add_parser("list-datasets", help="list the benchmark registry")
    p.add_argument("--category", default=None,
                   help="filter by Table III category")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable JSON output")

    p = sub.add_parser("boost", help="boost one detector on one dataset")
    p.add_argument("detector", nargs="?", choices=ALL_DETECTOR_NAMES,
                   default=None,
                   help="source detector name (omit when using --spec)")
    p.add_argument("dataset", choices=DATASET_NAMES, metavar="dataset")
    p.add_argument("--spec", default=None, metavar="FILE",
                   help="JSON component spec for the source model; a "
                        "Pipeline spec replaces the whole "
                        "scale+detect+boost workflow")
    p.add_argument("--iterations", type=int, default=None,
                   help="UADB iterations T (default 10); with a Pipeline "
                        "spec, overrides the booster step's n_iterations")
    p.add_argument("--max-samples", type=int, default=600)
    p.add_argument("--max-features", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save", default=None, metavar="DIR",
                   help="persist the fitted booster as a model artifact "
                        "(serve it with `repro serve DIR`)")

    p = sub.add_parser("sweep", help="Table IV protocol on a grid")
    p.add_argument("--models", nargs="+", default=None,
                   help="registry detector names (default: the 14 paper "
                        "models, unless --spec supplies the grid)")
    p.add_argument("--spec", action="append", default=None, metavar="FILE",
                   help="JSON component spec to sweep as one grid column "
                        "(repeatable; combines with --models)")
    p.add_argument("--datasets", nargs="+", required=True)
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--max-samples", type=int, default=400)
    p.add_argument("--max-features", type=int, default=24)
    p.add_argument("--seeds", nargs="+", type=int, default=[0],
                   help="independent repetitions, seed-averaged downstream")
    p.add_argument("--cache-dir", default=None,
                   help="directory for the on-disk per-cell result cache "
                        "(default: REPRO_BENCH_CACHE env var); re-running "
                        "a sweep reuses finished cells")
    p.add_argument("--backend", choices=("serial", "thread", "process"),
                   default=None,
                   help="executor backend for pending cells (default: "
                        "process when the job budget exceeds 1; all "
                        "backends return bit-identical results)")
    p.add_argument("--journal", default=None, metavar="FILE",
                   help="fsync'd JSONL crash log: every computed cell is "
                        "appended durably, so a killed sweep can resume")
    p.add_argument("--resume", action="store_true",
                   help="replay --journal before running; journaled cells "
                        "are not recomputed and the final table is "
                        "identical to an uninterrupted run")
    p.add_argument("--retries", type=_positive_int, default=None,
                   metavar="N",
                   help="retry transiently-failing cells up to N attempts "
                        "inside the worker (seeded exponential backoff; "
                        "only errors marked retryable are retried)")

    p = sub.add_parser("variance", help="Fig 2 variance-gap analysis")
    p.add_argument("--datasets", nargs="+", default=None)
    p.add_argument("--max-samples", type=int, default=400)

    p = sub.add_parser("export", help="export a stand-in dataset")
    p.add_argument("dataset", choices=DATASET_NAMES, metavar="dataset")
    p.add_argument("path")
    p.add_argument("--format", choices=("npz", "csv"), default="npz")
    p.add_argument("--max-samples", type=int, default=1200)
    p.add_argument("--max-features", type=int, default=64)

    p = sub.add_parser("save", help="fit a source detector and persist it")
    p.add_argument("detector", nargs="?", choices=ALL_DETECTOR_NAMES,
                   default=None,
                   help="source detector name (omit when using --spec)")
    p.add_argument("dataset", choices=DATASET_NAMES, metavar="dataset")
    p.add_argument("path", metavar="DIR", help="artifact directory to write")
    p.add_argument("--spec", default=None, metavar="FILE",
                   help="JSON component spec for the model to fit and "
                        "save (detector or whole Pipeline)")
    p.add_argument("--max-samples", type=int, default=600)
    p.add_argument("--max-features", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("load-score",
                       help="load a saved artifact and score a dataset")
    p.add_argument("path", metavar="DIR", help="artifact directory to load")
    p.add_argument("dataset", choices=DATASET_NAMES, metavar="dataset")
    p.add_argument("--max-samples", type=int, default=600)
    p.add_argument("--max-features", type=int, default=32)

    p = sub.add_parser("serve", help="serve saved models over HTTP/JSON")
    p.add_argument("path", metavar="DIR",
                   help="one artifact directory, or a directory of them")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--cache-size", type=_positive_int, default=4,
                   help="models kept loaded in the LRU cache (per worker "
                        "in fleet mode)")
    p.add_argument("--no-micro-batch", action="store_true",
                   help="score each request individually (diagnostic; "
                        "micro-batching is the fast default)")
    p.add_argument("--workers", type=_positive_int, default=None,
                   metavar="N",
                   help="fleet mode: N sharded scorer worker processes "
                        "(consistent hashing on model id, supervised "
                        "restarts, backpressure; scores identical to the "
                        "default in-process service)")
    p.add_argument("--request-timeout", type=float, default=None,
                   metavar="SECONDS", dest="request_timeout",
                   help="fleet mode: per-request reply deadline before a "
                        "504 (default 120; lower it when clients retry "
                        "aggressively, e.g. under chaos testing)")
    p = sub.add_parser("runtime-info",
                       help="print the resolved execution context")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable JSON output")

    # --threads/--jobs also parse after the subcommand (`repro sweep
    # --jobs 4 --threads 2`), where users co-locate them; SUPPRESS keeps
    # an absent subcommand flag from clobbering a root-position value.
    for sp in sub.choices.values():
        sp.add_argument("--threads", type=_positive_int,
                        default=argparse.SUPPRESS, metavar="N",
                        help="thread budget (same as the global --threads)")
        sp.add_argument("--jobs", type=_positive_int,
                        default=argparse.SUPPRESS, metavar="N",
                        help="job budget (same as the global --jobs)")
    return parser


def _cmd_list_models(args, out) -> int:
    if args.as_json:
        json.dump({"paper": list(DETECTOR_NAMES),
                   "extra": list(EXTRA_DETECTOR_NAMES)}, out, indent=1)
        out.write("\n")
        return 0
    out.write("paper models (Table IV):\n")
    for name in DETECTOR_NAMES:
        out.write(f"  {name}\n")
    out.write("extra baselines:\n")
    for name in EXTRA_DETECTOR_NAMES:
        out.write(f"  {name}\n")
    return 0


def _cmd_list_datasets(args, out) -> int:
    specs = dataset_specs(args.category)
    if args.as_json:
        json.dump([{"name": spec.name,
                    "anomaly_rate": spec.anomaly_rate,
                    "n_samples": spec.n_samples,
                    "n_features": spec.n_features,
                    "category": spec.category} for spec in specs],
                  out, indent=1)
        out.write("\n")
        return 0
    out.write(f"{'name':<20s} {'anomaly %':>9s} {'n':>8s} {'d':>6s} "
              f"category\n")
    for spec in specs:
        out.write(
            f"{spec.name:<20s} {spec.anomaly_rate * 100:>8.2f}% "
            f"{spec.n_samples:>8d} {spec.n_features:>6d} {spec.category}\n"
        )
    out.write(f"{len(specs)} datasets\n")
    return 0


def _build_source(args, out):
    """Resolve the ``detector``/``--spec`` pair into a built component.

    Returns ``(model, label)`` or ``(None, None)`` after printing an
    error.  The model may be any spec-built component; callers decide
    which contracts they accept.
    """
    from repro.api import SpecError, build_spec, load_spec

    if (args.detector is None) == (args.spec is None):
        out.write("error: pass exactly one of a detector name or "
                  "--spec FILE\n")
        return None, None
    if args.spec is None:
        return (make_detector(args.detector, random_state=args.seed),
                args.detector)
    try:
        spec = load_spec(args.spec)
        model = build_spec(spec, random_state=args.seed)
    except SpecError as exc:
        out.write(f"error: {exc}\n")
        return None, None
    return model, spec["type"]


def _cmd_boost(args, out) -> int:
    from repro.api import Pipeline
    from repro.core import UADBooster

    dataset = load_dataset(args.dataset, max_samples=args.max_samples,
                           max_features=args.max_features)
    model, label = _build_source(args, out)
    if model is None:
        return 2
    out.write(f"dataset   : {dataset.name} "
              f"(n={dataset.n_samples}, d={dataset.n_features}, "
              f"contamination={dataset.contamination:.3f})\n")

    if isinstance(model, Pipeline):
        # A pipeline spec carries its own preprocessing and (optional)
        # booster: fit it on the raw features and report it whole.  An
        # explicit --iterations routes to the booster step so the flag
        # is never silently discarded.
        if args.iterations is not None:
            booster_step = model._booster
            if booster_step is not None:
                booster_step.set_params(n_iterations=args.iterations)
            else:
                out.write("note: --iterations ignored (pipeline spec has "
                          "no booster step)\n")
        model.fit(dataset.X)
        final, data = model, dataset.X
        out.write(f"pipeline  : {label} "
                  f"[{' -> '.join(name for name, _ in model.steps)}]  "
                  f"AUCROC={auc_roc(dataset.y, model.scores_):.4f}  "
                  f"AP={average_precision(dataset.y, model.scores_):.4f}\n")
    elif not hasattr(model, "fit_scores"):
        out.write(f"error: {label} does not follow the source-detector "
                  f"contract (fit(X) + fit_scores)\n")
        return 2
    else:
        iterations = 10 if args.iterations is None else args.iterations
        X = StandardScaler().fit_transform(dataset.X)
        model.fit(X)
        scores = model.fit_scores()
        booster = UADBooster(n_iterations=iterations,
                             random_state=args.seed)
        booster.fit(X, scores)
        final, data = booster, X
        out.write(f"detector  : {label}  "
                  f"AUCROC={auc_roc(dataset.y, scores):.4f}  "
                  f"AP={average_precision(dataset.y, scores):.4f}\n")
        out.write(f"UADB      : T={iterations}  "
                  f"AUCROC={auc_roc(dataset.y, booster.scores_):.4f}  "
                  f"AP={average_precision(dataset.y, booster.scores_):.4f}\n")
    if args.save is not None:
        from repro.serving import save_model

        path = save_model(final, args.save, data=data, extra={
            "detector": label,
            "dataset": args.dataset,
            "seed": args.seed,
            "max_samples": args.max_samples,
            "max_features": args.max_features,
            "aucroc": auc_roc(dataset.y, final.scores_),
            "ap": average_precision(dataset.y, final.scores_),
        })
        out.write(f"saved     : {path} (serve with `repro serve {path}`)\n")
    return 0


def _cmd_save(args, out) -> int:
    from repro.api import Pipeline
    from repro.serving import save_model

    dataset = load_dataset(args.dataset, max_samples=args.max_samples,
                           max_features=args.max_features)
    model, label = _build_source(args, out)
    if model is None:
        return 2
    if isinstance(model, Pipeline):
        X = dataset.X
    elif hasattr(model, "fit_scores"):
        X = StandardScaler().fit_transform(dataset.X)
    else:
        out.write(f"error: {label} does not follow the source-detector "
                  f"contract (fit(X) + fit_scores)\n")
        return 2
    model.fit(X)
    scores = model.fit_scores()
    path = save_model(model, args.path, data=X, extra={
        "detector": label,
        "dataset": args.dataset,
        "seed": args.seed,
        "max_samples": args.max_samples,
        "max_features": args.max_features,
        "aucroc": auc_roc(dataset.y, scores),
        "ap": average_precision(dataset.y, scores),
    })
    out.write(f"saved {label} fitted on {dataset.name} "
              f"(n={dataset.n_samples}, d={dataset.n_features}) to {path}\n")
    return 0


def _cmd_load_score(args, out) -> int:
    from repro.serving import ArtifactError, load_model, read_manifest
    from repro.serving.artifacts import data_fingerprint

    try:
        manifest = read_manifest(args.path)
        model = load_model(args.path)
    except ArtifactError as exc:
        out.write(f"error: {exc}\n")
        return 2
    dataset = load_dataset(args.dataset, max_samples=args.max_samples,
                           max_features=args.max_features)
    # Pipelines carry their own preprocessing and were fitted (and
    # fingerprinted) on raw features; standalone models were fitted on
    # standardised features — mirror what boost/save fed them.
    from repro.api import Pipeline

    if isinstance(model, Pipeline):
        X = dataset.X
    else:
        X = StandardScaler().fit_transform(dataset.X)
    recorded = manifest.get("data_fingerprint")
    if recorded is not None:
        match = data_fingerprint(X) == recorded
        out.write(f"data fingerprint: "
                  f"{'match' if match else 'MISMATCH (scoring anyway)'}\n")
    scores = model.score_samples(X)
    out.write(f"model     : {manifest['kind']} "
              f"(saved by repro {manifest.get('repro_version')})\n")
    out.write(f"dataset   : {dataset.name} "
              f"(n={dataset.n_samples}, d={dataset.n_features})\n")
    out.write(f"scores    : AUCROC={auc_roc(dataset.y, scores):.4f}  "
              f"AP={average_precision(dataset.y, scores):.4f}\n")
    return 0


def _cmd_serve(args, out) -> int:
    from repro.serving import ArtifactError, ModelStore, serve

    try:
        store = ModelStore(args.path)
        ids = store.ids()
    except ArtifactError as exc:
        out.write(f"error: {exc}\n")
        return 2
    if not ids:
        out.write(f"error: no model artifacts under {args.path}\n")
        return 2

    def ready(server):
        host, port = server.server_address[:2]
        mode = f"fleet of {args.workers} workers" if args.workers \
            else "in-process service"
        out.write(f"serving {len(ids)} model(s) at http://{host}:{port} "
                  f"({mode})\n")
        for model_id in ids:
            out.write(f"  {model_id}\n")
        out.write("endpoints: GET /healthz  GET /models  GET /stats  "
                  "POST /score\n")
        if hasattr(out, "flush"):
            out.flush()

    if args.request_timeout is not None and not args.workers:
        out.write("error: --request-timeout requires fleet mode "
                  "(--workers N)\n")
        return 2
    fleet_kwargs = {}
    if args.request_timeout is not None:
        fleet_kwargs["request_timeout"] = args.request_timeout
    try:
        serve(store, host=args.host, port=args.port, ready=ready,
              workers=args.workers,
              cache_size=args.cache_size,
              micro_batch=not args.no_micro_batch,
              **fleet_kwargs)
    except OSError as exc:
        # e.g. port already in use, privileged port, bad host address.
        out.write(f"error: cannot bind {args.host}:{args.port} ({exc})\n")
        return 2
    return 0


def _cmd_sweep(args, out) -> int:
    from repro.api import SpecError, load_spec
    from repro.experiments import format_table4, run_grid, table4_summary

    models = list(args.models) if args.models else []
    for spec_file in args.spec or []:
        try:
            models.append(load_spec(spec_file))
        except SpecError as exc:
            out.write(f"error: {exc}\n")
            return 2
    if not models:
        models = list(DETECTOR_NAMES)
    if args.resume and not args.journal:
        out.write("error: --resume requires --journal FILE\n")
        return 2

    from repro.runtime import resolve_n_jobs

    n_cells = len(models) * len(args.datasets) * len(args.seeds)
    out.write(
        f"sweep: {len(models)} models x {len(args.datasets)} datasets "
        f"x {len(args.seeds)} seeds = {n_cells} cells "
        f"(jobs={resolve_n_jobs()})\n")

    def progress(msg):
        out.write("  " + msg + "\n")
        if hasattr(out, "flush"):
            out.flush()

    try:
        results = run_grid(
            detectors=tuple(models),
            datasets=tuple(args.datasets),
            seeds=tuple(args.seeds),
            n_iterations=args.iterations,
            max_samples=args.max_samples,
            max_features=args.max_features,
            progress=progress,
            cache_dir=args.cache_dir,
            backend=args.backend,
            journal=args.journal,
            resume=args.resume,
            retry=args.retries,
        )
    except (ValueError, KeyError) as exc:
        # KeyError: unknown detector/dataset name from the registries.
        msg = exc.args[0] if exc.args else exc
        out.write(f"error: {msg}\n")
        return 2
    out.write(format_table4(table4_summary(results)) + "\n")
    return 0


def _cmd_variance(args, out) -> int:
    from repro.experiments import fig2_variance_gap, format_fig2

    names = tuple(args.datasets) if args.datasets else DATASET_NAMES[::4]
    info = fig2_variance_gap(dataset_names=names,
                             max_samples=args.max_samples)
    out.write(format_fig2(info) + "\n")
    return 0


def _cmd_export(args, out) -> int:
    from repro.data.io import dataset_to_csv, save_dataset

    dataset = load_dataset(args.dataset, max_samples=args.max_samples,
                           max_features=args.max_features)
    if args.format == "npz":
        path = save_dataset(dataset, args.path)
    else:
        path = dataset_to_csv(dataset, args.path)
    out.write(f"wrote {dataset.n_samples}x{dataset.n_features} "
              f"({dataset.n_anomalies} anomalies) to {path}\n")
    return 0


def _cmd_runtime_info(args, out) -> int:
    from repro.runtime import current_context, describe, resolved

    if args.as_json:
        json.dump({"context": current_context().to_dict(),
                   "resolved": resolved(),
                   "sources": {row["field"]: row["source"]
                               for row in describe()}},
                  out, indent=1)
        out.write("\n")
        return 0
    out.write("resolution order: explicit arg > active context > "
              "env var > default\n")
    out.write(f"{'field':<12s} {'value':<24s} source\n")
    for row in describe():
        value = row["value"]
        shown = "-" if value is None else str(value)
        out.write(f"{row['field']:<12s} {shown:<24s} {row['source']}\n")
    return 0


_COMMANDS = {
    "list-models": _cmd_list_models,
    "list-datasets": _cmd_list_datasets,
    "boost": _cmd_boost,
    "sweep": _cmd_sweep,
    "variance": _cmd_variance,
    "export": _cmd_export,
    "save": _cmd_save,
    "load-score": _cmd_load_score,
    "serve": _cmd_serve,
    "runtime-info": _cmd_runtime_info,
}


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    ``--threads`` / ``--jobs`` construct a scoped
    :class:`repro.runtime.RunContext` the command runs under; on return
    the caller's configuration is restored exactly (the flags never leak
    into process-global state).
    """
    from repro.runtime import RunContext

    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    fields = {}
    if getattr(args, "threads", None) is not None:
        fields["num_threads"] = args.threads
    if getattr(args, "jobs", None) is not None:
        fields["n_jobs"] = args.jobs
    with RunContext(**fields):
        return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
