"""Composable pipeline: transformers + source detector + optional booster.

UADB's deliverable is a *composition* — preprocess the data, fit a source
detector, boost its scores — yet until now that composition lived in
ad-hoc scripts (the CLI standardises by hand, examples re-implement the
same three lines).  :class:`Pipeline` makes it one estimator behind the
standard ``fit`` / ``decision_function`` / ``score_samples`` /
``predict`` contract, so the whole composition clones, specs, persists
(one artifact through :mod:`repro.serving`), and serves exactly like a
single detector.

Steps are ``(name, estimator)`` pairs classified by capability:

* **transformers** — anything with ``transform`` (``StandardScaler``,
  ``MinMaxScaler``); applied in order, fitted on the data they receive;
* **the detector** — a fitted-score source with the
  :class:`~repro.detectors.base.BaseDetector` contract (``fit(X)`` +
  ``score_samples``); exactly one required;
* **an optional booster** — anything fitted as ``fit(X, source_scores)``
  (``UADBooster`` and the Table VI variants); must follow the detector.

``fit`` chains them: transformed features go to the detector, the
detector's training scores seed the booster, and the terminal step
(booster if present, else detector) answers all scoring calls.

Neighbor-based detector steps (KNN / LOF / COF / SOD / ABOD) fit through
the process-wide :mod:`repro.kernels` cache: pipelines whose transformer
steps produce byte-identical features — e.g. several pipelines over the
same ``StandardScaler`` output, or a clone refit — reuse one k-NN graph
instead of rebuilding it per pipeline.
"""

from __future__ import annotations

import inspect

import numpy as np

from repro.api.params import ParamsMixin
from repro.utils.validation import check_fitted

__all__ = ["Pipeline"]


def _fit_arity(estimator) -> int:
    """Number of data arguments ``estimator.fit`` takes (1=X, 2=X+source)."""
    try:
        signature = inspect.signature(estimator.fit)
    except (TypeError, ValueError):
        return 1
    required = [
        p for p in signature.parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        and p.default is p.empty
    ]
    return len(required)


def _classify(name: str, estimator) -> str:
    if not hasattr(estimator, "fit"):
        raise TypeError(f"step {name!r} ({type(estimator).__name__}) "
                        f"has no fit method")
    if hasattr(estimator, "transform"):
        return "transform"
    if not hasattr(estimator, "score_samples"):
        raise TypeError(
            f"step {name!r} ({type(estimator).__name__}) is neither a "
            f"transformer (transform), a detector (fit(X) + "
            f"score_samples), nor a booster (fit(X, source) + "
            f"score_samples)"
        )
    return "boost" if _fit_arity(estimator) >= 2 else "detect"


class Pipeline(ParamsMixin):
    """Transformer steps, a source detector, and an optional booster.

    Parameters
    ----------
    steps : list of (name, estimator)
        Unique non-empty names (no ``__``, which is reserved for parameter
        routing); bare estimators are auto-named after their class.  Order
        must be transformers first, then the detector, then (optionally)
        the booster.

    Attributes
    ----------
    scores_ : ndarray
        Training-set anomaly scores of the terminal step after ``fit``.
    named_steps : dict
        Step name -> estimator.

    Examples
    --------
    >>> pipe = Pipeline([
    ...     ("scaler", StandardScaler()),
    ...     ("detector", IForest(random_state=0)),
    ...     ("booster", UADBooster(random_state=0)),
    ... ]).fit(X)
    >>> pipe.score_samples(X_new)          # boosted scores in [0, 1]
    """

    def __init__(self, steps):
        steps = list(steps)
        if not steps:
            raise ValueError("Pipeline needs at least one step")
        normalized = []
        for item in steps:
            if isinstance(item, (tuple, list)) and len(item) == 2:
                name, estimator = item
            else:
                name, estimator = type(item).__name__, item
            if not isinstance(name, str) or not name:
                raise ValueError(f"step name must be a non-empty string, "
                                 f"got {name!r}")
            if "__" in name:
                raise ValueError(
                    f"step name {name!r} must not contain '__' (reserved "
                    f"for parameter routing)"
                )
            normalized.append((name, estimator))
        names = [name for name, _ in normalized]
        if len(set(names)) != len(names):
            raise ValueError(f"step names must be unique, got {names}")

        roles = [(_classify(name, est), name, est) for name, est in normalized]
        order = [role for role, _, _ in roles]
        detectors = order.count("detect")
        boosters = order.count("boost")
        if detectors != 1:
            raise ValueError(
                f"Pipeline needs exactly one detector step, found "
                f"{detectors} in {names}"
            )
        if boosters > 1:
            raise ValueError(
                f"Pipeline accepts at most one booster step, found "
                f"{boosters} in {names}"
            )
        expected = (["transform"] * order.count("transform") + ["detect"]
                    + ["boost"] * boosters)
        if order != expected:
            raise ValueError(
                f"Pipeline steps must be transformers, then the detector, "
                f"then an optional booster; got roles {order} for {names}"
            )
        self.steps = normalized
        self._roles = order
        self.scores_ = None
        self.run_context_ = None

    # -- structure --------------------------------------------------------
    @property
    def named_steps(self) -> dict:
        return dict(self.steps)

    def __getitem__(self, name: str):
        return self.named_steps[name]

    @property
    def _transformers(self) -> list:
        return [est for role, (_, est) in zip(self._roles, self.steps)
                if role == "transform"]

    @property
    def _detector(self):
        for role, (_, est) in zip(self._roles, self.steps):
            if role == "detect":
                return est
        raise RuntimeError("unreachable: pipeline has no detector")

    @property
    def _booster(self):
        for role, (_, est) in zip(self._roles, self.steps):
            if role == "boost":
                return est
        return None

    @property
    def _terminal(self):
        booster = self._booster
        return booster if booster is not None else self._detector

    def _named_children(self) -> dict:
        # Duck-typed steps (valid for fit/score by capability) are
        # excluded: deep parameter access and __param routing need the
        # full protocol.
        return {name: est for name, est in self.steps
                if isinstance(est, ParamsMixin)}

    def clone(self) -> "Pipeline":
        """A fresh unfitted pipeline with every step cloned.

        Refuses duck-typed steps rather than silently sharing them — a
        "clone" whose step is the same object would let fitting one
        pipeline mutate the other.
        """
        for name, est in self.steps:
            if not isinstance(est, ParamsMixin):
                raise TypeError(
                    f"cannot clone Pipeline: step {name!r} "
                    f"({type(est).__name__}) does not follow the repro "
                    f"estimator protocol (ParamsMixin)"
                )
        return super().clone()

    def set_params(self, **params) -> "Pipeline":
        """Route ``step__param`` keys to steps; bare step names replace
        the step's estimator; ``steps=...`` rebuilds the pipeline.

        Any reconfiguration unfits the pipeline (``scores_`` resets), the
        same contract every protocol estimator follows.
        """
        if not params:
            return self
        names = {name for name, _ in self.steps}
        replacements = {key: params.pop(key) for key in list(params)
                        if key in names}
        if replacements:
            new_steps = [(name, replacements.get(name, est))
                         for name, est in self.steps]
            self.__init__(new_steps)
        super().set_params(**params)
        self.scores_ = None
        self.run_context_ = None
        return self

    # -- estimator contract ----------------------------------------------
    def _transform(self, X) -> np.ndarray:
        Z = X
        for transformer in self._transformers:
            Z = transformer.transform(Z)
        return Z

    def fit(self, X) -> "Pipeline":
        """Fit every step in sequence on unlabelled data.

        The active :class:`repro.runtime.RunContext` governs every step
        (thread budget, cache enablement, seed/dtype defaults) and its
        snapshot is recorded under :attr:`run_context_`, so a fitted —
        and persisted — pipeline states exactly how it was produced.
        """
        from repro.runtime import snapshot

        Z = X
        for transformer in self._transformers:
            Z = transformer.fit(Z).transform(Z)
        detector = self._detector
        detector.fit(Z)
        booster = self._booster
        if booster is not None:
            booster.fit(Z, detector.fit_scores())
            self.scores_ = booster.scores_
        else:
            self.scores_ = detector.fit_scores()
        self.run_context_ = snapshot()
        return self

    def fit_scores(self) -> np.ndarray:
        """Training-set scores of the terminal step, in [0, 1]."""
        check_fitted(self, "scores_")
        return self.scores_

    def score_samples(self, X) -> np.ndarray:
        """Anomaly scores of ``X`` in [0, 1] from the terminal step."""
        check_fitted(self, "scores_")
        return self._terminal.score_samples(self._transform(X))

    def decision_function(self, X) -> np.ndarray:
        """Raw detector scores, or booster scores when a booster is set.

        A booster has no separate raw scale — its [0, 1] output *is* the
        decision function of a boosted pipeline.
        """
        check_fitted(self, "scores_")
        Z = self._transform(X)
        booster = self._booster
        if booster is not None:
            return booster.score_samples(Z)
        return self._detector.decision_function(Z)

    def predict(self, X) -> np.ndarray:
        """Binary labels (1 = anomaly) from the terminal step."""
        check_fitted(self, "scores_")
        return self._terminal.predict(self._transform(X))

    # -- persistence ------------------------------------------------------
    def get_state(self) -> dict:
        """Full pipeline state for :mod:`repro.serving.artifacts`.

        Each step carries its own fitted state through the serving codec,
        so a restored pipeline scores bit-identically.
        """
        return {"steps": self.steps, "scores": self.scores_,
                "run_context": self.run_context_}

    def set_state(self, state: dict) -> "Pipeline":
        self.__init__(state["steps"])
        self.scores_ = state["scores"]
        self.run_context_ = state.get("run_context")
        return self
