"""The estimator protocol: uniform, introspected hyper-parameter access.

Every configurable component in repro (detectors, boosters, the fold
ensemble, scalers, pipelines) follows one convention: ``__init__`` takes
only keyword-able hyper-parameters and stores each under an attribute of
the same name.  :class:`ParamsMixin` turns that convention into a
protocol — ``get_params`` / ``set_params`` / ``clone`` and a params-based
``__repr__`` — by introspecting the ``__init__`` signature, so adopting
the protocol is a mixin inheritance, not per-class boilerplate.

``set_params`` re-runs ``__init__`` with the merged parameters, which
re-validates every value exactly like direct construction and resets any
fitted state (a reconfigured estimator must be refitted).  Nested
parameters route through double underscores, sklearn-style:
``pipeline.set_params(booster__n_iterations=5)``.
"""

from __future__ import annotations

import inspect

__all__ = ["ParamsMixin", "clone", "param_names", "accepts_param",
           "init_defaults"]


def param_names(cls) -> tuple:
    """Hyper-parameter names of ``cls``, from its ``__init__`` signature.

    ``self`` and variadic parameters are excluded; classes following the
    repro convention have neither ``*args`` nor ``**kwargs``.
    """
    try:
        signature = inspect.signature(cls.__init__)
    except (TypeError, ValueError):
        return ()
    return tuple(
        p.name for p in signature.parameters.values()
        if p.name != "self"
        and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
    )


def accepts_param(cls, name: str) -> bool:
    """True if ``cls.__init__`` accepts a parameter called ``name``."""
    return name in param_names(cls)


def init_defaults(cls) -> dict:
    """``{name: default}`` from ``cls.__init__``; required parameters map
    to ``inspect.Parameter.empty``.

    The single source for "is this value a default?" decisions — both the
    params-based ``__repr__`` and :func:`repro.api.spec.to_spec` elide
    default-valued parameters through it.
    """
    try:
        signature = inspect.signature(cls.__init__)
    except (TypeError, ValueError):
        return {}
    return {p.name: p.default for p in signature.parameters.values()
            if p.name != "self"}


def _clone_value(value):
    """Deep-clone estimators inside parameter values; pass the rest through.

    Handles estimators nested in lists/tuples (e.g. a pipeline's
    ``steps``).  Non-estimator values — numbers, strings, rng seeds,
    callables — are shared, matching sklearn's ``clone`` semantics.
    """
    if isinstance(value, ParamsMixin):
        return value.clone()
    if isinstance(value, list):
        return [_clone_value(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_clone_value(item) for item in value)
    return value


def clone(estimator):
    """A fresh unfitted copy of ``estimator`` with the same parameters."""
    if not isinstance(estimator, ParamsMixin):
        raise TypeError(
            f"cannot clone {type(estimator).__name__}: it does not follow "
            f"the repro estimator protocol (ParamsMixin)"
        )
    params = {key: _clone_value(value)
              for key, value in estimator.get_params(deep=False).items()}
    return type(estimator)(**params)


def _values_equal(a, b) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return False


class ParamsMixin:
    """Uniform parameter access for classes storing ``__init__`` args as
    same-named attributes."""

    @classmethod
    def _param_names(cls) -> tuple:
        return param_names(cls)

    def _named_children(self) -> dict:
        """Sub-estimators addressable via ``name__param`` routing.

        By default, every parameter whose value is itself a
        :class:`ParamsMixin`; :class:`~repro.api.pipeline.Pipeline`
        overrides this to expose its named steps.
        """
        return {
            key: value
            for key, value in self.get_params(deep=False).items()
            if isinstance(value, ParamsMixin)
        }

    def get_params(self, deep: bool = True) -> dict:
        """Hyper-parameters as a dict, in ``__init__`` signature order.

        With ``deep=True``, nested estimators additionally contribute
        flattened ``child__param`` entries.
        """
        params = {}
        for name in self._param_names():
            if not hasattr(self, name):
                raise AttributeError(
                    f"{type(self).__name__} breaks the estimator protocol: "
                    f"__init__ parameter {name!r} is not stored as an "
                    f"attribute of the same name"
                )
            params[name] = getattr(self, name)
        if deep:
            for child_name, child in self._named_children().items():
                for sub_name, value in child.get_params(deep=True).items():
                    params[f"{child_name}__{sub_name}"] = value
        return params

    def set_params(self, **params) -> "ParamsMixin":
        """Reconfigure the estimator; returns ``self``.

        Top-level parameters are merged into the current configuration and
        ``__init__`` is re-run, so every value passes the same validation
        as direct construction and fitted state is reset.
        ``child__param`` keys route to the named sub-estimator's own
        ``set_params``.
        """
        if not params:
            return self
        valid = self._param_names()
        direct, nested = {}, {}
        for key, value in params.items():
            name, sep, sub = key.partition("__")
            if sep:
                nested.setdefault(name, {})[sub] = value
            else:
                direct[key] = value
        children = self._named_children()
        for name, sub_params in nested.items():
            child = direct.get(name, children.get(name))
            if child is None:
                raise ValueError(
                    f"{type(self).__name__} has no sub-estimator {name!r} "
                    f"(known: {sorted(children)})"
                )
            child.set_params(**sub_params)
        unknown = [key for key in direct if key not in valid]
        if unknown:
            raise ValueError(
                f"invalid parameter(s) {sorted(unknown)} for "
                f"{type(self).__name__}; valid: {list(valid)}"
            )
        if direct:
            merged = {**self.get_params(deep=False), **direct}
            self.__init__(**merged)
        return self

    def clone(self) -> "ParamsMixin":
        """A fresh unfitted instance with identical hyper-parameters."""
        return clone(self)

    def __repr__(self) -> str:
        try:
            params = self.get_params(deep=False)
        except Exception:
            return f"{type(self).__name__}(...)"
        defaults = init_defaults(type(self))
        shown = []
        for name, value in params.items():
            default = defaults.get(name, inspect.Parameter.empty)
            if default is inspect.Parameter.empty \
                    or not _values_equal(value, default):
                shown.append(f"{name}={value!r}")
        return f"{type(self).__name__}({', '.join(shown)})"
