"""repro.api — the spec-driven estimator protocol and composable pipeline.

One uniform surface for building, configuring, composing, sweeping,
persisting, and serving models:

* :class:`ParamsMixin` — ``get_params`` / ``set_params`` / ``clone`` and
  a params-based ``__repr__``, introspected from ``__init__`` signatures;
  adopted by every detector, the booster(s), the fold ensemble, and the
  scalers.
* :class:`Pipeline` — transformers + source detector + optional booster
  behind the standard ``fit`` / ``decision_function`` / ``score_samples``
  / ``predict`` contract; saves, loads, and serves as one artifact.
* Specs — ``{"type": ..., "params": {...}}`` JSON documents:
  :func:`to_spec` / :func:`build_spec` round-trip any registered
  component (bit-identical scores for integer seeds),
  :func:`canonical_spec` / :func:`spec_key` give stable cache keys, and
  :func:`load_spec` reads spec files for the CLI's ``--spec``.
* The component registry — one ``name -> class`` table behind specs and
  factories; seeding is decided by signature introspection
  (:func:`seeded_construct`), so new components need no bookkeeping.
"""

from repro.api.params import ParamsMixin, accepts_param, clone, param_names
from repro.api.pipeline import Pipeline
from repro.api.registry import (
    COMPONENT_CLASSES,
    component_class,
    component_name,
    make_component,
    register_component,
    seeded_construct,
)
from repro.api.spec import (
    SpecError,
    as_spec,
    build_spec,
    canonical_spec,
    load_spec,
    spec_key,
    to_spec,
)

__all__ = [
    "ParamsMixin",
    "Pipeline",
    "SpecError",
    "COMPONENT_CLASSES",
    "accepts_param",
    "as_spec",
    "build_spec",
    "canonical_spec",
    "clone",
    "component_class",
    "component_name",
    "load_spec",
    "make_component",
    "param_names",
    "register_component",
    "seeded_construct",
    "spec_key",
    "to_spec",
]
