"""Single component registry behind specs, factories, and the CLI.

Maps spec type names onto component classes — every registry detector,
the UADB booster and its Table VI variants, the fold ensemble, the
scalers, and :class:`~repro.api.pipeline.Pipeline`.  One registry serves
:func:`repro.api.spec.build_spec`,
:func:`repro.detectors.registry.make_detector`, and the CLI, so adding a
component is one ``register_component`` call, not edits in four places.

Seeding is decided by signature introspection — a component whose
``__init__`` accepts ``random_state`` gets the caller's seed, the rest
ignore it — replacing the hand-maintained name set the detector factory
used to carry.

Built-in components register lazily on first lookup, keeping this module
import-light and cycle-free.
"""

from __future__ import annotations

from repro.api.params import accepts_param

__all__ = [
    "COMPONENT_CLASSES",
    "register_component",
    "component_class",
    "component_name",
    "make_component",
    "seeded_construct",
]

# name -> class for every spec-buildable component.
COMPONENT_CLASSES: dict = {}
_CLASS_NAMES: dict = {}
_builtins_registered = False


def register_component(cls, name: str | None = None):
    """Register ``cls`` under ``name`` (default: the class name)."""
    key = name or cls.__name__
    existing = COMPONENT_CLASSES.get(key)
    if existing is not None and existing is not cls:
        raise ValueError(f"component name {key!r} already registered")
    COMPONENT_CLASSES[key] = cls
    _CLASS_NAMES.setdefault(cls, key)
    return cls


def _ensure_builtins() -> None:
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    # Imported here, not at module top: detectors.registry itself imports
    # this module for seeded construction.
    from repro.api.pipeline import Pipeline
    from repro.core.booster import UADBooster
    from repro.core.ensemble import FoldEnsemble
    from repro.core.variants import VARIANT_CLASSES
    from repro.data.preprocessing import KFoldSplitter, MinMaxScaler, \
        StandardScaler
    from repro.detectors.registry import DETECTOR_CLASSES

    for name, cls in DETECTOR_CLASSES.items():
        register_component(cls, name)
    for cls in (UADBooster, FoldEnsemble, StandardScaler, MinMaxScaler,
                KFoldSplitter, Pipeline):
        register_component(cls)
    for name, cls in VARIANT_CLASSES.items():
        # Variants keep their Table VI keys ('naive', 'self', ...) as well
        # as their class names, so specs may use either.
        register_component(cls, name)
        register_component(cls)


def component_class(name: str):
    """The class registered under ``name``; raises ``KeyError`` if absent."""
    _ensure_builtins()
    try:
        return COMPONENT_CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown component {name!r}; known: "
            f"{sorted(COMPONENT_CLASSES)}"
        ) from None


def component_name(cls) -> str:
    """The canonical registered name of ``cls``."""
    _ensure_builtins()
    try:
        return _CLASS_NAMES[cls]
    except KeyError:
        raise KeyError(
            f"{cls.__name__} is not a registered component; register it "
            f"with repro.api.register_component"
        ) from None


def seeded_construct(cls, random_state=None, /, **kwargs):
    """Instantiate ``cls``, forwarding ``random_state`` only if accepted.

    The positional-only seed is the *uniform* pathway: deterministic
    components simply never see it.  A ``random_state`` arriving in
    ``kwargs`` is an *explicit pin* — it overrides the uniform seed, and
    pinning one on a component whose constructor lacks the parameter
    raises ``TypeError`` like any other unknown argument (a silently
    dropped seed would let callers believe a run is pinned when it
    is not).
    """
    if accepts_param(cls, "random_state"):
        kwargs.setdefault("random_state", random_state)
    return cls(**kwargs)


def make_component(name: str, random_state=None, /, **kwargs):
    """Build the component registered under ``name``.

    A ``random_state`` keyword is the uniform seed (same as the
    positional form): forwarded where accepted, ignored elsewhere.
    """
    if "random_state" in kwargs:
        random_state = kwargs.pop("random_state")
    return seeded_construct(component_class(name), random_state, **kwargs)
