"""Declarative component specs: build any estimator from a JSON document.

A spec is ``{"type": "<registered name>", "params": {...}}``; parameter
values may themselves be specs (a pipeline nests its steps' specs), so a
whole preprocessing + source-detector + booster composition is one JSON
file::

    {"type": "Pipeline", "params": {"steps": [
        ["scaler",   {"type": "StandardScaler", "params": {}}],
        ["detector", {"type": "IForest", "params": {"random_state": 0}}],
        ["booster",  {"type": "UADBooster", "params": {"random_state": 0}}]
    ]}}

:func:`to_spec` reads a spec off a live estimator (constructor parameters
only — never fitted state; artifacts carry that), :func:`build_spec`
inverts it, and ``build_spec(to_spec(est))`` reconstructs an estimator
that fits and scores bit-identically for integer seeds.
:func:`canonical_spec` / :func:`spec_key` provide the sorted-key JSON
form used for experiment cache keys and artifact manifests.
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path

import numpy as np

from repro.api.params import _values_equal, init_defaults
from repro.api.registry import component_class, component_name, \
    seeded_construct

__all__ = [
    "SpecError",
    "to_spec",
    "build_spec",
    "as_spec",
    "canonical_spec",
    "spec_key",
    "load_spec",
]


class SpecError(ValueError):
    """A spec document is malformed or an estimator is not spec-able."""


def _encode_value(value, where: str):
    """A parameter value as pure JSON; nested estimators become specs."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.dtype):
        return value.name
    if isinstance(value, (list, tuple)):
        return [_encode_value(item, where) for item in value]
    if isinstance(value, dict):
        bad = [k for k in value if not isinstance(k, str)]
        if bad:
            raise SpecError(f"{where}: dict parameter has non-string "
                            f"key(s) {bad!r}")
        return {k: _encode_value(v, where) for k, v in value.items()}
    if hasattr(value, "get_params"):
        return to_spec(value)
    raise SpecError(
        f"{where}: value {value!r} of type {type(value).__name__} is not "
        f"spec-serialisable; use JSON-able hyper-parameters (e.g. an "
        f"integer seed instead of a Generator)"
    )


def _decode_value(value, random_state):
    if isinstance(value, dict) and "type" in value:
        return build_spec(value, random_state=random_state)
    if isinstance(value, dict):
        return {k: _decode_value(v, random_state) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(item, random_state) for item in value]
    return value


def to_spec(estimator) -> dict:
    """The declarative spec of ``estimator``'s configuration.

    Only constructor parameters are captured — a spec describes how to
    *build* the estimator, not its fitted state — and only parameters
    that differ from their ``__init__`` defaults are recorded, so a
    default-constructed estimator specs as ``{"type": name, "params":
    {}}``: exactly the spec its bare registry name normalises to (one
    configuration, one canonical form, one cache key).  Raises
    :class:`SpecError` for unregistered classes or parameters that cannot
    be expressed as JSON (live ``Generator`` streams, callables, ...).
    """
    try:
        name = component_name(type(estimator))
    except KeyError as exc:
        raise SpecError(str(exc)) from None
    get_params = getattr(estimator, "get_params", None)
    if not callable(get_params):
        raise SpecError(
            f"{type(estimator).__name__} has no get_params; adopt "
            f"repro.api.ParamsMixin"
        )
    defaults = init_defaults(type(estimator))
    params = {}
    for key, value in get_params(deep=False).items():
        default = defaults.get(key, inspect.Parameter.empty)
        if default is not inspect.Parameter.empty \
                and _values_equal(value, default):
            continue
        params[key] = _encode_value(value, f"{name}.{key}")
    return {"type": name, "params": params}


def _check_spec(spec) -> dict:
    if not isinstance(spec, dict):
        raise SpecError(f"a spec must be a dict, got {type(spec).__name__}")
    if not isinstance(spec.get("type"), str):
        raise SpecError('a spec needs a string "type" key')
    params = spec.get("params", {})
    if not isinstance(params, dict):
        raise SpecError(f'{spec["type"]}: "params" must be a dict, '
                        f'got {type(params).__name__}')
    unknown = set(spec) - {"type", "params"}
    if unknown:
        raise SpecError(
            f'{spec["type"]}: unknown spec key(s) {sorted(unknown)}; '
            f'a spec holds only "type" and "params"'
        )
    return params


def build_spec(spec: dict, random_state=None):
    """Instantiate the estimator a spec describes.

    ``random_state`` seeds every component in the (possibly nested) spec
    whose constructor accepts it and whose params do not already pin one —
    the uniform-seeding behaviour of ``make_detector``, extended to whole
    pipelines.
    """
    params = _check_spec(spec)
    try:
        cls = component_class(spec["type"])
    except KeyError as exc:
        raise SpecError(str(exc)) from None
    kwargs = {key: _decode_value(value, random_state)
              for key, value in params.items()}
    # An explicit null seed is "unpinned", not "pinned to None": specs
    # read off default-constructed estimators record random_state: null,
    # and the caller's seed must still reach them.
    if "random_state" in kwargs and kwargs["random_state"] is None:
        del kwargs["random_state"]
    try:
        return seeded_construct(cls, random_state, **kwargs)
    except TypeError as exc:
        raise SpecError(f"{spec['type']}: {exc}") from None


def as_spec(component) -> dict:
    """Normalise a component reference into a spec dict.

    Accepts a spec dict (validated and returned as-is), a registered
    component name (``"IForest"`` becomes the default-parameter spec), or
    a live estimator (via :func:`to_spec`).
    """
    if isinstance(component, str):
        component_class(component)  # raises KeyError for unknown names
        return {"type": component, "params": {}}
    if isinstance(component, dict):
        _check_spec(component)
        return component
    return to_spec(component)


def _normalize(tree):
    """Structural normal form: every (nested) spec carries a params dict."""
    if isinstance(tree, dict) and "type" in tree:
        params = _check_spec(tree)
        return {"type": tree["type"],
                "params": {k: _normalize(v) for k, v in params.items()}}
    if isinstance(tree, dict):
        return {k: _normalize(v) for k, v in tree.items()}
    if isinstance(tree, list):
        return [_normalize(item) for item in tree]
    return tree


def canonical_spec(spec: dict) -> str:
    """The canonical JSON form: sorted keys, no whitespace, normalised
    structure (an omitted ``params`` block equals an empty one, at every
    nesting level).

    Specs differing only in key order or omitted-vs-empty params
    canonicalise to the same string, making it a stable cache / manifest
    key; :func:`to_spec` emits the minimal non-default form, so a bare
    registry name, its explicit empty spec, and a default-constructed
    live estimator all share one canonical form.
    """
    try:
        return json.dumps(_normalize(spec), sort_keys=True,
                          separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SpecError(f"spec is not pure JSON: {exc}") from None


def spec_key(spec: dict, length: int = 16) -> str:
    """A short hex digest of the canonical spec, for file names."""
    import hashlib

    digest = hashlib.sha256(canonical_spec(spec).encode()).hexdigest()
    return digest[:length]


def load_spec(path) -> dict:
    """Read and validate a spec JSON file."""
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SpecError(f"cannot read spec file {path}: {exc}") from exc
    _check_spec(spec)
    return spec
