"""Fingerprint-keyed memoization of k-NN graphs and distance matrices.

Every neighbor-based detector in the bank (KNN, LOF, COF, SOD, ABOD) fits
on the *same* standardized matrix, yet each used to rebuild the full
O(n^2) neighbor graph from scratch.  :class:`NeighborCache` makes the
graph a shared, process-wide asset:

* **Content keys** — datasets are identified by a SHA-256 fingerprint of
  their bytes (shape + dtype + data), so the cache is shared across
  detectors, :class:`~repro.experiments.harness.ExperimentRunner` cells,
  :class:`~repro.api.Pipeline` steps, and
  :class:`~repro.serving.service.ScoringService` models within a process,
  and is immune to aliasing (equal content hits, any change misses).
* **Monotone in k, one graph per dataset** — an unmasked graph is built
  once at ``k_build = max(k(+1), min_k + 1)`` (capped by ``n``) and
  every smaller-k query — include-self *or* exclude-self — is answered
  by slicing, which is exact because neighbor selection and order are a
  pure deterministic function of each distance row (see
  :mod:`repro.kernels.distance`).  With the default ``min_k=20`` — the
  largest default ``n_neighbors`` across the registry detectors — one
  build serves the whole bank.
* **Observable** — ``hits`` / ``misses`` / ``builds`` / ``evictions``
  counters are surfaced through :func:`repro.kernels.cache_stats`;
  ``builds`` splits into ``graph_builds`` and ``matrix_builds`` (KDE's
  self-distance matrices share the cache), so the acceptance bar "one
  k-NN graph build per dataset fingerprint" is testable directly from
  ``graph_builds``.

Entries are bounded by LRU eviction (``max_graphs`` graphs,
``max_matrices`` full distance matrices — the matrices are the memory
hogs at 8 n^2 bytes).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.kernels.distance import kneighbors, pairwise_distances
from repro.runtime import resolve_cache_enabled
from repro.utils.fingerprint import array_fingerprint as fingerprint

__all__ = ["NeighborCache", "fingerprint"]


class NeighborCache:
    """Process-wide memo of self k-NN graphs and self-distance matrices.

    Parameters
    ----------
    max_graphs : int
        k-NN graphs kept (LRU eviction beyond it).  Graphs are small —
        ``O(n k)``, under a megabyte at n=2000 — so the default is
        generous enough for a full feature-bagged ensemble (whose
        members each fit a distinct feature-subset matrix).
    max_matrices : int
        Full ``(n, n)`` self-distance matrices kept (8 n^2 bytes each —
        these are the memory hogs).
    min_k : int
        Build floor: the first query for a dataset builds its graph with
        at least this many neighbours (plus one for the self entry) so
        later, larger default-``k`` queries still hit.  20 covers every
        registry detector default.
    """

    def __init__(self, max_graphs: int = 32, max_matrices: int = 2,
                 min_k: int = 20):
        if max_graphs < 1 or max_matrices < 1:
            raise ValueError("cache capacities must be >= 1")
        if min_k < 1:
            raise ValueError(f"min_k must be >= 1, got {min_k}")
        self.max_graphs = max_graphs
        self.max_matrices = max_matrices
        self.min_k = min_k
        #: When False, every query recomputes directly and the counters
        #: stay frozen (benchmarks use this for the uncached baseline).
        #: The active :class:`repro.runtime.RunContext`'s ``cache`` field
        #: gates the cache the same way, scoped instead of global.
        self.enabled = True
        self._graphs: OrderedDict = OrderedDict()
        self._matrices: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        # Per-key events deduplicating concurrent builds: the first
        # misser builds, later missers of the same key wait and then
        # serve from the cache ("one build per fingerprint" holds under
        # concurrency too).
        self._in_flight: dict = {}
        self._stats = {"hits": 0, "misses": 0, "builds": 0,
                       "graph_builds": 0, "matrix_builds": 0,
                       "evictions": 0}

    def is_active(self) -> bool:
        """Whether queries are served from the cache right now: the
        instance flag AND the active RunContext's ``cache`` field (both
        default to enabled; results are identical either way)."""
        return self.enabled and resolve_cache_enabled()

    # -- k-NN graphs ------------------------------------------------------
    def kneighbors(self, X: np.ndarray, k: int, exclude_self: bool = True,
                   chunk_size: int = 1024, _fp: str | None = None):
        """Cached ``kneighbors(X, X, k, exclude_self)``.

        One *unmasked* graph per dataset serves both conventions: the
        exclude-self view drops each row's own entry from the ranking,
        which is exactly what masking the diagonal before selection does
        (the remaining (value, index) order is unchanged).  So a fit-time
        exclude-self query and a scoring-time include-self query — the
        FeatureBagging pattern — cost one build, not two.

        Returns ``(distances, indices)`` copies of shape ``(n, k)``; the
        cached graph itself is never handed out, so callers can't corrupt
        it.  A graph built for a larger ``k`` serves every smaller ``k``
        exactly; a larger request rebuilds (and the rebuilt graph keeps
        the running maximum ``k``).
        """
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        max_k = n - 1 if exclude_self else n
        if not 1 <= k <= max_k:
            raise ValueError(
                f"k must be in [1, {max_k}] for {n} reference rows "
                f"(exclude_self={exclude_self}), got {k}"
            )
        if not self.is_active():
            return kneighbors(X, X, k, exclude_self=exclude_self,
                              chunk_size=chunk_size)
        # The unmasked window must be one wider than an exclude-self
        # request: each row's own entry may occupy one slot.
        needed = k + 1 if exclude_self else k
        key = _fp if _fp is not None else fingerprint(X)
        while True:
            with self._lock:
                entry = self._graphs.get(key)
                if entry is not None and entry[0] >= needed:
                    self._graphs.move_to_end(key)
                    self._stats["hits"] += 1
                    hit = entry
                    break
                hit = None
                pending = self._in_flight.get(("graph", key))
                if pending is None:
                    self._in_flight[("graph", key)] = threading.Event()
                    self._stats["misses"] += 1
                    prior_k = entry[0] if entry is not None else 0
                    break
            # Another thread is building this key: wait, then re-check
            # the cache (if its build satisfies `needed`, that's a hit;
            # if it failed or built a smaller k, loop and build).
            pending.wait()
        if hit is not None:
            # The O(n k) view copies run outside the lock so concurrent
            # hits don't serialize (cached tuples are never mutated,
            # only replaced, so the captured arrays are stable).
            return self._view(hit[1], hit[2], k, exclude_self)
        try:
            # Build outside the lock: the O(n^2 d) search is the slow part.
            k_build = min(n, max(needed, self.min_k + 1, prior_k))
            dist, idx = kneighbors(X, X, k_build, exclude_self=False,
                                   chunk_size=chunk_size)
            with self._lock:
                self._stats["builds"] += 1
                self._stats["graph_builds"] += 1
                self._graphs[key] = (k_build, dist, idx)
                self._graphs.move_to_end(key)
                while len(self._graphs) > self.max_graphs:
                    self._graphs.popitem(last=False)
                    self._stats["evictions"] += 1
        finally:
            with self._lock:
                self._in_flight.pop(("graph", key)).set()
        return self._view(dist, idx, k, exclude_self)

    @staticmethod
    def _view(dist: np.ndarray, idx: np.ndarray, k: int,
              exclude_self: bool):
        """Top-``k`` copies of a cached unmasked graph, either convention."""
        if not exclude_self:
            return dist[:, :k].copy(), idx[:, :k].copy()
        w_idx = idx[:, :k + 1]
        w_dist = dist[:, :k + 1]
        self_mask = w_idx == np.arange(w_idx.shape[0])[:, None]
        has_self = self_mask.any(axis=1)
        out_idx = w_idx[:, :k].copy()
        out_dist = w_dist[:, :k].copy()
        if np.any(has_self):
            keep = ~self_mask[has_self]
            out_idx[has_self] = w_idx[has_self][keep].reshape(-1, k)
            out_dist[has_self] = w_dist[has_self][keep].reshape(-1, k)
        return out_dist, out_idx

    # -- full distance matrices -------------------------------------------
    def pairwise(self, X: np.ndarray, chunk_size: int = 1024) -> np.ndarray:
        """Cached self-distance matrix ``pairwise_distances(X, X)``.

        Returns a read-only view of the cached matrix (copying 8 n^2
        bytes would defeat the point); callers needing to write must copy.
        """
        X = np.asarray(X, dtype=np.float64)
        if not self.is_active():
            return pairwise_distances(X, X, chunk_size=chunk_size)
        key = fingerprint(X)
        while True:
            with self._lock:
                D = self._matrices.get(key)
                if D is not None:
                    self._matrices.move_to_end(key)
                    self._stats["hits"] += 1
                    return D
                pending = self._in_flight.get(("matrix", key))
                if pending is None:
                    self._in_flight[("matrix", key)] = threading.Event()
                    self._stats["misses"] += 1
                    break
            # Another thread is building this matrix: wait, then serve
            # from the cache (or build, if that thread's build failed).
            pending.wait()
        try:
            D = pairwise_distances(X, X, chunk_size=chunk_size)
            D.setflags(write=False)
            with self._lock:
                self._stats["builds"] += 1
                self._stats["matrix_builds"] += 1
                self._matrices[key] = D
                self._matrices.move_to_end(key)
                while len(self._matrices) > self.max_matrices:
                    self._matrices.popitem(last=False)
                    self._stats["evictions"] += 1
        finally:
            with self._lock:
                self._in_flight.pop(("matrix", key)).set()
        return D

    # -- introspection ----------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot plus current entry counts."""
        with self._lock:
            stats = dict(self._stats)
            stats["graphs"] = len(self._graphs)
            stats["matrices"] = len(self._matrices)
        return stats

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._graphs.clear()
            self._matrices.clear()
            for key in self._stats:
                self._stats[key] = 0
