"""Thread-count control — compatibility shim over :mod:`repro.runtime`.

The thread pool that used to live here moved into the unified execution
runtime: :func:`repro.runtime.map_blocks` fans blocks out through a
:class:`repro.runtime.Executor` (BLAS releases the GIL, block boundaries
stay deterministic, every thread count is bit-identical), and the thread
count itself is one field of the scoped
:class:`repro.runtime.RunContext`, resolved as

    explicit arg > active context > ``REPRO_NUM_THREADS`` > cpu count.

This module keeps the historical entry points alive as thin delegates:
``set_num_threads(n)`` writes the process-global base context
(:func:`repro.runtime.configure`), scoped overrides use ``with
RunContext(num_threads=n):`` directly.  Thread count never changes
results, only wall-clock time.
"""

from __future__ import annotations

from repro.runtime import (
    configure,
    configured_context,
    map_blocks,
    resolve_num_threads,
)

__all__ = ["set_num_threads", "get_num_threads",
           "get_configured_num_threads", "map_blocks"]


def set_num_threads(n: int | None) -> None:
    """Set the process-global worker-thread count for chunked kernels.

    ``None`` restores the default resolution (active context, then
    ``REPRO_NUM_THREADS``, then ``os.cpu_count()``).  Prefer the scoped
    form — ``with repro.runtime.RunContext(num_threads=n):`` — in new
    code; this global remains for the CLI-era call sites and tests.
    """
    if n is not None:
        n = int(n)
        if n < 1:
            raise ValueError(f"num_threads must be >= 1, got {n}")
    configure(num_threads=n)


def get_num_threads() -> int:
    """The worker-thread count chunked kernels will use right now."""
    return resolve_num_threads()


def get_configured_num_threads() -> int | None:
    """The explicitly configured global count, or ``None`` when unset.

    Unlike :func:`get_num_threads` this does not resolve context or
    environment fallbacks, so callers can save and later restore the
    exact configuration with :func:`set_num_threads`.
    """
    base = configured_context()
    return base.num_threads if base is not None else None
