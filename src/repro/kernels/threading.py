"""Thread-count control for the shared neighbor-kernel backend.

Distance blocks are embarrassingly parallel over query rows and the heavy
lifting inside each block is a BLAS matrix product, which releases the
GIL — so a plain :class:`~concurrent.futures.ThreadPoolExecutor` over
row blocks scales without any pickling or process overhead.

The thread count resolves, in order, from :func:`set_num_threads`, the
``REPRO_NUM_THREADS`` environment variable, and finally ``os.cpu_count()``.
Results are **bit-identical for any thread count**: work is split into the
same deterministic row blocks regardless of how many workers drain them,
and every block writes a disjoint slice of the preallocated output.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = ["set_num_threads", "get_num_threads",
           "get_configured_num_threads", "map_blocks"]

_lock = threading.Lock()
_num_threads: int | None = None  # None -> env var / cpu_count fallback
_in_worker = threading.local()  # nested map_blocks must not re-enter a pool


def _env_threads() -> int:
    raw = os.environ.get("REPRO_NUM_THREADS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def set_num_threads(n: int | None) -> None:
    """Set the worker-thread count for chunked distance kernels.

    ``None`` restores the default resolution order (``REPRO_NUM_THREADS``
    env var, then ``os.cpu_count()``).  Thread count never changes
    results, only wall-clock time.
    """
    global _num_threads
    if n is not None:
        n = int(n)
        if n < 1:
            raise ValueError(f"num_threads must be >= 1, got {n}")
    with _lock:
        _num_threads = n


def get_num_threads() -> int:
    """The worker-thread count chunked kernels will use."""
    with _lock:
        return _num_threads if _num_threads is not None else _env_threads()


def get_configured_num_threads() -> int | None:
    """The explicitly configured count, or ``None`` when unset.

    Unlike :func:`get_num_threads` this does not resolve the
    environment fallback, so callers can save and later restore the
    exact configuration with :func:`set_num_threads`.
    """
    with _lock:
        return _num_threads


def map_blocks(fn, blocks) -> None:
    """Run ``fn(block)`` for every block, threading when it can pay off.

    ``fn`` must write its results into preallocated output slices (the
    blocks are disjoint), so completion order is irrelevant and the
    result is identical to the serial loop.  A nested call from inside a
    worker runs serially (re-entering a pool while occupying a slot
    could deadlock it).

    The pool is per-call: construction costs microseconds against the
    tens-of-milliseconds distance blocks that justify threading at all,
    every call observes the *current* thread count exactly, and there is
    no shared executor to race on from concurrent callers.
    """
    blocks = list(blocks)
    n_threads = min(get_num_threads(), len(blocks))
    if (n_threads <= 1 or len(blocks) <= 1
            or getattr(_in_worker, "active", False)):
        for block in blocks:
            fn(block)
        return

    def guarded(block):
        _in_worker.active = True
        try:
            fn(block)
        finally:
            _in_worker.active = False

    with ThreadPoolExecutor(max_workers=n_threads,
                            thread_name_prefix="repro-kernel") as executor:
        # list() propagates the first worker exception to the caller.
        list(executor.map(guarded, blocks))
