"""Shared neighbor-kernel backend.

One compute substrate behind every distance consumer in the repo
(KNN / LOF / COF / SOD / ABOD and KDE's kernel sums):

* :func:`pairwise_distances` / :func:`kneighbors` — chunked exact
  brute-force kernels, threaded over query blocks (BLAS releases the
  GIL), with an exact-recompute fallback so neighbor distances stay
  accurate on near-duplicate rows (see :mod:`repro.kernels.distance`).
* :class:`NeighborCache` / :func:`cached_kneighbors` — process-wide
  fingerprint-keyed memoization of self k-NN graphs, monotone in ``k``:
  one build serves the whole detector bank (see
  :mod:`repro.kernels.cache`).
* :func:`set_num_threads` / :func:`get_num_threads` — thread-count
  control, now a shim over :mod:`repro.runtime`: the count is one field
  of the scoped :class:`~repro.runtime.RunContext` (``REPRO_NUM_THREADS``
  env var, ``repro --threads`` CLI flag, ``with RunContext(num_threads=n)``).
  Thread count, chunking, and cache state never change results — only
  wall-clock time.

>>> from repro import kernels
>>> kernels.set_num_threads(4)
>>> dist, idx = kernels.cached_kneighbors(X, X, k=20, exclude_self=True)
>>> kernels.cache_stats()["builds"]
1
"""

from __future__ import annotations

import numpy as np

from repro.kernels.cache import NeighborCache, fingerprint
from repro.kernels.distance import kneighbors, pairwise_distances
from repro.kernels.threading import get_num_threads, set_num_threads

__all__ = [
    "pairwise_distances",
    "kneighbors",
    "cached_kneighbors",
    "NeighborCache",
    "neighbor_cache",
    "fingerprint",
    "cache_stats",
    "clear_cache",
    "set_num_threads",
    "get_num_threads",
]

#: The process-wide cache shared by the detector bank, the experiment
#: harness, pipelines, and the scoring service.
neighbor_cache = NeighborCache()


def cached_kneighbors(query: np.ndarray, reference: np.ndarray, k: int,
                      exclude_self: bool = False, chunk_size: int = 1024):
    """Drop-in :func:`kneighbors` that memoizes self-graph queries.

    When the query *is* the reference — by object identity (the fit-time
    pattern of every neighbor detector) or by content (an ensemble
    scoring its own training matrix, e.g. ``FeatureBagging``) — the
    search is answered by :data:`neighbor_cache`; genuinely distinct
    query/reference pairs fall through to the direct kernel.  Results
    are identical either way by construction: cached graphs are built by
    the same kernel and neighbor selection/order is a pure deterministic
    function of the data.
    """
    if neighbor_cache.is_active():
        if query is reference:
            return neighbor_cache.kneighbors(
                reference, k, exclude_self=exclude_self,
                chunk_size=chunk_size)
        if (getattr(query, "shape", None)
                == getattr(reference, "shape", None)
                and getattr(query, "dtype", None)
                == getattr(reference, "dtype", None)
                and _rows_spot_equal(query, reference)):
            fp = fingerprint(reference)
            if fingerprint(query) == fp:
                return neighbor_cache.kneighbors(
                    reference, k, exclude_self=exclude_self,
                    chunk_size=chunk_size, _fp=fp)
    return kneighbors(query, reference, k, exclude_self=exclude_self,
                      chunk_size=chunk_size)


def _rows_spot_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """O(d) spot-check ruling out most unequal same-shape pairs before
    the full O(n d) fingerprint hashes (a false "maybe equal" just falls
    through to the hashes, which decide)."""
    n = a.shape[0] if a.ndim else 0
    if n == 0:
        return True
    for row in (0, n // 2, n - 1):
        if not np.array_equal(a[row], b[row]):
            return False
    return True


def cache_stats() -> dict:
    """Hit/miss/build/eviction counters of the process-wide cache."""
    return neighbor_cache.stats()


def clear_cache() -> None:
    """Empty the process-wide cache (e.g. between benchmark phases)."""
    neighbor_cache.clear()
