"""Chunked, threaded exact distance kernels.

The brute-force O(n^2) search previously lived in
:mod:`repro.detectors.neighbors`; it moved here so every distance consumer
(detectors, KDE kernel sums, the neighbor cache) shares one implementation
with two upgrades:

* **Threaded blocks** — query rows are processed in fixed-size chunks
  fanned out over :func:`repro.kernels.threading.map_blocks`.  The block
  boundaries are deterministic, so any thread count returns bit-identical
  output.
* **Exact-recompute fallback** — the fast ``a^2 + b^2 - 2ab`` expansion
  loses up to half the significant digits for near-duplicate rows (and
  goes slightly negative before the clamp).  Neighbor *selection* keeps
  the fast expansion, but the returned distances of the ``k`` winners are
  recomputed exactly as ``sqrt(sum((q - r)^2))``, so near-duplicates
  report 0.0 rather than ~1e-8 noise.

Neighbors are selected and ordered by ``(exact distance, reference
index)`` — a pure function of each row's data, unlike a bare
``argpartition`` whose choice among boundary ties is arbitrary, and
unlike the raw expansion values, whose last ulp depends on the BLAS
block shape (so they cannot arbitrate ties consistently across chunk
sizes).  Selection stays on the fast ``argpartition``-over-expansion
path; rows with any unselected candidate within a rounding-error
tolerance of the ``k``-th value re-select among the near-boundary pool
by exact rank.  That determinism is what lets
:class:`repro.kernels.cache.NeighborCache` serve every smaller ``k``
from one ``k_build`` graph: the top-``k`` slice equals a direct
``k``-neighbor query bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.threading import map_blocks

__all__ = ["pairwise_distances", "kneighbors"]


def _expansion_block(A: np.ndarray, sq_a: np.ndarray, B: np.ndarray,
                     sq_b: np.ndarray) -> np.ndarray:
    """Fast squared-expansion distances between row blocks (clamped)."""
    sq = sq_a[:, None] + sq_b[None, :] - 2.0 * (A @ B.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq, out=sq)


def pairwise_distances(A: np.ndarray, B: np.ndarray,
                       chunk_size: int = 1024) -> np.ndarray:
    """Euclidean distance matrix between rows of ``A`` and rows of ``B``.

    Computed in ``chunk_size`` row blocks of ``A``, threaded when
    :func:`repro.kernels.get_num_threads` allows; chunking bounds the
    peak memory of intermediate blocks and gives the threads disjoint
    work.  Output is identical for any chunk/thread configuration.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValueError(
            f"A and B must be 2-d with equal width, got {A.shape} and {B.shape}"
        )
    sq_a = np.einsum("ij,ij->i", A, A)
    sq_b = np.einsum("ij,ij->i", B, B)
    out = np.empty((A.shape[0], B.shape[0]))

    def run(bounds):
        start, stop = bounds
        out[start:stop] = _expansion_block(A[start:stop], sq_a[start:stop],
                                           B, sq_b)

    map_blocks(run, _block_bounds(A.shape[0], chunk_size))
    return out


def _block_bounds(n: int, chunk_size: int):
    return [(start, min(start + chunk_size, n))
            for start in range(0, n, chunk_size)]


def kneighbors(query: np.ndarray, reference: np.ndarray, k: int,
               exclude_self: bool = False, chunk_size: int = 1024):
    """The ``k`` nearest reference rows for every query row.

    Parameters
    ----------
    query, reference : ndarray
        Row matrices with matching widths.
    k : int
        Number of neighbours to return.
    exclude_self : bool
        When querying a set against itself, skip the zero-distance match of
        each point with itself (the standard convention for LOF/KNN training
        scores).  Implemented positionally: row ``i`` of the query ignores
        row ``i`` of the reference.
    chunk_size : int
        Number of query rows processed per distance block.  Blocks run in
        parallel under :func:`repro.kernels.set_num_threads` /
        ``REPRO_NUM_THREADS``; neither knob changes the result.

    Returns
    -------
    (distances, indices) : ndarrays of shape (n_query, k)
        Selected and sorted ascending by ``(exact distance, reference
        index)``.  Distances are exact (recomputed from the coordinate
        differences of the selected neighbours, immune to the
        expansion-formula cancellation on near-duplicate rows).
    """
    query = np.asarray(query, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    n_ref = reference.shape[0]
    max_k = n_ref - 1 if exclude_self else n_ref
    if not 1 <= k <= max_k:
        raise ValueError(
            f"k must be in [1, {max_k}] for {n_ref} reference rows "
            f"(exclude_self={exclude_self}), got {k}"
        )
    n_query = query.shape[0]
    n_feat = query.shape[1]
    sq_q = np.einsum("ij,ij->i", query, query)
    sq_r = np.einsum("ij,ij->i", reference, reference)
    sq_scale = float(sq_r.max()) if n_ref else 0.0
    distances = np.empty((n_query, k))
    indices = np.empty((n_query, k), dtype=np.int64)

    def run(bounds):
        start, stop = bounds
        block = _expansion_block(query[start:stop], sq_q[start:stop],
                                 reference, sq_r)
        if exclude_self:
            rows = np.arange(start, stop)
            block[np.arange(stop - start), rows] = np.inf
        if k < n_ref:
            part = np.argpartition(block, k - 1, axis=1)[:, :k]
        else:
            part = np.tile(np.arange(n_ref), (stop - start, 1))
        vals = np.take_along_axis(block, part, axis=1)
        kth = vals.max(axis=1)
        # Expansion values carry GEMM rounding whose last ulp depends on
        # the block shape, so they cannot arbitrate selection near the
        # k-th boundary: rows with any further candidate within `tol`
        # (a bound on that rounding, in distance units) of the boundary
        # re-select among the near-boundary pool by exact
        # (squared distance, index) rank — a pure function of the row
        # data, invariant to chunking and threading.
        tol = np.sqrt(64.0 * n_feat * np.finfo(np.float64).eps
                      * (sq_q[start:stop] + sq_scale + 1.0))
        loose = np.flatnonzero(
            np.count_nonzero(block <= (kth + tol)[:, None], axis=1) > k)
        for i in loose:
            cand = np.flatnonzero(block[i] <= kth[i] + tol[i])
            diff_c = query[start + i] - reference[cand]
            exact_c = np.einsum("cd,cd->c", diff_c, diff_c)
            part[i] = cand[np.argsort(exact_c, kind="stable")[:k]]
        # Exact recompute for the winners only (n_block * k * d work);
        # the final order is (exact squared distance, index), which the
        # expansion values cannot provide.
        diff = query[start:stop, None, :] - reference[part]
        exact_sq = np.einsum("mkd,mkd->mk", diff, diff)
        order = np.lexsort((part, exact_sq), axis=1)
        indices[start:stop] = np.take_along_axis(part, order, axis=1)
        distances[start:stop] = np.sqrt(
            np.take_along_axis(exact_sq, order, axis=1))

    map_blocks(run, _block_bounds(n_query, chunk_size))
    return distances, indices
