"""repro — a full reproduction of UADB (Unsupervised Anomaly Detection
Booster, ICDE 2023) with every substrate implemented from scratch.

Public API highlights
---------------------
* :class:`repro.core.UADBooster` — the booster (Algorithm 1).
* :mod:`repro.detectors` — the 14 source UAD models the paper evaluates.
* :mod:`repro.data` — synthetic anomaly-type generators and the 84-dataset
  benchmark registry.
* :mod:`repro.metrics` — AUCROC / AP / Wilcoxon.
* :mod:`repro.experiments` — harness + per-table/figure reproduction.

Quickstart
----------
>>> from repro.data import make_anomaly_dataset
>>> from repro.detectors import IForest
>>> from repro.core import UADBooster
>>> data = make_anomaly_dataset("local", random_state=0)
>>> source = IForest(random_state=0).fit(data.X)
>>> booster = UADBooster(random_state=0).fit(data.X, source)
>>> booster.scores_  # boosted anomaly scores in [0, 1]
"""

from repro.core import UADBooster
from repro.data import Dataset, load_dataset, make_anomaly_dataset
from repro.detectors import DETECTOR_NAMES, make_detector
from repro.metrics import auc_roc, average_precision

__version__ = "1.1.0"

__all__ = [
    "UADBooster",
    "Dataset",
    "load_dataset",
    "make_anomaly_dataset",
    "DETECTOR_NAMES",
    "make_detector",
    "auc_roc",
    "average_precision",
    "__version__",
]
