"""repro — a full reproduction of UADB (Unsupervised Anomaly Detection
Booster, ICDE 2023) with every substrate implemented from scratch.

Public API highlights
---------------------
* :class:`repro.core.UADBooster` — the booster (Algorithm 1).
* :mod:`repro.detectors` — the 14 paper source models + 6 extra baselines.
* :mod:`repro.api` — the estimator protocol (``get_params`` /
  ``set_params`` / ``clone``), JSON component specs
  (:func:`~repro.api.to_spec` / :func:`~repro.api.build_spec`), and the
  composable :class:`~repro.api.Pipeline`.
* :mod:`repro.data` — synthetic anomaly-type generators and the 84-dataset
  benchmark registry.
* :mod:`repro.metrics` — AUCROC / AP / Wilcoxon.
* :mod:`repro.experiments` — harness + per-table/figure reproduction.
* :mod:`repro.serving` — versioned model artifacts, micro-batched scoring
  service, HTTP server.
* :mod:`repro.kernels` — the shared neighbor-kernel backend: memoized
  k-NN graphs (:func:`~repro.kernels.cache_stats`), threaded distance
  blocks.
* :mod:`repro.runtime` — the unified execution substrate:
  :class:`~repro.runtime.RunContext` (scoped seed/thread/job/cache/dtype
  configuration, resolution order explicit arg > context > env var >
  default) and the backend-pluggable deterministic
  :class:`~repro.runtime.Executor` every layer fans out through.
* :mod:`repro.resilience` — the failure-handling layer:
  :class:`~repro.resilience.Deadline` /
  :class:`~repro.resilience.RetryPolicy` (seeded, bit-reproducible
  backoff) / :class:`~repro.resilience.CircuitBreaker`, plus
  deterministic fault injection for chaos testing
  (``RunContext(faults=...)`` / ``REPRO_FAULTS``).

Quickstart
----------
>>> from repro.data import make_anomaly_dataset
>>> from repro.detectors import IForest
>>> from repro.core import UADBooster
>>> data = make_anomaly_dataset("local", random_state=0)
>>> source = IForest(random_state=0).fit(data.X)
>>> booster = UADBooster(random_state=0).fit(data.X, source)
>>> booster.scores_  # boosted anomaly scores in [0, 1]
"""

from repro.api import Pipeline, build_spec, clone, make_component, to_spec
from repro.core import UADBooster
from repro.data import Dataset, load_dataset, make_anomaly_dataset
from repro.detectors import DETECTOR_NAMES, make_detector
from repro.kernels import cache_stats, set_num_threads
from repro.metrics import auc_roc, average_precision
from repro.runtime import Executor, RunContext

__version__ = "1.6.0"

__all__ = [
    "UADBooster",
    "Pipeline",
    "RunContext",
    "Executor",
    "Dataset",
    "load_dataset",
    "make_anomaly_dataset",
    "DETECTOR_NAMES",
    "make_detector",
    "make_component",
    "build_spec",
    "to_spec",
    "clone",
    "auc_roc",
    "average_precision",
    "cache_stats",
    "set_num_threads",
    "__version__",
]
