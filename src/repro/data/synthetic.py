"""Synthetic datasets with the four canonical anomaly types.

Following the paper (Sec. IV-B) and the taxonomy it cites (ADBench,
PIDForest), real-world anomalies can be roughly grouped into four types:

* **clustered** — anomalies form their own small, tight cluster(s) away from
  the inlier distribution;
* **global** — anomalies are scattered uniformly far from all inliers;
* **local** — anomalies sit near an inlier cluster but deviate from its
  local density (same region, wrong spread);
* **dependency** — anomalies break the dependence structure between features
  while keeping valid marginal values.

Each generator returns a :class:`Dataset` of inliers drawn from a Gaussian
mixture plus anomalies of the requested type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import check_random_state

__all__ = [
    "ANOMALY_TYPES",
    "Dataset",
    "make_anomaly_dataset",
    "make_clustered_anomalies",
    "make_global_anomalies",
    "make_local_anomalies",
    "make_dependency_anomalies",
    "make_inliers",
]

ANOMALY_TYPES = ("clustered", "global", "local", "dependency")


@dataclass
class Dataset:
    """A labelled anomaly-detection dataset.

    Attributes
    ----------
    X : ndarray of shape (n, d)
        Feature matrix.
    y : ndarray of shape (n,)
        Ground-truth labels: 1 = anomaly, 0 = inlier.  Labels exist only for
        evaluation — UAD methods never see them.
    name : str
        Human-readable identifier.
    metadata : dict
        Free-form generation details (anomaly type, cluster count, ...).
    """

    X: np.ndarray
    y: np.ndarray
    name: str = "synthetic"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64).ravel()
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-d, got ndim={self.X.ndim}")
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"X has {self.X.shape[0]} rows but y has {self.y.shape[0]}"
            )
        if not np.all(np.isin(self.y, (0, 1))):
            raise ValueError("y must contain only 0 and 1")

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def n_anomalies(self) -> int:
        return int(self.y.sum())

    @property
    def contamination(self) -> float:
        return self.n_anomalies / self.n_samples

    def subsample(self, n: int, random_state=None) -> "Dataset":
        """Return a stratified random subsample of at most ``n`` rows."""
        if n >= self.n_samples:
            return self
        rng = check_random_state(random_state)
        pos = np.flatnonzero(self.y == 1)
        neg = np.flatnonzero(self.y == 0)
        n_pos = max(1, round(n * self.contamination)) if pos.size else 0
        n_pos = min(n_pos, pos.size)
        n_neg = n - n_pos
        idx = np.concatenate([
            rng.choice(pos, size=n_pos, replace=False) if n_pos else pos[:0],
            rng.choice(neg, size=min(n_neg, neg.size), replace=False),
        ])
        rng.shuffle(idx)
        return Dataset(self.X[idx], self.y[idx], name=self.name,
                       metadata={**self.metadata, "subsampled_to": n})


def make_inliers(n: int, n_features: int = 2, n_clusters: int = 2,
                 spread: float = 1.0, center_box: float = 4.0,
                 random_state=None) -> np.ndarray:
    """Draw inliers from a mixture of ``n_clusters`` isotropic Gaussians."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    rng = check_random_state(random_state)
    centers = rng.uniform(-center_box, center_box, size=(n_clusters, n_features))
    assignments = rng.integers(0, n_clusters, size=n)
    return centers[assignments] + rng.normal(0.0, spread, size=(n, n_features))


def _combine(name: str, inliers: np.ndarray, anomalies: np.ndarray,
             rng: np.random.Generator, metadata: dict) -> Dataset:
    X = np.vstack([inliers, anomalies])
    y = np.concatenate([
        np.zeros(inliers.shape[0], dtype=np.int64),
        np.ones(anomalies.shape[0], dtype=np.int64),
    ])
    perm = rng.permutation(X.shape[0])
    return Dataset(X[perm], y[perm], name=name, metadata=metadata)


def make_clustered_anomalies(n_inliers: int = 450, n_anomalies: int = 50,
                             n_features: int = 2, n_clusters: int = 2,
                             random_state=None) -> Dataset:
    """Anomalies form their own small, dense cluster far from the inliers."""
    rng = check_random_state(random_state)
    inliers = make_inliers(n_inliers, n_features, n_clusters, spread=0.8,
                           center_box=3.0, random_state=rng)
    # Put the anomaly cluster outside the inlier bounding region.
    direction = rng.normal(size=n_features)
    direction /= np.linalg.norm(direction)
    center = direction * (np.abs(inliers).max() + 2.0)
    anomalies = center + rng.normal(0.0, 0.4, size=(n_anomalies, n_features))
    return _combine("synthetic-clustered", inliers, anomalies, rng,
                    {"anomaly_type": "clustered", "n_clusters": n_clusters})


def make_global_anomalies(n_inliers: int = 450, n_anomalies: int = 50,
                          n_features: int = 2, n_clusters: int = 2,
                          random_state=None) -> Dataset:
    """Anomalies scattered uniformly over a box much wider than the inliers."""
    rng = check_random_state(random_state)
    inliers = make_inliers(n_inliers, n_features, n_clusters, spread=0.8,
                           center_box=2.0, random_state=rng)
    radius = np.abs(inliers).max() * 2.0
    anomalies = rng.uniform(-radius, radius, size=(n_anomalies, n_features))
    return _combine("synthetic-global", inliers, anomalies, rng,
                    {"anomaly_type": "global", "n_clusters": n_clusters})


def make_local_anomalies(n_inliers: int = 450, n_anomalies: int = 50,
                         n_features: int = 2, n_clusters: int = 2,
                         scale: float = 3.0, random_state=None) -> Dataset:
    """Anomalies share the inlier cluster centres but with inflated spread.

    This follows the classic local-anomaly construction: the anomalous
    distribution is the inlier mixture with each component's covariance
    scaled by ``scale``, so anomalies live in the same region but violate
    the local density.
    """
    rng = check_random_state(random_state)
    centers = rng.uniform(-3.0, 3.0, size=(n_clusters, n_features))
    spread = 0.7

    assign_in = rng.integers(0, n_clusters, size=n_inliers)
    inliers = centers[assign_in] + rng.normal(
        0.0, spread, size=(n_inliers, n_features))

    assign_out = rng.integers(0, n_clusters, size=n_anomalies)
    anomalies = centers[assign_out] + rng.normal(
        0.0, spread * scale, size=(n_anomalies, n_features))
    return _combine("synthetic-local", inliers, anomalies, rng,
                    {"anomaly_type": "local", "scale": scale,
                     "n_clusters": n_clusters})


def make_dependency_anomalies(n_inliers: int = 450, n_anomalies: int = 50,
                              n_features: int = 2,
                              random_state=None) -> Dataset:
    """Anomalies keep valid marginals but break inter-feature dependence.

    Inliers follow a correlated Gaussian (all pairwise correlations 0.9);
    anomalies are built by independently permuting each inlier feature, which
    preserves the marginals exactly while destroying the dependency
    structure.
    """
    if n_features < 2:
        raise ValueError("dependency anomalies need at least 2 features")
    rng = check_random_state(random_state)
    corr = np.full((n_features, n_features), 0.9)
    np.fill_diagonal(corr, 1.0)
    chol = np.linalg.cholesky(corr)
    inliers = rng.normal(size=(n_inliers, n_features)) @ chol.T * 1.5

    base = inliers[rng.integers(0, n_inliers, size=n_anomalies)].copy()
    for j in range(n_features):
        base[:, j] = base[rng.permutation(n_anomalies), j]
    return _combine("synthetic-dependency", inliers, base, rng,
                    {"anomaly_type": "dependency"})


_GENERATORS = {
    "clustered": make_clustered_anomalies,
    "global": make_global_anomalies,
    "local": make_local_anomalies,
    "dependency": make_dependency_anomalies,
}


def make_anomaly_dataset(anomaly_type: str, n_inliers: int = 450,
                         n_anomalies: int = 50, n_features: int = 2,
                         random_state=None, **kwargs) -> Dataset:
    """Dispatch to the generator for ``anomaly_type`` (see ANOMALY_TYPES)."""
    if anomaly_type not in _GENERATORS:
        raise ValueError(
            f"unknown anomaly_type {anomaly_type!r}; "
            f"expected one of {ANOMALY_TYPES}"
        )
    maker = _GENERATORS[anomaly_type]
    return maker(n_inliers=n_inliers, n_anomalies=n_anomalies,
                 n_features=n_features, random_state=random_state, **kwargs)
