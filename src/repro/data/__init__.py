"""Datasets: synthetic anomaly generators, the 84-dataset registry, scalers."""

from repro.data.corruptions import (
    with_constant_features,
    with_duplicate_rows,
    with_extreme_outliers,
    with_label_noise,
    with_missing_values_imputed,
)
from repro.data.io import (
    dataset_from_csv,
    dataset_to_csv,
    load_dataset_file,
    save_dataset,
)
from repro.data.preprocessing import (
    KFoldSplitter,
    MinMaxScaler,
    StandardScaler,
    minmax_scale,
)
from repro.data.registry import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_specs,
    load_dataset,
)
from repro.data.synthetic import (
    ANOMALY_TYPES,
    Dataset,
    make_anomaly_dataset,
    make_clustered_anomalies,
    make_dependency_anomalies,
    make_global_anomalies,
    make_local_anomalies,
)

__all__ = [
    "with_constant_features",
    "with_duplicate_rows",
    "with_extreme_outliers",
    "with_label_noise",
    "with_missing_values_imputed",
    "dataset_from_csv",
    "dataset_to_csv",
    "load_dataset_file",
    "save_dataset",
    "KFoldSplitter",
    "MinMaxScaler",
    "StandardScaler",
    "minmax_scale",
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_specs",
    "load_dataset",
    "ANOMALY_TYPES",
    "Dataset",
    "make_anomaly_dataset",
    "make_clustered_anomalies",
    "make_dependency_anomalies",
    "make_global_anomalies",
    "make_local_anomalies",
]
