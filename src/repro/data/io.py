"""Dataset persistence: save/load :class:`Dataset` objects as .npz or .csv.

Lets users export the synthetic stand-ins for use with other tools (or
import their own tabular data into the harness).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.data.synthetic import Dataset

__all__ = ["save_dataset", "load_dataset_file", "dataset_to_csv",
           "dataset_from_csv"]


def save_dataset(dataset: Dataset, path) -> Path:
    """Save a dataset to a ``.npz`` archive (features, labels, metadata)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        X=dataset.X,
        y=dataset.y,
        name=np.array(dataset.name),
        metadata=np.array(json.dumps(dataset.metadata, default=str)),
    )
    return path


def load_dataset_file(path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such dataset file: {path}")
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive["metadata"]))
        return Dataset(
            X=archive["X"],
            y=archive["y"],
            name=str(archive["name"]),
            metadata=metadata,
        )


def dataset_to_csv(dataset: Dataset, path) -> Path:
    """Export as CSV with feature columns ``f0..fD`` and a ``label`` column."""
    path = Path(path)
    if path.suffix != ".csv":
        path = path.with_suffix(".csv")
    header = [f"f{j}" for j in range(dataset.n_features)] + ["label"]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row, label in zip(dataset.X, dataset.y):
            writer.writerow([repr(float(v)) for v in row] + [int(label)])
    return path


def dataset_from_csv(path, name: str | None = None,
                     label_column: str = "label") -> Dataset:
    """Read a CSV with numeric feature columns and a binary label column."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such csv file: {path}")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if label_column not in header:
            raise ValueError(
                f"csv has no {label_column!r} column; columns: {header}"
            )
        label_idx = header.index(label_column)
        features, labels = [], []
        for row in reader:
            if not row:
                continue
            labels.append(int(float(row[label_idx])))
            features.append([float(v) for j, v in enumerate(row)
                             if j != label_idx])
    return Dataset(
        X=np.asarray(features, dtype=np.float64),
        y=np.asarray(labels, dtype=np.int64),
        name=name or path.stem,
        metadata={"source": str(path)},
    )
