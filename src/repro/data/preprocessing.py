"""Feature scaling and cross-validation splitting.

The UADB pipeline min-max scales both features and pseudo-labels, and trains
its booster ensemble with a 3-fold split; these are the exact utilities that
scikit-learn would otherwise provide.
"""

from __future__ import annotations

import numpy as np

from repro.api.params import ParamsMixin
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_fitted

__all__ = ["MinMaxScaler", "StandardScaler", "KFoldSplitter", "minmax_scale"]


def minmax_scale(values: np.ndarray) -> np.ndarray:
    """Scale a vector (or each column of a matrix) into [0, 1].

    Constant inputs map to all zeros — the convention UADB relies on when a
    degenerate pseudo-label vector appears (it then carries no ranking
    information, and zero is the neutral choice).
    """
    arr = np.asarray(values, dtype=np.float64)
    lo = arr.min(axis=0)
    hi = arr.max(axis=0)
    span = hi - lo
    span = np.where(span == 0, 1.0, span)
    out = (arr - lo) / span
    return out


class MinMaxScaler(ParamsMixin):
    """Column-wise min-max scaler with a fit/transform interface."""

    def __init__(self, feature_range: tuple = (0.0, 1.0)):
        lo, hi = feature_range
        if hi <= lo:
            raise ValueError(f"invalid feature_range: {feature_range}")
        self.feature_range = (float(lo), float(hi))
        self.data_min_ = None
        self.data_max_ = None

    def fit(self, X) -> "MinMaxScaler":
        X = check_array(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "data_min_")
        X = check_array(X)
        if X.shape[1] != self.data_min_.size:
            raise ValueError(
                f"expected {self.data_min_.size} features, got {X.shape[1]}"
            )
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0, 1.0, span)
        unit = (X - self.data_min_) / span
        lo, hi = self.feature_range
        return unit * (hi - lo) + lo

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class StandardScaler(ParamsMixin):
    """Column-wise standardisation to zero mean and unit variance."""

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, X) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std == 0, 1.0, std)
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "mean_")
        X = check_array(X)
        if X.shape[1] != self.mean_.size:
            raise ValueError(
                f"expected {self.mean_.size} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class KFoldSplitter(ParamsMixin):
    """Shuffled k-fold splitter yielding ``(train_idx, test_idx)`` pairs.

    UADB trains three boosters, each on a different 2/3 of the data; this is
    the standard k-fold partition with ``k=3``.
    """

    def __init__(self, n_splits: int = 3, random_state=None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, n_samples: int):
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        rng = check_random_state(self.random_state)
        indices = np.arange(n_samples)
        rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = np.sort(folds[i])
            train_idx = np.sort(
                np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            )
            yield train_idx, test_idx
