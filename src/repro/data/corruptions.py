"""Failure-injection utilities for robustness testing.

Real tabular pipelines feed detectors imperfect data.  These helpers apply
controlled corruptions to a :class:`~repro.data.synthetic.Dataset` so the
test suite (and users) can check how detectors and the booster degrade:

* :func:`with_duplicate_rows` — exact duplicates (breaks naive LOF k-dist);
* :func:`with_constant_features` — zero-variance columns;
* :func:`with_extreme_outliers` — a few wild values in random cells;
* :func:`with_label_noise` — flipped evaluation labels (metric robustness);
* :func:`with_missing_values_imputed` — MCAR missingness + mean imputation.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import Dataset
from repro.utils.rng import check_random_state

__all__ = [
    "with_duplicate_rows",
    "with_constant_features",
    "with_extreme_outliers",
    "with_label_noise",
    "with_missing_values_imputed",
]


def _check_fraction(value, name):
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def with_duplicate_rows(dataset: Dataset, fraction: float = 0.1,
                        random_state=None) -> Dataset:
    """Append exact copies of randomly chosen rows (labels copied too)."""
    _check_fraction(fraction, "fraction")
    rng = check_random_state(random_state)
    n_dup = round(dataset.n_samples * fraction)
    if n_dup == 0:
        return dataset
    idx = rng.choice(dataset.n_samples, size=n_dup, replace=True)
    X = np.vstack([dataset.X, dataset.X[idx]])
    y = np.concatenate([dataset.y, dataset.y[idx]])
    return Dataset(X, y, name=dataset.name,
                   metadata={**dataset.metadata, "duplicated": n_dup})


def with_constant_features(dataset: Dataset, n_features: int = 1,
                           value: float = 0.0,
                           random_state=None) -> Dataset:
    """Replace ``n_features`` random columns with a constant."""
    if not 0 <= n_features <= dataset.n_features:
        raise ValueError(
            f"n_features must be in [0, {dataset.n_features}]"
        )
    rng = check_random_state(random_state)
    X = dataset.X.copy()
    cols = rng.choice(dataset.n_features, size=n_features, replace=False)
    X[:, cols] = value
    return Dataset(X, dataset.y.copy(), name=dataset.name,
                   metadata={**dataset.metadata,
                             "constant_features": sorted(int(c) for c in cols)})


def with_extreme_outliers(dataset: Dataset, n_cells: int = 5,
                          magnitude: float = 1e6,
                          random_state=None) -> Dataset:
    """Set ``n_cells`` random cells to an extreme magnitude (sensor glitch)."""
    if n_cells < 0:
        raise ValueError(f"n_cells must be >= 0, got {n_cells}")
    rng = check_random_state(random_state)
    X = dataset.X.copy()
    rows = rng.integers(0, dataset.n_samples, size=n_cells)
    cols = rng.integers(0, dataset.n_features, size=n_cells)
    signs = rng.choice((-1.0, 1.0), size=n_cells)
    X[rows, cols] = signs * magnitude
    return Dataset(X, dataset.y.copy(), name=dataset.name,
                   metadata={**dataset.metadata, "glitched_cells": n_cells})


def with_label_noise(dataset: Dataset, flip_fraction: float = 0.05,
                     random_state=None) -> Dataset:
    """Flip a fraction of the evaluation labels (never seen by detectors)."""
    _check_fraction(flip_fraction, "flip_fraction")
    rng = check_random_state(random_state)
    y = dataset.y.copy()
    n_flip = round(dataset.n_samples * flip_fraction)
    idx = rng.choice(dataset.n_samples, size=n_flip, replace=False)
    y[idx] = 1 - y[idx]
    return Dataset(dataset.X.copy(), y, name=dataset.name,
                   metadata={**dataset.metadata, "flipped_labels": n_flip})


def with_missing_values_imputed(dataset: Dataset, fraction: float = 0.1,
                                random_state=None) -> Dataset:
    """MCAR missingness followed by column-mean imputation.

    Mirrors the standard preprocessing applied before UAD in practice;
    the imputed cells soften feature structure without creating NaNs.
    """
    _check_fraction(fraction, "fraction")
    rng = check_random_state(random_state)
    X = dataset.X.copy()
    mask = rng.uniform(size=X.shape) < fraction
    column_means = X.mean(axis=0)
    for j in range(X.shape[1]):
        col_mask = mask[:, j]
        if col_mask.all():
            # Keep at least one observed value per column.
            col_mask[rng.integers(0, X.shape[0])] = False
        observed_mean = X[~col_mask, j].mean() if (~col_mask).any() \
            else column_means[j]
        X[col_mask, j] = observed_mean
    return Dataset(X, dataset.y.copy(), name=dataset.name,
                   metadata={**dataset.metadata,
                             "imputed_fraction": float(mask.mean())})
