"""Generative families behind the 84 synthetic stand-in datasets.

Each stand-in is drawn from a dataset-specific recipe derived
deterministically from its spec:

* inliers come from a mixture of 1-4 anisotropic Gaussian clusters with
  heterogeneous per-feature scales (tabular features differ wildly in range
  — the paper's "data heterogeneity" challenge);
* anomalies are a random mixture of the four canonical types (local, global,
  clustered, dependency) so that different detectors' assumptions match
  different datasets — which is exactly the regime UADB targets;
* a per-dataset difficulty factor controls inlier/anomaly separation so some
  datasets are nearly unsolvable and others easy, mirroring the wide AUCROC
  spread in the paper's Table IV.

Embedding-style datasets (CIFAR10/FashionMNIST/SVHN/agnews/amazon/imdb/yelp)
get smoother, higher-rank covariance structure to mimic pretrained-backbone
feature vectors.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import Dataset
from repro.utils.rng import check_random_state

__all__ = ["generate_standin"]

# How anomalous regions are favoured per Table III category.  Weights order:
# (local, global, clustered, dependency).  These priors only bias the
# per-dataset Dirichlet draw; every dataset still mixes all four types.
_CATEGORY_TYPE_PRIOR = {
    "Healthcare": (2.0, 1.0, 1.0, 1.5),
    "Image": (1.5, 1.5, 1.5, 1.0),
    "Web": (0.5, 3.0, 1.5, 0.5),
    "Astronautics": (1.0, 1.0, 2.5, 1.0),
    "Document": (1.5, 1.0, 1.0, 1.5),
    "Biology": (2.0, 1.0, 1.0, 1.0),
    "Physical": (1.5, 1.0, 1.0, 2.0),
    "Physics": (1.5, 1.0, 1.0, 2.0),
    "Chemistry": (1.0, 1.0, 2.0, 1.0),
    "Botany": (1.0, 2.0, 1.0, 1.0),
    "Forensic": (1.5, 1.5, 1.0, 1.0),
    "Linguistics": (1.5, 1.0, 1.5, 1.0),
    "Oryctognosy": (1.5, 1.5, 1.0, 1.0),
    "NLP": (1.5, 1.0, 1.5, 1.0),
}
_EMBEDDING_CATEGORIES = {"NLP"}
_EMBEDDING_PREFIXES = ("CIFAR10_", "FashionMNIST_", "SVHN_")


def _random_covariance(rng: np.random.Generator, d: int,
                       anisotropy: float) -> np.ndarray:
    """A random SPD covariance with eigenvalue spread ``anisotropy``."""
    # Random orthogonal basis via QR of a Gaussian matrix.
    q, _ = np.linalg.qr(rng.normal(size=(d, d)))
    eigvals = np.exp(rng.uniform(-anisotropy, anisotropy, size=d))
    return (q * eigvals) @ q.T


def _sample_cluster(rng, n, center, cov_chol):
    return center + rng.normal(size=(n, center.size)) @ cov_chol.T


def _is_embedding(spec) -> bool:
    return (spec.category in _EMBEDDING_CATEGORIES
            or spec.name.startswith(_EMBEDDING_PREFIXES))


def generate_standin(spec, n_samples: int, n_features: int,
                     seed: int) -> Dataset:
    """Generate the deterministic stand-in dataset for ``spec``.

    Parameters
    ----------
    spec : repro.data.registry.DatasetSpec
        Name / anomaly rate / category of the benchmark dataset.
    n_samples, n_features : int
        Effective (possibly capped) size.
    seed : int
        Seed controlling every random choice, derived from the dataset name.
    """
    if n_samples < 10:
        raise ValueError(f"n_samples must be >= 10, got {n_samples}")
    if n_features < 2:
        raise ValueError(f"n_features must be >= 2, got {n_features}")
    rng = check_random_state(seed)

    n_anomalies = max(2, round(n_samples * spec.anomaly_rate))
    n_anomalies = min(n_anomalies, n_samples - 5)
    n_inliers = n_samples - n_anomalies

    embedding = _is_embedding(spec)
    n_clusters = 1 if embedding else int(rng.integers(1, 5))
    anisotropy = 0.6 if embedding else rng.uniform(0.5, 1.5)
    # Difficulty: how far anomalies sit from inlier structure (in units of
    # inlier spread).  Low values make the dataset nearly unsolvable; the
    # range is tuned so detector AUCs span roughly 0.45-0.95 across the
    # registry, matching the spread in the paper's Table IV.
    difficulty = rng.uniform(0.25, 1.6)
    # A fraction of features carries no anomaly signal at all (same noise
    # distribution for inliers and anomalies) — ubiquitous in real tabular
    # data and a major source of assumption misalignment.
    noise_fraction = rng.uniform(0.0, 0.7)

    prior = _CATEGORY_TYPE_PRIOR.get(spec.category, (1.0, 1.0, 1.0, 1.0))
    # Low Dirichlet concentration makes most datasets *dominated* by one
    # anomaly type — the assumption-misalignment regime the paper targets
    # (a detector whose assumption matches wins; the others fail hard).
    type_weights = rng.dirichlet(np.asarray(prior) * 0.6)

    # --- inliers ------------------------------------------------------
    centers = rng.uniform(-4.0, 4.0, size=(n_clusters, n_features))
    chols = []
    for _ in range(n_clusters):
        cov = _random_covariance(rng, n_features, anisotropy)
        chols.append(np.linalg.cholesky(cov + 1e-9 * np.eye(n_features)))
    cluster_weights = rng.dirichlet(np.full(n_clusters, 2.0))
    assignments = rng.choice(n_clusters, size=n_inliers, p=cluster_weights)
    inliers = np.empty((n_inliers, n_features))
    for c in range(n_clusters):
        mask = assignments == c
        inliers[mask] = _sample_cluster(rng, int(mask.sum()), centers[c],
                                        chols[c])

    inlier_scale = float(np.std(inliers))

    # --- anomalies ----------------------------------------------------
    counts = rng.multinomial(n_anomalies, type_weights)
    parts = []
    n_local, n_global, n_clustered, n_dependency = (int(c) for c in counts)

    if n_local:
        # Same component centres, inflated spread.
        assign = rng.choice(n_clusters, size=n_local, p=cluster_weights)
        pts = np.empty((n_local, n_features))
        for c in range(n_clusters):
            mask = assign == c
            pts[mask] = _sample_cluster(
                rng, int(mask.sum()), centers[c],
                chols[c] * (1.0 + 0.6 * difficulty))
        parts.append(pts)

    if n_global:
        # Scattered over a box that substantially overlaps the inlier
        # support: global anomalies land in sparse regions rather than far
        # outside it, so only part of them are easy to flag.
        radius = np.abs(inliers).max(axis=0) * (0.6 + 0.4 * difficulty)
        parts.append(rng.uniform(-radius, radius, size=(n_global, n_features)))

    if n_clustered:
        # A tight anomaly cluster offset from a random inlier cluster; with
        # low difficulty it overlaps the inlier fringe, with high difficulty
        # it is well separated.
        anchor = centers[rng.integers(0, n_clusters)]
        direction = rng.normal(size=n_features)
        direction /= np.linalg.norm(direction)
        center = anchor + direction * (1.0 + 2.0 * difficulty) * inlier_scale
        parts.append(center + rng.normal(
            0.0, 0.15 * inlier_scale, size=(n_clustered, n_features)))

    if n_dependency:
        base = inliers[rng.integers(0, n_inliers, size=n_dependency)].copy()
        for j in range(n_features):
            base[:, j] = base[rng.permutation(n_dependency), j]
        parts.append(base)

    anomalies = np.vstack(parts)

    # --- uninformative noise features ----------------------------------
    n_noise = int(round(noise_fraction * n_features))
    if n_noise:
        noise_dims = rng.choice(n_features, size=n_noise, replace=False)
        total = n_inliers + anomalies.shape[0]
        noise_scale = max(inlier_scale, 1e-6)
        noise_block = rng.normal(0.0, noise_scale, size=(total, n_noise))
        inliers[:, noise_dims] = noise_block[:n_inliers]
        anomalies[:, noise_dims] = noise_block[n_inliers:]

    # --- tabular heterogeneity ----------------------------------------
    # Per-feature multiplicative scales and offsets so feature ranges differ
    # by orders of magnitude, as in raw tabular data.
    X = np.vstack([inliers, anomalies])
    if not embedding:
        feature_scale = np.exp(rng.normal(0.0, 1.0, size=n_features))
        feature_shift = rng.normal(0.0, 5.0, size=n_features)
        X = X * feature_scale + feature_shift

    y = np.concatenate([
        np.zeros(n_inliers, dtype=np.int64),
        np.ones(anomalies.shape[0], dtype=np.int64),
    ])
    perm = rng.permutation(X.shape[0])
    metadata = {
        "category": spec.category,
        "anomaly_rate_nominal": spec.anomaly_rate,
        "type_counts": {
            "local": n_local,
            "global": n_global,
            "clustered": n_clustered,
            "dependency": n_dependency,
        },
        "n_clusters": n_clusters,
        "difficulty": float(difficulty),
        "n_noise_features": int(n_noise),
        "embedding_style": embedding,
    }
    return Dataset(X[perm], y[perm], name=spec.name, metadata=metadata)
