"""Shared content fingerprinting for arrays.

One hashing routine behind every content-keyed subsystem — the
:class:`repro.kernels.cache.NeighborCache` keys, the
:class:`repro.experiments.harness.ExperimentRunner` on-disk result cache,
and :func:`repro.serving.artifacts.data_fingerprint` — so "same bytes,
same key" means the same thing everywhere and a change to the digest
composition happens in exactly one place.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["array_fingerprint", "content_sha256"]


def array_fingerprint(*arrays) -> str:
    """SHA-256 over each array's dtype, shape, and raw bytes, in order.

    Metadata is hashed alongside the data so arrays with equal bytes but
    different shapes or dtypes (a transposed view, a float32 twin) never
    collide.  Multiple arrays chain into one digest — the experiment
    cache fingerprints ``(X, y)`` pairs in a single call.
    """
    digest = hashlib.sha256()
    for X in arrays:
        X = np.ascontiguousarray(X)
        digest.update(str(X.dtype).encode())
        digest.update(str(X.shape).encode())
        digest.update(X.tobytes())
    return digest.hexdigest()


def content_sha256(X) -> str:
    """SHA-256 over the raw bytes only (no dtype/shape prefix).

    The artifact-manifest data fingerprint records shape and dtype as
    separate JSON fields, so its hash covers bytes alone; this keeps the
    recorded values stable for artifacts written before the helper
    existed.
    """
    return hashlib.sha256(np.ascontiguousarray(X).tobytes()).hexdigest()
