"""Random-number-generator helpers.

Every stochastic component in the library accepts a ``random_state`` that may
be ``None``, an integer seed, or a :class:`numpy.random.Generator`.  This
module centralises the conversion so results are reproducible end to end.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["check_random_state", "spawn_rng", "stable_hash"]


def check_random_state(random_state=None) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state : None, int, or numpy.random.Generator
        ``None`` creates an unseeded generator, an ``int`` seeds a fresh
        generator, and a ``Generator`` is passed through unchanged.

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, an int, or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rng(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` independent child generators from ``rng``.

    Children are seeded from the parent stream, so a run is reproducible as
    long as the parent seed is fixed, while the children stay statistically
    independent of each other.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def stable_hash(text: str, modulus: int = 2**31 - 1) -> int:
    """Return a deterministic integer hash of ``text``.

    Python's built-in ``hash`` is salted per process; this helper instead
    uses SHA-256 so dataset names map to the same seed in every run.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % modulus
