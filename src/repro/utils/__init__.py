"""Shared low-level utilities: RNG handling, validation, fingerprints."""

from repro.utils.fingerprint import array_fingerprint, content_sha256
from repro.utils.rng import check_random_state, spawn_rng, stable_hash
from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_fitted,
    check_scores,
)

__all__ = [
    "array_fingerprint",
    "content_sha256",
    "check_random_state",
    "spawn_rng",
    "stable_hash",
    "check_array",
    "check_consistent_length",
    "check_fitted",
    "check_scores",
]
