"""Shared low-level utilities: RNG handling and input validation."""

from repro.utils.rng import check_random_state, spawn_rng, stable_hash
from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_fitted,
    check_scores,
)

__all__ = [
    "check_random_state",
    "spawn_rng",
    "stable_hash",
    "check_array",
    "check_consistent_length",
    "check_fitted",
    "check_scores",
]
