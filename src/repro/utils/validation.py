"""Input validation helpers used across detectors, boosters, and metrics."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_array",
    "check_consistent_length",
    "check_fitted",
    "check_scores",
]


def check_array(X, name: str = "X", ensure_2d: bool = True,
                min_samples: int = 1) -> np.ndarray:
    """Validate and convert ``X`` to a float64 ndarray.

    Rejects NaN/inf values and (optionally) non-2-d input so that every
    downstream algorithm can assume clean numeric data.
    """
    arr = np.asarray(X, dtype=np.float64)
    if ensure_2d:
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
        if arr.shape[1] < 1:
            raise ValueError(f"{name} must have at least one feature")
    if arr.shape[0] < min_samples:
        raise ValueError(
            f"{name} needs at least {min_samples} samples, got {arr.shape[0]}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_consistent_length(*arrays) -> None:
    """Raise ``ValueError`` unless all arrays share the same first dimension."""
    lengths = [len(a) for a in arrays if a is not None]
    if len(set(lengths)) > 1:
        raise ValueError(f"Inconsistent sample counts: {lengths}")


def check_fitted(estimator, attribute: str) -> None:
    """Raise ``RuntimeError`` if ``estimator`` lacks a fitted ``attribute``."""
    if getattr(estimator, attribute, None) is None:
        raise RuntimeError(
            f"{type(estimator).__name__} is not fitted yet; call fit() first"
        )


def check_scores(scores, name: str = "scores") -> np.ndarray:
    """Validate a 1-d vector of anomaly scores."""
    arr = np.asarray(scores, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr
