"""The four alternative booster frameworks from the paper's RQ4 (Table VI).

All share UADB's fold-ensemble student but differ in how pseudo-labels
evolve and what is returned at inference:

* :class:`NaiveBooster` — static pseudo-labels (teacher scores), booster
  output at inference.  Removing error correction *and* iteration.
* :class:`DiscrepancyBooster` — trained like Naive, but scores by the
  per-instance standard deviation between teacher and student outputs.
* :class:`SelfBooster` — iterative like UADB, but each round replaces the
  pseudo-labels by the rescaled student output (no variance term).
* :class:`DiscrepancyStarBooster` — trained like Self, scored like
  Discrepancy.

The paper's finding: UADB beats all four by a clear margin; Self-Booster is
the strongest alternative, showing that iteration alone helps but variance-
based correction is the main driver.
"""

from __future__ import annotations

import numpy as np

from repro.api.params import ParamsMixin
from repro.core.booster import _resolve_source_scores
from repro.core.ensemble import FoldEnsemble
from repro.core.labels import self_update
from repro.utils.validation import check_array, check_fitted

__all__ = [
    "NaiveBooster",
    "DiscrepancyBooster",
    "SelfBooster",
    "DiscrepancyStarBooster",
    "VARIANT_CLASSES",
    "make_variant",
]


class _VariantBase(ParamsMixin):
    """Shared mechanics: fold-ensemble student + configurable label loop."""

    #: subclasses set these two class attributes
    iterative = False
    discrepancy_inference = False

    def __init__(self, n_iterations: int = 10, n_folds: int = 3,
                 hidden: int = 128, n_layers: int = 3,
                 epochs_per_iteration: int = 10, batch_size: int = 256,
                 lr: float = 1e-3, engine: str = "batched",
                 dtype: str | None = None, random_state=None):
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.n_iterations = n_iterations
        self.n_folds = n_folds
        self.hidden = hidden
        self.n_layers = n_layers
        self.epochs_per_iteration = epochs_per_iteration
        self.batch_size = batch_size
        self.lr = lr
        self.engine = engine
        # Canonical string (or None): numpy's dtype-vs-None equality
        # quirk would otherwise break default-elision in specs.
        self.dtype = None if dtype is None else str(np.dtype(dtype))
        self.random_state = random_state
        self.scores_ = None
        self._ensemble = None
        self._source_scores = None

    def fit(self, X, source) -> "_VariantBase":
        X = check_array(X, min_samples=2)
        source_scores = _resolve_source_scores(X, source)
        self._source_scores = source_scores

        self._ensemble = FoldEnsemble(
            n_folds=self.n_folds, hidden=self.hidden, n_layers=self.n_layers,
            epochs=self.epochs_per_iteration, batch_size=self.batch_size,
            lr=self.lr, engine=self.engine, dtype=self.dtype,
            random_state=self.random_state,
        ).initialize(X)

        pseudo = source_scores
        student = None
        for _ in range(self.n_iterations):
            self._ensemble.train_round(X, pseudo)
            student = self._ensemble.predict(X)
            if self.iterative:
                pseudo = self_update(student)
        self.scores_ = self._score(student, source_scores)
        return self

    def _score(self, student: np.ndarray,
               source_scores: np.ndarray) -> np.ndarray:
        if self.discrepancy_inference:
            return np.std(
                np.column_stack([source_scores, student]), axis=1)
        return student

    def score_samples(self, X) -> np.ndarray:
        """Scores for arbitrary data under the variant's inference rule.

        Discrepancy-style variants require the source scores of the query
        points; on the training data those are cached, so this method only
        supports the training matrix for discrepancy variants.
        """
        check_fitted(self, "scores_")
        student = self._ensemble.predict(X)
        if not self.discrepancy_inference:
            return np.clip(student, 0.0, 1.0)
        X = check_array(X)
        if X.shape[0] != self._source_scores.shape[0]:
            raise ValueError(
                "discrepancy variants can only score the training data; "
                "pass the matrix used in fit()"
            )
        return self._score(student, self._source_scores)


class NaiveBooster(_VariantBase):
    """Static pseudo-supervised distillation; student output at inference."""

    iterative = False
    discrepancy_inference = False


class DiscrepancyBooster(_VariantBase):
    """Static distillation; teacher-student standard deviation as score."""

    iterative = False
    discrepancy_inference = True


class SelfBooster(_VariantBase):
    """Iterative self-training (no variance term); student output score."""

    iterative = True
    discrepancy_inference = False


class DiscrepancyStarBooster(_VariantBase):
    """Iterative self-training; teacher-student deviation as score."""

    iterative = True
    discrepancy_inference = True


VARIANT_CLASSES = {
    "naive": NaiveBooster,
    "discrepancy": DiscrepancyBooster,
    "self": SelfBooster,
    "discrepancy_star": DiscrepancyStarBooster,
}


def make_variant(name: str, **kwargs):
    """Instantiate an alternative booster by its Table VI name."""
    if name not in VARIANT_CLASSES:
        raise KeyError(
            f"unknown variant {name!r}; known: {sorted(VARIANT_CLASSES)}"
        )
    return VARIANT_CLASSES[name](**kwargs)
