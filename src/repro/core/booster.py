"""UADB — the Unsupervised Anomaly Detection Booster (Algorithm 1).

Given any fitted source detector, :class:`UADBooster` trains an MLP booster
through ``n_iterations`` rounds of pseudo-supervised distillation, adjusting
the pseudo-labels after every round by adding the per-instance variance of
the accumulated label history and min-max rescaling.  The returned booster
is the improved detector; it scores both the training data and new data.

Example
-------
>>> from repro.detectors import IForest
>>> from repro.core import UADBooster
>>> source = IForest(random_state=0).fit(X)
>>> booster = UADBooster(random_state=0).fit(X, source)
>>> scores = booster.scores_          # boosted scores on X, in [0, 1]
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.params import ParamsMixin
from repro.core.ensemble import FoldEnsemble
from repro.core.labels import variance_update
from repro.core.variance import variance_history
from repro.data.preprocessing import minmax_scale
from repro.detectors.base import BaseDetector
from repro.utils.validation import check_array, check_fitted, check_scores

__all__ = ["UADBooster", "BoosterHistory"]


@dataclass
class BoosterHistory:
    """Per-iteration trace of a UADB run (used by Table V, Figs 4/7/9).

    Attributes
    ----------
    pseudo_labels : list of ndarray
        ``y_hat(1) ... y_hat(T+1)`` — the evolving pseudo-label vectors.
    booster_scores : list of ndarray
        Booster output ``f_B(X)`` after each of the ``T`` iterations.
    variances : list of ndarray
        The variance vector used in each update.
    """

    pseudo_labels: list = field(default_factory=list)
    booster_scores: list = field(default_factory=list)
    variances: list = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.booster_scores)

    def pseudo_label_matrix(self) -> np.ndarray:
        """All recorded pseudo-label vectors as columns, shape (n, T+1)."""
        if not self.pseudo_labels:
            raise RuntimeError("history is empty")
        return np.column_stack(self.pseudo_labels)


def _resolve_source_scores(X: np.ndarray, source) -> np.ndarray:
    """Initial pseudo-labels from a fitted detector or a raw score vector."""
    if isinstance(source, BaseDetector):
        check_fitted(source, "decision_scores_")
        return source.score_samples(X)
    scores = check_scores(source, name="source scores")
    if scores.shape[0] != X.shape[0]:
        raise ValueError(
            f"source scores have length {scores.shape[0]} but X has "
            f"{X.shape[0]} rows"
        )
    return minmax_scale(scores)


class UADBooster(ParamsMixin):
    """Model-agnostic booster for unsupervised anomaly detectors.

    Parameters
    ----------
    n_iterations : int
        UADB training steps ``T`` (paper default 10).
    n_folds : int
        Booster ensemble folds (paper default 3).
    hidden, n_layers : int
        Booster MLP architecture (paper default: 128 units, 3 layers).
    epochs_per_iteration, batch_size, lr :
        Inner supervised-training hyper-parameters (paper: 10 / 256 / 1e-3).
    engine : {'batched', 'sequential'}
        Fold-training engine (see :mod:`repro.core.ensemble`).  'batched'
        (default) trains all folds per step with stacked tensor ops and is
        severalfold faster; 'sequential' is the original per-fold loop.
        Both produce identical scores for a fixed ``random_state``.
    dtype : {'float32', 'float64'} or None
        Booster training precision.  ``None`` (default) resolves through
        the active :class:`repro.runtime.RunContext` (its ``dtype``
        field, else float32 — matching the reference implementation's
        PyTorch default); the fold ensemble pins the resolution when it
        initializes.
    record_history : bool
        Keep the per-iteration trace in :attr:`history_` (on by default;
        turn off to save memory in large sweeps).
    random_state : None, int, or Generator

    Attributes
    ----------
    scores_ : ndarray
        Final booster scores on the training data, in [0, 1].
    pseudo_labels_ : ndarray
        Final pseudo-label vector ``y_hat(T+1)``.
    history_ : BoosterHistory or None
        Per-iteration trace when ``record_history`` is set.

    Notes
    -----
    The fitted booster caches the standardised design matrix keyed on the
    *object identity* of the most recently scored array, so repeated
    :meth:`score_samples` calls on the same array skip re-scaling.
    Mutating that array in place between calls therefore goes unnoticed
    and returns stale scores — pass a fresh array after any in-place edit.
    """

    def __init__(self, n_iterations: int = 10, n_folds: int = 3,
                 hidden: int = 128, n_layers: int = 3,
                 epochs_per_iteration: int = 10, batch_size: int = 256,
                 lr: float = 1e-3, engine: str = "batched",
                 dtype: str | None = None, record_history: bool = True,
                 random_state=None):
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        self.n_iterations = n_iterations
        self.n_folds = n_folds
        self.hidden = hidden
        self.n_layers = n_layers
        self.epochs_per_iteration = epochs_per_iteration
        self.batch_size = batch_size
        self.lr = lr
        self.engine = engine
        # Canonical string (or None): numpy's dtype-vs-None equality
        # quirk would otherwise break default-elision in specs.
        self.dtype = None if dtype is None else str(np.dtype(dtype))
        self.record_history = record_history
        self.random_state = random_state
        self.scores_ = None
        self.pseudo_labels_ = None
        self.history_ = None
        self._ensemble = None

    def _make_ensemble(self) -> FoldEnsemble:
        return FoldEnsemble(
            n_folds=self.n_folds, hidden=self.hidden, n_layers=self.n_layers,
            epochs=self.epochs_per_iteration, batch_size=self.batch_size,
            lr=self.lr, engine=self.engine, dtype=self.dtype,
            random_state=self.random_state,
        )

    def fit(self, X, source) -> "UADBooster":
        """Run Algorithm 1.

        Parameters
        ----------
        X : array-like of shape (n, d)
            The unlabelled dataset (the same data the source model saw).
        source : fitted BaseDetector or array-like of shape (n,)
            The source UAD model, or directly its anomaly scores on ``X``
            (any scale; they are min-max rescaled to [0, 1]).
        """
        X = check_array(X, min_samples=2)
        pseudo = _resolve_source_scores(X, source)

        self._ensemble = self._make_ensemble().initialize(X)
        history = BoosterHistory() if self.record_history else None
        if history is not None:
            history.pseudo_labels.append(pseudo.copy())

        label_matrix = pseudo[:, None]
        for _ in range(self.n_iterations):
            self._ensemble.train_round(X, pseudo)
            per_fold = self._ensemble.predict_per_fold(X)
            student = per_fold.mean(axis=1)
            # Variance over the label history plus each fold learner's
            # prediction: cross-learner disagreement is the paper's core
            # signal (anomalies lack structure, so independently-trained
            # students disagree about them).
            variance = variance_history(label_matrix, per_fold)
            pseudo = variance_update(pseudo, variance)
            label_matrix = np.hstack([label_matrix, pseudo[:, None]])
            if history is not None:
                history.booster_scores.append(student.copy())
                history.variances.append(variance.copy())
                history.pseudo_labels.append(pseudo.copy())

        self.scores_ = self._ensemble.predict(X)
        self.pseudo_labels_ = pseudo
        self.history_ = history
        return self

    def score_samples(self, X) -> np.ndarray:
        """Boosted anomaly scores for arbitrary data, in [0, 1]."""
        check_fitted(self, "scores_")
        return np.clip(self._ensemble.predict(X), 0.0, 1.0)

    # -- persistence ------------------------------------------------------
    def get_state(self) -> dict:
        """Full fitted state for :mod:`repro.serving.artifacts`.

        The fold ensemble (networks, optimizer moments, rng) is captured
        through its own ``get_state``, so a restored booster scores new
        data bit-identically to the instance that was saved.
        """
        return {
            "config": {
                "n_iterations": self.n_iterations,
                "n_folds": self.n_folds,
                "hidden": self.hidden,
                "n_layers": self.n_layers,
                "epochs_per_iteration": self.epochs_per_iteration,
                "batch_size": self.batch_size,
                "lr": self.lr,
                "engine": self.engine,
                "dtype": None if self.dtype is None else str(self.dtype),
                "record_history": self.record_history,
                "random_state": self.random_state,
            },
            "scores": self.scores_,
            "pseudo_labels": self.pseudo_labels_,
            "history": self.history_,
            "ensemble": self._ensemble,
        }

    def set_state(self, state: dict) -> "UADBooster":
        """Restore a booster from :meth:`get_state` output."""
        self.__init__(**state["config"])
        self.scores_ = state["scores"]
        self.pseudo_labels_ = state["pseudo_labels"]
        self.history_ = state["history"]
        self._ensemble = state["ensemble"]
        return self

    def predict(self, X, threshold: float = 0.5) -> np.ndarray:
        """Binary labels (1 = anomaly) at ``threshold``."""
        return (self.score_samples(X) > threshold).astype(np.int64)
