"""Per-instance variance estimation — UADB's error-correction signal.

The paper's key observation (Sec. III-B): anomalies lack structure in
feature space, so predictions about them disagree more across models /
checkpoints than predictions about inliers.  UADB estimates this as the
variance, per instance, across the full pseudo-label history plus the
current student output (Algorithm 1, line 7).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "instance_variance",
    "variance_history",
    "group_variance_gap",
]


def instance_variance(predictions: np.ndarray) -> np.ndarray:
    """Variance across columns for every row of ``predictions``.

    Parameters
    ----------
    predictions : ndarray of shape (n_samples, n_predictions)
        Each column is one prediction vector (a pseudo-label checkpoint or a
        model output).  A single column yields zero variance.

    Returns
    -------
    ndarray of shape (n_samples,)
        Population variance (``ddof=0``) per instance.
    """
    arr = np.asarray(predictions, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"predictions must be 1- or 2-d, got ndim={arr.ndim}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("predictions contain NaN or infinite values")
    return arr.var(axis=1)


def variance_history(pseudo_labels: np.ndarray,
                     student_scores: np.ndarray) -> np.ndarray:
    """Algorithm 1, line 7: variance of ``[Yhat, f_B(X)]`` per instance.

    ``pseudo_labels`` holds one column per recorded pseudo-label vector;
    ``student_scores`` holds the current booster output — either the
    averaged score (one column) or, preferably, one column per fold
    learner, whose cross-learner disagreement carries the anomaly signal.
    All columns are appended before computing the per-instance variance.
    """
    labels = np.asarray(pseudo_labels, dtype=np.float64)
    if labels.ndim == 1:
        labels = labels[:, None]
    student = np.asarray(student_scores, dtype=np.float64)
    if student.ndim == 1:
        student = student[:, None]
    if labels.shape[0] != student.shape[0]:
        raise ValueError(
            f"pseudo_labels has {labels.shape[0]} rows but student_scores "
            f"has {student.shape[0]}"
        )
    return instance_variance(np.hstack([labels, student]))


def group_variance_gap(variances: np.ndarray, y_true: np.ndarray) -> float:
    """Relative variance difference between inliers and anomalies (Fig 2).

    Returns ``(mean_var_normal - mean_var_abnormal) / mean_var_abnormal``;
    a *negative* value means anomalies have higher average variance — the
    regime in which UADB's correction works in the intended direction.
    """
    v = np.asarray(variances, dtype=np.float64).ravel()
    y = np.asarray(y_true).ravel()
    if v.shape != y.shape:
        raise ValueError("variances and y_true must have identical shape")
    if not np.all(np.isin(y, (0, 1))):
        raise ValueError("y_true must contain only 0 and 1")
    if not (y == 1).any() or not (y == 0).any():
        raise ValueError("y_true must contain both classes")
    v_normal = float(v[y == 0].mean())
    v_abnormal = float(v[y == 1].mean())
    return (v_normal - v_abnormal) / max(v_abnormal, 1e-12)
