"""Score combination across multiple detectors or boosters.

The paper motivates UADB with the observation that no single UAD
assumption wins everywhere, and cites SUOD-style systems where
practitioners run many heterogeneous detectors.  These helpers implement
the standard ways to combine several score vectors into one: average,
maximisation, average-of-maximum (AOM) and maximum-of-average (MOA)
(Aggarwal & Sathe, 2015), over rank- or z-normalised scores.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.classification import rank_of
from repro.utils.rng import check_random_state

__all__ = ["normalize_scores", "average", "maximization", "aom", "moa"]


def _as_matrix(score_lists) -> np.ndarray:
    matrix = np.column_stack([np.asarray(s, dtype=np.float64).ravel()
                              for s in score_lists])
    if matrix.shape[1] < 1:
        raise ValueError("need at least one score vector")
    if not np.all(np.isfinite(matrix)):
        raise ValueError("scores contain NaN or infinite values")
    return matrix


def normalize_scores(score_lists, method: str = "rank") -> np.ndarray:
    """Column-normalise score vectors so they are comparable.

    ``'rank'`` replaces scores by midranks scaled to [0, 1]; ``'zscore'``
    standardises each column; ``'unit'`` min-max scales each column.
    """
    matrix = _as_matrix(score_lists)
    n = matrix.shape[0]
    if method == "rank":
        if n == 1:
            return np.zeros_like(matrix)
        cols = [(rank_of(matrix[:, j]) - 1.0) / (n - 1.0)
                for j in range(matrix.shape[1])]
        return np.column_stack(cols)
    if method == "zscore":
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std = np.where(std == 0, 1.0, std)
        return (matrix - mean) / std
    if method == "unit":
        lo = matrix.min(axis=0)
        span = matrix.max(axis=0) - lo
        span = np.where(span == 0, 1.0, span)
        return (matrix - lo) / span
    raise ValueError(f"unknown normalisation method: {method!r}")


def average(score_lists, normalization: str = "rank") -> np.ndarray:
    """Mean of the normalised scores — the robust default combiner."""
    return normalize_scores(score_lists, normalization).mean(axis=1)


def maximization(score_lists, normalization: str = "rank") -> np.ndarray:
    """Per-instance maximum — sensitive, catches any detector's alarm."""
    return normalize_scores(score_lists, normalization).max(axis=1)


def _random_buckets(n_columns: int, n_buckets: int, rng) -> list:
    if not 1 <= n_buckets <= n_columns:
        raise ValueError(
            f"n_buckets must be in [1, {n_columns}], got {n_buckets}"
        )
    order = rng.permutation(n_columns)
    return [np.sort(bucket) for bucket in np.array_split(order, n_buckets)]


def aom(score_lists, n_buckets: int = 3, normalization: str = "rank",
        random_state=None) -> np.ndarray:
    """Average of Maximum: max within random detector buckets, then mean.

    Less noisy than pure maximisation while keeping its sensitivity.
    """
    matrix = normalize_scores(score_lists, normalization)
    rng = check_random_state(random_state)
    buckets = _random_buckets(matrix.shape[1], n_buckets, rng)
    maxima = [matrix[:, b].max(axis=1) for b in buckets]
    return np.mean(maxima, axis=0)


def moa(score_lists, n_buckets: int = 3, normalization: str = "rank",
        random_state=None) -> np.ndarray:
    """Maximum of Average: mean within random buckets, then max."""
    matrix = normalize_scores(score_lists, normalization)
    rng = check_random_state(random_state)
    buckets = _random_buckets(matrix.shape[1], n_buckets, rng)
    means = [matrix[:, b].mean(axis=1) for b in buckets]
    return np.max(means, axis=0)
