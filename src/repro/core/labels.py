"""Pseudo-label update rules.

UADB's rule (Algorithm 1, line 8) is deliberately minimal: add the variance
estimate to the current pseudo-labels and min-max rescale into [0, 1].  The
case analysis in the paper (Table II) shows why this corrects errors: FN
instances carry anomaly-level variance, so their scores rise relative to TN,
while FP instances carry inlier-level variance, so theirs fall relative to
TP after rescaling.

``self_update`` is the Self-Booster alternative (Table VI): replace the
pseudo-labels by the rescaled student output, with no variance term.
"""

from __future__ import annotations

import numpy as np

from repro.data.preprocessing import minmax_scale

__all__ = ["variance_update", "self_update"]


def _check_pair(y, other, other_name):
    y = np.asarray(y, dtype=np.float64).ravel()
    other = np.asarray(other, dtype=np.float64).ravel()
    if y.shape != other.shape:
        raise ValueError(
            f"pseudo_labels and {other_name} must have identical shape, "
            f"got {y.shape} vs {other.shape}"
        )
    if not (np.all(np.isfinite(y)) and np.all(np.isfinite(other))):
        raise ValueError("inputs contain NaN or infinite values")
    return y, other


def variance_update(pseudo_labels, variances) -> np.ndarray:
    """UADB update: ``y(t+1) = MinMaxScale(y(t) + v)``."""
    y, v = _check_pair(pseudo_labels, variances, "variances")
    if (v < 0).any():
        raise ValueError("variances must be non-negative")
    return minmax_scale(y + v)


def self_update(student_scores) -> np.ndarray:
    """Self-Booster update: ``y(t+1) = MinMaxScale(f_B(X))``."""
    s = np.asarray(student_scores, dtype=np.float64).ravel()
    if not np.all(np.isfinite(s)):
        raise ValueError("student_scores contain NaN or infinite values")
    return minmax_scale(s)
