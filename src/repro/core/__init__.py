"""UADB core: the booster, its variance machinery, and ablation variants."""

from repro.core.booster import BoosterHistory, UADBooster
from repro.core.combination import (
    aom,
    average,
    maximization,
    moa,
    normalize_scores,
)
from repro.core.ensemble import FoldEnsemble
from repro.core.labels import self_update, variance_update
from repro.core.variance import (
    group_variance_gap,
    instance_variance,
    variance_history,
)
from repro.core.variants import (
    VARIANT_CLASSES,
    DiscrepancyBooster,
    DiscrepancyStarBooster,
    NaiveBooster,
    SelfBooster,
    make_variant,
)

__all__ = [
    "BoosterHistory",
    "UADBooster",
    "aom",
    "average",
    "maximization",
    "moa",
    "normalize_scores",
    "FoldEnsemble",
    "self_update",
    "variance_update",
    "group_variance_gap",
    "instance_variance",
    "variance_history",
    "VARIANT_CLASSES",
    "DiscrepancyBooster",
    "DiscrepancyStarBooster",
    "NaiveBooster",
    "SelfBooster",
    "make_variant",
]
